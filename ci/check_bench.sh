#!/usr/bin/env bash
# Shared sanity checks over the emitted BENCH_*.json artifacts, used by
# the CI bench jobs and runnable locally after any bench run:
#
#   ci/check_bench.sh [artifact.json ...]
#
# Every named artifact (default: all six) must exist and be non-empty
# and contain no non-finite values (NaN/inf); the full-grid report must
# additionally cover every experiment it declares, the event-loop
# report must attest order equivalence between the wheel and the
# reference heap, and the cluster report must attest that every
# shard-core lane count reproduced the 1-core sweep bit-for-bit. Trace
# artifacts (named explicitly when a bench ran with --trace) must carry
# the obs timeline schema (BENCH_trace*.json) or Chrome trace events
# (TRACE_*.json).
set -euo pipefail

# The experiment count is read from the artifact itself (the harness
# emits "experiment_count" from ExperimentId::all()), so this script
# never drifts from the grid; the floor only guards against an artifact
# that under-declares its own coverage. The floor itself is derived from
# the source of ExperimentId::slug() — one match arm per experiment —
# instead of a literal, so it can never go stale either (simlint rule
# D005 rejects a hardcoded count here).
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
EXPERIMENT_SRC="$ROOT/crates/harness/src/experiment.rs"
if [ ! -f "$EXPERIMENT_SRC" ]; then
  echo "check_bench: cannot derive the experiment floor ($EXPERIMENT_SRC missing)" >&2
  exit 1
fi
MIN_SLUGS="$(grep -cE '=> "[a-z0-9_]+",$' "$EXPERIMENT_SRC")"
if [ "$MIN_SLUGS" -lt 1 ]; then
  echo "check_bench: derived an empty experiment floor from $EXPERIMENT_SRC" >&2
  exit 1
fi
status=0

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  files=(
    BENCH_full_grid.json
    BENCH_load_curves.json
    BENCH_tenant_isolation.json
    BENCH_pipeline.json
    BENCH_cluster.json
    BENCH_event_loop.json
    SIMLINT.json
  )
fi

for f in "${files[@]}"; do
  if [ ! -s "$f" ]; then
    echo "check_bench: missing or empty artifact $f" >&2
    status=1
    continue
  fi
  if grep -nE '(:|\[|, ) *-?(NaN|inf)' "$f"; then
    echo "check_bench: $f contains non-finite values" >&2
    status=1
  fi
  case "$f" in
    *full_grid*)
      declared="$(sed -n 's/.*"experiment_count": *\([0-9]*\).*/\1/p' "$f" | head -n1)"
      if [ -z "$declared" ]; then
        echo "check_bench: $f declares no experiment_count" >&2
        status=1
        continue
      fi
      if [ "$declared" -lt "$MIN_SLUGS" ]; then
        echo "check_bench: $f declares only $declared experiments (floor $MIN_SLUGS)" >&2
        status=1
      fi
      count="$(grep -c '"slug"' "$f")"
      echo "check_bench: $f covers $count of $declared experiments"
      if [ "$count" -ne "$declared" ]; then
        echo "check_bench: expected $declared experiments in $f" >&2
        status=1
      fi
      ;;
    *event_loop*)
      if ! grep -q '"order_equivalent": true' "$f"; then
        echo "check_bench: $f does not attest wheel/heap order equivalence" >&2
        status=1
      fi
      ;;
    *BENCH_trace*)
      if ! grep -q '"schema": "isolation-bench/obs/v1"' "$f"; then
        echo "check_bench: $f is not an obs timeline artifact" >&2
        status=1
      fi
      if ! grep -q '"lanes"' "$f"; then
        echo "check_bench: $f carries no per-lane bucket series" >&2
        status=1
      fi
      ;;
    *TRACE_*)
      if ! grep -q '"traceEvents"' "$f"; then
        echo "check_bench: $f is not a Chrome trace-event artifact" >&2
        status=1
      fi
      ;;
    *cluster*)
      if ! grep -q '"identical": true' "$f"; then
        echo "check_bench: $f does not attest serial/parallel equality" >&2
        status=1
      fi
      if grep -q '"identical": false' "$f"; then
        echo "check_bench: $f reports a shard-core lane diverging from the 1-core sweep" >&2
        status=1
      fi
      ;;
    *pipeline*|*tenant_isolation*|*load_curves*)
      if ! grep -q '"identical": true' "$f"; then
        echo "check_bench: $f does not attest serial/parallel equality" >&2
        status=1
      fi
      ;;
    *SIMLINT*|*simlint*)
      if ! grep -q '"schema": "isolation-bench/simlint/v1"' "$f"; then
        echo "check_bench: $f is not a simlint report" >&2
        status=1
      fi
      if ! grep -q '"clean": true' "$f"; then
        echo "check_bench: $f reports unsuppressed determinism findings" >&2
        status=1
      fi
      ;;
  esac
done

if [ "$status" -eq 0 ]; then
  echo "check_bench: ${#files[@]} artifact(s) OK"
fi
exit "$status"
