#!/usr/bin/env bash
# Shared sanity checks over the emitted BENCH_*.json artifacts, used by
# the CI bench jobs and runnable locally after any bench run:
#
#   ci/check_bench.sh [artifact.json ...]
#
# Every named artifact (default: the committed set) must exist and be
# non-empty and contain no non-finite values (NaN/inf); the full-grid
# report must additionally cover every experiment it declares, the
# event-loop report must attest order equivalence between the wheel and
# the reference heap, and the cluster reports must attest that every
# shard-core lane count reproduced the 1-core sweep bit-for-bit. The
# failover report must additionally attest its three acceptance
# invariants (R=1 replays plain routing, scatter p99 monotone in K,
# kill spike subsides) and record the deterministic mid-window kill.
# Trace artifacts (named explicitly when a bench ran with --trace) must
# carry the obs timeline schema (BENCH_trace*.json) — with a drop-free
# steady phase and monotone, non-negative bucket counters — or Chrome
# trace events (TRACE_*.json).
set -euo pipefail

# The experiment count is read from the artifact itself (the harness
# emits "experiment_count" from ExperimentId::all()), so this script
# never drifts from the grid; the floor only guards against an artifact
# that under-declares its own coverage. The floor itself is derived from
# the source of ExperimentId::slug() — one match arm per experiment —
# instead of a literal, so it can never go stale either (simlint rule
# D005 rejects a hardcoded count here).
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
EXPERIMENT_SRC="$ROOT/crates/harness/src/experiment.rs"
if [ ! -f "$EXPERIMENT_SRC" ]; then
  echo "check_bench: cannot derive the experiment floor ($EXPERIMENT_SRC missing)" >&2
  exit 1
fi
MIN_SLUGS="$(grep -cE '=> "[a-z0-9_]+",$' "$EXPERIMENT_SRC")"
if [ "$MIN_SLUGS" -lt 1 ]; then
  echo "check_bench: derived an empty experiment floor from $EXPERIMENT_SRC" >&2
  exit 1
fi
status=0

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  files=(
    BENCH_full_grid.json
    BENCH_load_curves.json
    BENCH_tenant_isolation.json
    BENCH_pipeline.json
    BENCH_cluster.json
    BENCH_cluster_failover.json
    BENCH_event_loop.json
    SIMLINT.json
  )
fi

for f in "${files[@]}"; do
  if [ ! -s "$f" ]; then
    echo "check_bench: missing or empty artifact $f" >&2
    status=1
    continue
  fi
  if grep -nE '(:|\[|, ) *-?(NaN|inf)' "$f"; then
    echo "check_bench: $f contains non-finite values" >&2
    status=1
  fi
  case "$f" in
    *full_grid*)
      declared="$(sed -n 's/.*"experiment_count": *\([0-9]*\).*/\1/p' "$f" | head -n1)"
      if [ -z "$declared" ]; then
        echo "check_bench: $f declares no experiment_count" >&2
        status=1
        continue
      fi
      if [ "$declared" -lt "$MIN_SLUGS" ]; then
        echo "check_bench: $f declares only $declared experiments (floor $MIN_SLUGS)" >&2
        status=1
      fi
      count="$(grep -c '"slug"' "$f")"
      echo "check_bench: $f covers $count of $declared experiments"
      if [ "$count" -ne "$declared" ]; then
        echo "check_bench: expected $declared experiments in $f" >&2
        status=1
      fi
      ;;
    *event_loop*)
      if ! grep -q '"order_equivalent": true' "$f"; then
        echo "check_bench: $f does not attest wheel/heap order equivalence" >&2
        status=1
      fi
      ;;
    *BENCH_trace*)
      if ! grep -q '"schema": "isolation-bench/obs/v1"' "$f"; then
        echo "check_bench: $f is not an obs timeline artifact" >&2
        status=1
      fi
      if ! grep -q '"lanes"' "$f"; then
        echo "check_bench: $f carries no per-lane bucket series" >&2
        status=1
      fi
      # Every traced point runs below saturation, so the windowed
      # timeline must show a drop-free steady phase.
      if grep -oE '"drops": *[0-9]+' "$f" | grep -qv '"drops": 0$'; then
        echo "check_bench: $f records drops in the traced steady phase" >&2
        status=1
      fi
      # Counters are event tallies: never negative, each lane's bucket
      # series strictly advancing in time, and (when the event-core
      # counter block is present) pops bounded by pushes.
      if grep -qE '": *-[0-9]' "$f"; then
        echo "check_bench: $f carries a negative counter" >&2
        status=1
      fi
      if ! awk '
        /"lane":/ { prev = -1 }
        {
          line = $0
          while (match(line, /"start_us": *[0-9.]+/)) {
            v = substr(line, RSTART + 12, RLENGTH - 12) + 0
            if (v <= prev) exit 1
            prev = v
            line = substr(line, RSTART + RLENGTH)
          }
        }
      ' "$f"; then
        echo "check_bench: $f bucket series is not monotone in start_us" >&2
        status=1
      fi
      pushes="$(sed -n 's/.*"pushes": *\([0-9]*\).*/\1/p' "$f" | head -n1)"
      pops="$(sed -n 's/.*"pops": *\([0-9]*\).*/\1/p' "$f" | head -n1)"
      if [ -n "$pushes" ] && [ -n "$pops" ] && [ "$pops" -gt "$pushes" ]; then
        echo "check_bench: $f pops ($pops) exceed pushes ($pushes)" >&2
        status=1
      fi
      ;;
    *TRACE_*)
      if ! grep -q '"traceEvents"' "$f"; then
        echo "check_bench: $f is not a Chrome trace-event artifact" >&2
        status=1
      fi
      ;;
    *cluster_failover*)
      if ! grep -q '"schema": "isolation-bench/cluster-failover/v1"' "$f"; then
        echo "check_bench: $f is not a cluster-failover report" >&2
        status=1
      fi
      if ! grep -q '"identical": true' "$f"; then
        echo "check_bench: $f does not attest serial/parallel equality" >&2
        status=1
      fi
      if grep -q '"identical": false' "$f"; then
        echo "check_bench: $f reports a shard-core lane diverging from the 1-core sweep" >&2
        status=1
      fi
      # The bench bin recomputes each acceptance invariant and attests
      # it in the report; a false here means the run should already
      # have exited non-zero.
      for attest in r1_matches_plain scatter_p99_monotone spike_subsides; do
        if ! grep -q "\"$attest\": true" "$f"; then
          echo "check_bench: $f does not attest $attest" >&2
          status=1
        fi
      done
      # The deterministic mid-window kill must actually fire (a
      # positive fail instant somewhere) while the fault-free settings
      # keep the -1 sentinel.
      if ! grep -qE '"fail_at_us": *[0-9]*[1-9]' "$f"; then
        echo "check_bench: $f records no mid-window shard kill" >&2
        status=1
      fi
      if ! grep -q '"fail_at_us": -1' "$f"; then
        echo "check_bench: $f lost the fault-free -1 sentinel" >&2
        status=1
      fi
      ;;
    *cluster*)
      if ! grep -q '"identical": true' "$f"; then
        echo "check_bench: $f does not attest serial/parallel equality" >&2
        status=1
      fi
      if grep -q '"identical": false' "$f"; then
        echo "check_bench: $f reports a shard-core lane diverging from the 1-core sweep" >&2
        status=1
      fi
      ;;
    *pipeline*|*tenant_isolation*|*load_curves*)
      if ! grep -q '"identical": true' "$f"; then
        echo "check_bench: $f does not attest serial/parallel equality" >&2
        status=1
      fi
      ;;
    *SIMLINT*|*simlint*)
      if ! grep -q '"schema": "isolation-bench/simlint/v1"' "$f"; then
        echo "check_bench: $f is not a simlint report" >&2
        status=1
      fi
      if ! grep -q '"clean": true' "$f"; then
        echo "check_bench: $f reports unsuppressed determinism findings" >&2
        status=1
      fi
      ;;
  esac
done

if [ "$status" -eq 0 ]; then
  echo "check_bench: ${#files[@]} artifact(s) OK"
fi
exit "$status"
