//! Ablation benches for the design choices DESIGN.md calls out:
//! Kata 9p vs virtio-fs, gVisor ptrace vs KVM, huge pages on/off, and the
//! host page-cache drop pitfall.

use criterion::{criterion_group, criterion_main, Criterion};
use platforms::PlatformId;
use simcore::SimRng;
use workloads::{FioBenchmark, TinymembenchBenchmark};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    group.bench_function("kata_9p_vs_virtiofs", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(1);
            let bench = FioBenchmark {
                runs: 2,
                guest_memory_bytes: 2 << 30,
                drop_host_cache: true,
            };
            let nine_p = bench.run_randread_latency(&PlatformId::Kata.build(), &mut rng);
            let virtio_fs = bench.run_randread_latency(&PlatformId::KataVirtioFs.build(), &mut rng);
            (nine_p, virtio_fs)
        })
    });

    group.bench_function("gvisor_ptrace_vs_kvm", |b| {
        b.iter(|| {
            let class = oskern::syscall::SyscallClass::FileRead;
            let ptrace = PlatformId::GvisorPtrace
                .build()
                .syscalls()
                .dispatch_cost(class);
            let kvm = PlatformId::GvisorKvm
                .build()
                .syscalls()
                .dispatch_cost(class);
            (ptrace, kvm)
        })
    });

    group.bench_function("huge_pages_on_off", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(2);
            let p = PlatformId::Native.build();
            let small = TinymembenchBenchmark::new(2).run_latency(&p, &mut rng);
            let huge = TinymembenchBenchmark::new(2)
                .with_huge_pages()
                .run_latency(&p, &mut rng);
            (
                small.last().unwrap().latency_ns.mean(),
                huge.last().unwrap().latency_ns.mean(),
            )
        })
    });

    group.bench_function("host_cache_drop_pitfall", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from(3);
            let bench = FioBenchmark {
                runs: 2,
                guest_memory_bytes: 2 << 30,
                drop_host_cache: false,
            };
            bench.run_throughput(&PlatformId::Kata.build(), &mut rng)
        })
    });

    group.finish();
}

criterion_group!(ablations, benches);
criterion_main!(ablations);
