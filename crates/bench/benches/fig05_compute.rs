//! Regenerates Fig. 5 and the Sysbench prime check (Section 3.1) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig05Ffmpeg);
    print_figure(ExperimentId::SysbenchPrime);
    let mut group = c.benchmark_group("fig05_compute");
    group.sample_size(10);
    group.bench_function("fig05_ffmpeg", |b| {
        b.iter(|| figures::run(ExperimentId::Fig05Ffmpeg, &cfg))
    });
    group.bench_function("sysbench_prime", |b| {
        b.iter(|| figures::run(ExperimentId::SysbenchPrime, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
