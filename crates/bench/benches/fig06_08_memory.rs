//! Regenerates Figs. 6-8 (tinymembench latency/bandwidth, STREAM) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig06MemLatency);
    print_figure(ExperimentId::Fig07MemBandwidth);
    print_figure(ExperimentId::Fig08Stream);
    let mut group = c.benchmark_group("fig06_08_memory");
    group.sample_size(10);
    group.bench_function("fig06_mem_latency", |b| {
        b.iter(|| figures::run(ExperimentId::Fig06MemLatency, &cfg))
    });
    group.bench_function("fig07_mem_bandwidth", |b| {
        b.iter(|| figures::run(ExperimentId::Fig07MemBandwidth, &cfg))
    });
    group.bench_function("fig08_stream", |b| {
        b.iter(|| figures::run(ExperimentId::Fig08Stream, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
