//! Regenerates Figs. 9-10 (fio throughput and latency) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig09FioThroughput);
    print_figure(ExperimentId::Fig10FioLatency);
    let mut group = c.benchmark_group("fig09_10_fio");
    group.sample_size(10);
    group.bench_function("fig09_fio_throughput", |b| {
        b.iter(|| figures::run(ExperimentId::Fig09FioThroughput, &cfg))
    });
    group.bench_function("fig10_fio_latency", |b| {
        b.iter(|| figures::run(ExperimentId::Fig10FioLatency, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
