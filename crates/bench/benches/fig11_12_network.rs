//! Regenerates Figs. 11-12 (iperf3 and netperf) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig11Iperf);
    print_figure(ExperimentId::Fig12Netperf);
    let mut group = c.benchmark_group("fig11_12_network");
    group.sample_size(10);
    group.bench_function("fig11_iperf", |b| {
        b.iter(|| figures::run(ExperimentId::Fig11Iperf, &cfg))
    });
    group.bench_function("fig12_netperf", |b| {
        b.iter(|| figures::run(ExperimentId::Fig12Netperf, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
