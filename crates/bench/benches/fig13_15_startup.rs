//! Regenerates Figs. 13-15 (boot-time CDFs) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig13BootContainers);
    print_figure(ExperimentId::Fig14BootHypervisors);
    print_figure(ExperimentId::Fig15BootOsv);
    let mut group = c.benchmark_group("fig13_15_startup");
    group.sample_size(10);
    group.bench_function("fig13_boot_containers", |b| {
        b.iter(|| figures::run(ExperimentId::Fig13BootContainers, &cfg))
    });
    group.bench_function("fig14_boot_hypervisors", |b| {
        b.iter(|| figures::run(ExperimentId::Fig14BootHypervisors, &cfg))
    });
    group.bench_function("fig15_boot_osv", |b| {
        b.iter(|| figures::run(ExperimentId::Fig15BootOsv, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
