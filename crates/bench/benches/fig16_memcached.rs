//! Regenerates Fig. 16 (Memcached YCSB workload A) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig16Memcached);
    let mut group = c.benchmark_group("fig16_memcached");
    group.sample_size(10);
    group.bench_function("fig16_memcached", |b| {
        b.iter(|| figures::run(ExperimentId::Fig16Memcached, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
