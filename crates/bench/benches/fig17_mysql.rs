//! Regenerates Fig. 17 (MySQL sysbench oltp_read_write) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig17Mysql);
    let mut group = c.benchmark_group("fig17_mysql");
    group.sample_size(10);
    group.bench_function("fig17_mysql", |b| {
        b.iter(|| figures::run(ExperimentId::Fig17Mysql, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
