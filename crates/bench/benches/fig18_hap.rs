//! Regenerates Fig. 18 (extended HAP metric) of the paper.

use bench::{bench_config, print_figure};
use criterion::{criterion_group, criterion_main, Criterion};
use harness::{figures, ExperimentId};

fn benches(c: &mut Criterion) {
    let cfg = bench_config();
    print_figure(ExperimentId::Fig18Hap);
    let mut group = c.benchmark_group("fig18_hap");
    group.sample_size(10);
    group.bench_function("fig18_hap", |b| {
        b.iter(|| figures::run(ExperimentId::Fig18Hap, &cfg))
    });
    group.finish();
}

criterion_group!(paper, benches);
criterion_main!(paper);
