//! Machine-readable sharded-cluster bench runner.
//!
//! Runs the two cluster experiments (`cluster_memcached`,
//! `cluster_mysql`) twice — serially (1 worker) and with N workers —
//! then replays the Memcached sweep with the shards multiplexed onto
//! 1/2/4/8 event-core lanes to measure the shard-core scaling curve,
//! attesting that every lane count reproduces the 1-core points
//! bit-for-bit. Writes `BENCH_cluster.json` with the per-platform
//! shard-count × skew × routing sweeps (cluster and hot-shard
//! percentiles, load imbalance, achieved throughput, drop fractions)
//! and the scaling curve. Exits non-zero if the serial and parallel
//! runs disagree, if an experiment is missing, if any lane count
//! diverges from the 1-core reference, if the emitted JSON contains a
//! non-finite value (NaN/inf), or if the sweep violates the cluster's
//! domain invariants: imbalance is a max/mean ratio (>= 1), the drop
//! metric is a fraction, and p50 cannot exceed p99.
//!
//! Run with: `cargo run --release -p bench --bin cluster`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--quick` — quick configuration (the default; accepted for symmetry)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_cluster.json`)
//! * `--baseline PATH` — compare the 8-lane scaling point against a perf
//!   baseline (see `ci/perf_baseline.json`) and exit non-zero on regression
//! * `--trace` — additionally run one traced 16-shard rebalance point and
//!   write `TRACE_cluster.json` (Chrome trace events) plus
//!   `BENCH_trace.json` (the windowed-metrics timeline)

use std::time::Instant;

use harness::cli::{flag_value, run_serial_and_parallel};
use harness::report::ShardCoreScaling;
use harness::{grid, report, ExperimentId};
use platforms::PlatformId;
use simcore::SimRng;
use workloads::cluster::{ClusterBenchmark, ClusterPoint};
use workloads::LoadBackend;

/// Lane counts of the shard-core scaling curve the acceptance criteria
/// pin: the sweep must produce identical points at every one of them.
const SCALING_CORES: [usize; 4] = [1, 2, 4, 8];

/// One timed replay of the Memcached cluster sweep with the shards
/// multiplexed onto `cores` event-core lanes. Every replay uses the
/// same seed-derived streams, so the returned points must match the
/// 1-core reference exactly — the curve measures pure lane overhead.
fn scaling_run(cores: usize, quick: bool, seed: u64) -> (Vec<ClusterPoint>, ShardCoreScaling) {
    let mut bench = if quick {
        ClusterBenchmark::quick(LoadBackend::Memcached)
    } else {
        ClusterBenchmark::new(LoadBackend::Memcached)
    };
    bench.shard_cores = cores;
    let platform = PlatformId::Native.build();
    let mut rng = SimRng::seed_from(seed);
    let start = Instant::now();
    let points = bench
        .run_trial(&platform, &mut rng)
        .expect("the native cluster sweep configuration is valid");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let events: u64 = points.iter().map(|p| p.events).sum();
    let scaling = ShardCoreScaling {
        cores,
        wall_ms: elapsed_secs * 1e3,
        events_per_sec: events as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        // The caller fills this in against the 1-core reference.
        identical: true,
    };
    (points, scaling)
}

/// Extracts the number following `"key":` from a flat JSON object — the
/// same hand-rolled JSON handling the rest of the workspace uses (the
/// vendored stand-ins ship no JSON parser).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cluster` selects exactly the two sharded-cluster experiments.
    let run = run_serial_and_parallel("cluster", &args, Some("cluster"), "BENCH_cluster.json");

    let mut failures = Vec::new();

    // Shard-core scaling curve: the Memcached sweep at 1/2/4/8 lanes,
    // each attested bit-identical to the 1-core reference.
    let quick = run.mode == "quick";
    let (reference, first) = scaling_run(SCALING_CORES[0], quick, run.config.seed);
    let mut scaling = vec![first];
    for cores in &SCALING_CORES[1..] {
        let (points, mut point) = scaling_run(*cores, quick, run.config.seed);
        point.identical = points == reference;
        if !point.identical {
            failures.push(format!(
                "{cores}-lane sweep diverged from the 1-lane reference points"
            ));
        }
        scaling.push(point);
    }

    let json = report::cluster_json(
        run.mode,
        run.config.seed,
        &run.serial,
        &run.parallel,
        &scaling,
    );
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    println!("| shard cores | wall (ms) | events/sec | identical |");
    println!("|---|---|---|---|");
    for point in &scaling {
        println!(
            "| {} | {:.1} | {:.0} | {} |",
            point.cores, point.wall_ms, point.events_per_sec, point.identical
        );
    }
    println!(
        "\nwall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    if args.iter().any(|a| a == "--trace") {
        let trace = harness::obs::traced_run("cluster", quick, run.config.seed)
            .unwrap_or_else(|e| panic!("traced cluster run failed: {e:?}"));
        std::fs::write("TRACE_cluster.json", &trace.chrome)
            .unwrap_or_else(|e| panic!("cannot write TRACE_cluster.json: {e}"));
        std::fs::write("BENCH_trace.json", &trace.timeline)
            .unwrap_or_else(|e| panic!("cannot write BENCH_trace.json: {e}"));
        if let Some(token) = report::find_non_finite(&trace.timeline) {
            failures.push(format!(
                "trace timeline contains non-finite value {token:?}"
            ));
        }
        println!(
            "trace: {} spans accepted; artifacts: TRACE_cluster.json, BENCH_trace.json",
            trace.spans_accepted
        );
    }

    for experiment in [ExperimentId::ClusterMemcached, ExperimentId::ClusterMysql] {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let ok = pass.figure(experiment).is_some_and(|fig| {
                !fig.series.is_empty() && fig.series.iter().all(|s| !s.points.is_empty())
            });
            if !ok {
                failures.push(format!(
                    "{} missing from the {label} run",
                    experiment.slug()
                ));
            }
        }
        // Domain invariants: imbalance is a max/mean ratio, the drop
        // metric is a probability, and percentiles are ordered.
        if let Some(fig) = run.serial.figure(experiment) {
            for platform in grid::platforms_of(fig, grid::CLUSTER_HOT_P99) {
                let series = |metric: &str| {
                    fig.series_named(&format!("{platform} {metric}"))
                        .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                };
                for point in &series(grid::CLUSTER_IMBALANCE).points {
                    if point.mean < 1.0 {
                        failures.push(format!(
                            "{}/{platform}: imbalance at \"{}\" is {} (a max/mean ratio below 1)",
                            experiment.slug(),
                            point.x,
                            point.mean,
                        ));
                    }
                }
                for point in &series(grid::CLUSTER_DROP_RATE).points {
                    if !(0.0..=1.0).contains(&point.mean) {
                        failures.push(format!(
                            "{}/{platform}: drop fraction at \"{}\" is {} (outside [0, 1])",
                            experiment.slug(),
                            point.x,
                            point.mean,
                        ));
                    }
                }
                let p99 = series(grid::CLUSTER_P99);
                for point in &series(grid::CLUSTER_P50).points {
                    let Some(p99_mean) = p99.mean_of(&point.x) else {
                        continue;
                    };
                    if point.mean > p99_mean {
                        failures.push(format!(
                            "{}/{platform}: p50 at \"{}\" ({:.1} us) exceeds p99 ({:.1} us)",
                            experiment.slug(),
                            point.x,
                            point.mean,
                            p99_mean,
                        ));
                    }
                }
            }
        }
    }
    if run.serial.figures != run.parallel.figures {
        failures.push(format!(
            "serial and {}-worker figure data disagree",
            run.parallel_workers
        ));
    }
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    if let Some(path) = flag_value(&args, "--baseline") {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let key = format!("{}_cluster_min_events_per_sec", run.mode);
        let min_eps =
            json_number(&baseline, &key).unwrap_or_else(|| panic!("baseline {path} lacks {key}"));
        let best = scaling
            .iter()
            .map(|p| p.events_per_sec)
            .fold(0.0_f64, f64::max);
        println!(
            "baseline ({}): min {min_eps:.0} events/sec (best lane {best:.0})",
            run.mode
        );
        if best < min_eps {
            failures.push(format!(
                "cluster throughput {best:.0} events/sec regressed below the baseline floor {min_eps:.0}"
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("cluster: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
