//! Machine-readable sharded-cluster bench runner.
//!
//! Runs the two cluster experiments (`cluster_memcached`,
//! `cluster_mysql`) twice — serially (1 worker) and with N workers —
//! then replays the Memcached sweep with the shards multiplexed onto
//! 1/2/4/8 event-core lanes to measure the shard-core scaling curve,
//! attesting that every lane count reproduces the 1-core points
//! bit-for-bit. Writes `BENCH_cluster.json` with the per-platform
//! shard-count × skew × routing sweeps (cluster and hot-shard
//! percentiles, load imbalance, achieved throughput, drop fractions)
//! and the scaling curve. Exits non-zero if the serial and parallel
//! runs disagree, if an experiment is missing, if any lane count
//! diverges from the 1-core reference, if the emitted JSON contains a
//! non-finite value (NaN/inf), or if the sweep violates the cluster's
//! domain invariants: imbalance is a max/mean ratio (>= 1), the drop
//! metric is a fraction, and p50 cannot exceed p99.
//!
//! With `--failover` it instead runs the two replication/failover
//! experiments (`cluster_failover_memcached`, `cluster_failover_mysql`)
//! — the R/W-quorum × scatter fan-out × kill/recover sweep — and writes
//! `BENCH_cluster_failover.json`. On top of the shared gates it exits
//! non-zero unless the 1/2/4/8-lane replays are bit-identical, the R=1
//! quorum sweep replays the plain single-shard routing bit-for-bit, the
//! platform-averaged scatter p99 is monotone non-decreasing in the
//! fan-out on both backends, every fault point records its failure
//! instant and hand-offs, and every kill-then-recover point's
//! post-recovery drop rate returns to within the pre-failure band.
//!
//! Run with: `cargo run --release -p bench --bin cluster`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--quick` — quick configuration (the default; accepted for symmetry)
//! * `--failover` — run the replication/failover sweep instead
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_cluster.json`, or
//!   `BENCH_cluster_failover.json` under `--failover`)
//! * `--baseline PATH` — compare the best scaling point against a perf
//!   baseline (see `ci/perf_baseline.json`) and exit non-zero on regression
//! * `--trace` — additionally run one traced 16-shard rebalance point and
//!   write `TRACE_cluster.json` (Chrome trace events) plus
//!   `BENCH_trace_cluster.json` (the windowed-metrics timeline)

use std::time::Instant;

use harness::cli::{flag_value, run_serial_and_parallel, BenchRun};
use harness::executor::RunReport;
use harness::report::{FailoverAttestation, ShardCoreScaling};
use harness::{grid, report, ExperimentId};
use platforms::PlatformId;
use simcore::SimRng;
use workloads::cluster::{ClusterBenchmark, ClusterPoint, ClusterSetting, BASELINE_THETA};
use workloads::LoadBackend;

/// Lane counts of the shard-core scaling curve the acceptance criteria
/// pin: the sweep must produce identical points at every one of them.
const SCALING_CORES: [usize; 4] = [1, 2, 4, 8];

/// Post-recovery drop rate may exceed the pre-failure rate by at most
/// this much before the kill-then-recover gate fails — the "returns to
/// the pre-failure band" acceptance criterion.
const RECOVERY_BAND: f64 = 0.02;

/// The Memcached benchmark a timed scaling replay runs: the plain
/// shard-count × skew × routing sweep, or the replication/failover
/// sweep under `--failover`.
fn scaling_bench(failover: bool, quick: bool) -> ClusterBenchmark {
    match (failover, quick) {
        (false, false) => ClusterBenchmark::new(LoadBackend::Memcached),
        (false, true) => ClusterBenchmark::quick(LoadBackend::Memcached),
        (true, false) => ClusterBenchmark::failover(LoadBackend::Memcached),
        (true, true) => ClusterBenchmark::failover_quick(LoadBackend::Memcached),
    }
}

/// One timed replay of the Memcached sweep with the shards multiplexed
/// onto `cores` event-core lanes. Every replay uses the same
/// seed-derived streams, so the returned points must match the 1-core
/// reference exactly — the curve measures pure lane overhead.
fn scaling_run(
    failover: bool,
    cores: usize,
    quick: bool,
    seed: u64,
) -> (Vec<ClusterPoint>, ShardCoreScaling) {
    let mut bench = scaling_bench(failover, quick);
    bench.shard_cores = cores;
    let platform = PlatformId::Native.build();
    let mut rng = SimRng::seed_from(seed);
    let start = Instant::now();
    let points = bench
        .run_trial(&platform, &mut rng)
        .expect("the native cluster sweep configuration is valid");
    let elapsed_secs = start.elapsed().as_secs_f64();
    let events: u64 = points.iter().map(|p| p.events).sum();
    let scaling = ShardCoreScaling {
        cores,
        wall_ms: elapsed_secs * 1e3,
        events_per_sec: events as f64 / elapsed_secs.max(f64::MIN_POSITIVE),
        // The caller fills this in against the 1-core reference.
        identical: true,
    };
    (points, scaling)
}

/// Runs the full scaling curve and attests every lane count against the
/// 1-core reference, pushing a failure per divergent lane.
fn scaling_curve(
    failover: bool,
    quick: bool,
    seed: u64,
    failures: &mut Vec<String>,
) -> Vec<ShardCoreScaling> {
    let (reference, first) = scaling_run(failover, SCALING_CORES[0], quick, seed);
    let mut scaling = vec![first];
    for cores in &SCALING_CORES[1..] {
        let (points, mut point) = scaling_run(failover, *cores, quick, seed);
        point.identical = points == reference;
        if !point.identical {
            failures.push(format!(
                "{cores}-lane sweep diverged from the 1-lane reference points"
            ));
        }
        scaling.push(point);
    }
    scaling
}

/// The checks both modes share: every experiment present in both passes
/// with non-empty series, drop fractions inside [0, 1], p50 <= p99 per
/// setting, and serial/parallel figure equality.
fn shared_checks(
    run: &BenchRun,
    experiments: [ExperimentId; 2],
    anchor_metric: &str,
    failures: &mut Vec<String>,
) {
    for experiment in experiments {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let ok = pass.figure(experiment).is_some_and(|fig| {
                !fig.series.is_empty() && fig.series.iter().all(|s| !s.points.is_empty())
            });
            if !ok {
                failures.push(format!(
                    "{} missing from the {label} run",
                    experiment.slug()
                ));
            }
        }
        if let Some(fig) = run.serial.figure(experiment) {
            for platform in grid::platforms_of(fig, anchor_metric) {
                let series = |metric: &str| {
                    fig.series_named(&format!("{platform} {metric}"))
                        .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                };
                for point in &series(grid::CLUSTER_DROP_RATE).points {
                    if !(0.0..=1.0).contains(&point.mean) {
                        failures.push(format!(
                            "{}/{platform}: drop fraction at \"{}\" is {} (outside [0, 1])",
                            experiment.slug(),
                            point.x,
                            point.mean,
                        ));
                    }
                }
                let p99 = series(grid::CLUSTER_P99);
                for point in &series(grid::CLUSTER_P50).points {
                    let Some(p99_mean) = p99.mean_of(&point.x) else {
                        continue;
                    };
                    if point.mean > p99_mean {
                        failures.push(format!(
                            "{}/{platform}: p50 at \"{}\" ({:.1} us) exceeds p99 ({:.1} us)",
                            experiment.slug(),
                            point.x,
                            point.mean,
                            p99_mean,
                        ));
                    }
                }
            }
        }
    }
    if run.serial.figures != run.parallel.figures {
        failures.push(format!(
            "serial and {}-worker figure data disagree",
            run.parallel_workers
        ));
    }
}

/// The `--baseline` gate shared by both modes: the best lane's measured
/// events/sec must clear the floor stored under `key` in the baseline
/// file.
fn baseline_check(
    args: &[String],
    mode: &str,
    key: &str,
    scaling: &[ShardCoreScaling],
    failures: &mut Vec<String>,
) {
    let Some(path) = flag_value(args, "--baseline") else {
        return;
    };
    let baseline = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let min_eps =
        json_number(&baseline, key).unwrap_or_else(|| panic!("baseline {path} lacks {key}"));
    let best = scaling
        .iter()
        .map(|p| p.events_per_sec)
        .fold(0.0_f64, f64::max);
    println!("baseline ({mode}): min {min_eps:.0} events/sec (best lane {best:.0})");
    if best < min_eps {
        failures.push(format!(
            "cluster throughput {best:.0} events/sec regressed below the baseline floor {min_eps:.0}"
        ));
    }
}

/// Extracts the number following `"key":` from a flat JSON object — the
/// same hand-rolled JSON handling the rest of the workspace uses (the
/// vendored stand-ins ship no JSON parser).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The R=1-degenerates-to-PR-7 gate: the quorum sweep reduced to a
/// single `replicated(16, 1, 1)` setting (scatter off, so no scatter
/// percentile accrues) must reproduce the plain `hashed(16)` sweep
/// point field for field, label aside, on several platforms.
fn r1_matches_plain(quick: bool, seed: u64, failures: &mut Vec<String>) -> bool {
    let mut ok = true;
    for platform_id in [PlatformId::Native, PlatformId::Docker, PlatformId::Qemu] {
        let platform = platform_id.build();
        let single = |sweep: Vec<ClusterSetting>| {
            ClusterBenchmark {
                scatter_fraction: 0.0,
                sweep,
                ..scaling_bench(false, quick)
            }
            .run_trial(&platform, &mut SimRng::seed_from(seed))
            .expect("the degradation-gate configuration is valid")
        };
        let plain = single(vec![ClusterSetting::hashed(16, BASELINE_THETA)]);
        let quorum = single(vec![ClusterSetting::replicated(16, 1, 1)]);
        let mut relabelled = quorum[0].clone();
        relabelled.label = plain[0].label.clone();
        if plain[0] != relabelled {
            failures.push(format!(
                "{platform_id:?}: the R=1 quorum sweep diverged from plain single-shard routing"
            ));
            ok = false;
        }
    }
    ok
}

/// The max-of-K gate: on both backends the scatter p99 averaged over
/// the platform set must be monotone non-decreasing across the K=1/4/16
/// fan-out settings (per-platform p99s at quick scale carry too few
/// scatter samples to gate individually).
fn scatter_monotone(serial: &RunReport, failures: &mut Vec<String>) -> bool {
    let mut ok = true;
    for experiment in [
        ExperimentId::ClusterFailoverMemcached,
        ExperimentId::ClusterFailoverMysql,
    ] {
        let Some(fig) = serial.figure(experiment) else {
            // shared_checks already reported the missing experiment.
            continue;
        };
        let platforms = grid::platforms_of(fig, grid::FAILOVER_SCATTER_P99);
        let mean_at = |label: &str| {
            let sum: f64 = platforms
                .iter()
                .map(|platform| {
                    fig.series_named(&format!("{platform} {}", grid::FAILOVER_SCATTER_P99))
                        .and_then(|s| s.mean_of(label))
                        .unwrap_or_else(|| panic!("scatter p99 at {label:?} missing"))
                })
                .sum();
            sum / platforms.len().max(1) as f64
        };
        let (k1, k4, k16) = (mean_at("r3 w1"), mean_at("r3 k4"), mean_at("r3 k16"));
        if !(k1 > 0.0 && k1 <= k4 && k4 <= k16) {
            failures.push(format!(
                "{}: platform-mean scatter p99 not monotone in fan-out ({k1:.1}/{k4:.1}/{k16:.1} us at K=1/4/16)",
                experiment.slug()
            ));
            ok = false;
        }
    }
    ok
}

/// The failure-dynamics gate: every fault point records a positive
/// failure instant and hand-offs, fault-free points the -1 sentinel,
/// the drop rate spikes inside the failure window, and on
/// kill-then-recover points the post-recovery drop rate returns to
/// within [`RECOVERY_BAND`] of the pre-failure rate.
fn spike_subsides(serial: &RunReport, failures: &mut Vec<String>) -> bool {
    let mut ok = true;
    for experiment in [
        ExperimentId::ClusterFailoverMemcached,
        ExperimentId::ClusterFailoverMysql,
    ] {
        let Some(fig) = serial.figure(experiment) else {
            continue;
        };
        for platform in grid::platforms_of(fig, grid::FAILOVER_SCATTER_P99) {
            let at = |metric: &str, label: &str| {
                fig.series_named(&format!("{platform} {metric}"))
                    .and_then(|s| s.mean_of(label))
                    .unwrap_or_else(|| panic!("{metric} at {label:?} missing for {platform}"))
            };
            let fail_at = |label: &str| at(grid::FAILOVER_FAIL_AT, label);
            for label in ["r1", "r3 w1", "r3 k16"] {
                if fail_at(label) != -1.0 {
                    failures.push(format!(
                        "{}/{platform}: fault-free point \"{label}\" records a failure instant",
                        experiment.slug()
                    ));
                    ok = false;
                }
            }
            for label in ["r2 fail", "r2 failrec", "r3 failrec"] {
                if fail_at(label) <= 0.0 {
                    failures.push(format!(
                        "{}/{platform}: fault point \"{label}\" records no failure instant",
                        experiment.slug()
                    ));
                    ok = false;
                }
                if at(grid::FAILOVER_HANDOFFS, label) <= 0.0 {
                    failures.push(format!(
                        "{}/{platform}: fault point \"{label}\" recorded no quorum hand-offs",
                        experiment.slug()
                    ));
                    ok = false;
                }
                let pre = at(grid::FAILOVER_PRE_DROP, label);
                if at(grid::FAILOVER_WINDOW_DROP, label) <= pre {
                    failures.push(format!(
                        "{}/{platform}: \"{label}\" shows no drop spike inside the failure window",
                        experiment.slug()
                    ));
                    ok = false;
                }
            }
            for label in ["r2 failrec", "r3 failrec"] {
                let pre = at(grid::FAILOVER_PRE_DROP, label);
                let post = at(grid::FAILOVER_POST_DROP, label);
                if post > pre + RECOVERY_BAND {
                    failures.push(format!(
                        "{}/{platform}: \"{label}\" post-recovery drop rate {post:.4} stays above the pre-failure band ({pre:.4} + {RECOVERY_BAND})",
                        experiment.slug()
                    ));
                    ok = false;
                }
            }
        }
    }
    ok
}

/// The `--failover` mode: the replication/failover sweep, its scaling
/// curve, and the quorum-specific acceptance gates.
fn run_failover(args: &[String]) {
    let run = run_serial_and_parallel(
        "cluster --failover",
        args,
        Some("cluster_failover"),
        "BENCH_cluster_failover.json",
    );
    let quick = run.mode == "quick";
    let mut failures = Vec::new();

    let scaling = scaling_curve(true, quick, run.config.seed, &mut failures);
    let attest = FailoverAttestation {
        r1_matches_plain: r1_matches_plain(quick, run.config.seed, &mut failures),
        scatter_p99_monotone: scatter_monotone(&run.serial, &mut failures),
        spike_subsides: spike_subsides(&run.serial, &mut failures),
    };

    let json = report::cluster_failover_json(
        run.mode,
        run.config.seed,
        &run.serial,
        &run.parallel,
        &scaling,
        &attest,
    );
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    print_scaling(&scaling);
    println!(
        "attestations: r1_matches_plain {}, scatter_p99_monotone {}, spike_subsides {}",
        attest.r1_matches_plain, attest.scatter_p99_monotone, attest.spike_subsides
    );
    println!(
        "\nwall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    shared_checks(
        &run,
        [
            ExperimentId::ClusterFailoverMemcached,
            ExperimentId::ClusterFailoverMysql,
        ],
        grid::FAILOVER_SCATTER_P99,
        &mut failures,
    );
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    baseline_check(
        args,
        run.mode,
        &format!("{}_cluster_failover_min_events_per_sec", run.mode),
        &scaling,
        &mut failures,
    );
    if !failures.is_empty() {
        eprintln!("cluster --failover: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}

fn print_scaling(scaling: &[ShardCoreScaling]) {
    println!("| shard cores | wall (ms) | events/sec | identical |");
    println!("|---|---|---|---|");
    for point in scaling {
        println!(
            "| {} | {:.1} | {:.0} | {} |",
            point.cores, point.wall_ms, point.events_per_sec, point.identical
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--failover") {
        run_failover(&args);
        return;
    }
    // `cluster_m` selects exactly the two plain sharded-cluster
    // experiments (`cluster_memcached`, `cluster_mysql`) — the failover
    // slugs continue with `_failover_` and stay out of this mode.
    let run = run_serial_and_parallel("cluster", &args, Some("cluster_m"), "BENCH_cluster.json");
    let quick = run.mode == "quick";
    let mut failures = Vec::new();

    // Shard-core scaling curve: the Memcached sweep at 1/2/4/8 lanes,
    // each attested bit-identical to the 1-core reference.
    let scaling = scaling_curve(false, quick, run.config.seed, &mut failures);

    let json = report::cluster_json(
        run.mode,
        run.config.seed,
        &run.serial,
        &run.parallel,
        &scaling,
    );
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    print_scaling(&scaling);
    println!(
        "\nwall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    if args.iter().any(|a| a == "--trace") {
        let trace = harness::obs::emit_trace_artifacts("cluster", quick, run.config.seed);
        if let Some(token) = trace.non_finite {
            failures.push(format!(
                "trace timeline contains non-finite value {token:?}"
            ));
        }
        println!(
            "trace: {} spans accepted; artifacts: {}, {}",
            trace.spans_accepted, trace.chrome_path, trace.timeline_path
        );
    }

    shared_checks(
        &run,
        [ExperimentId::ClusterMemcached, ExperimentId::ClusterMysql],
        grid::CLUSTER_HOT_P99,
        &mut failures,
    );
    // Plain-mode domain invariant: imbalance is a max/mean ratio.
    for experiment in [ExperimentId::ClusterMemcached, ExperimentId::ClusterMysql] {
        if let Some(fig) = run.serial.figure(experiment) {
            for platform in grid::platforms_of(fig, grid::CLUSTER_HOT_P99) {
                let imbalance = fig
                    .series_named(&format!("{platform} {}", grid::CLUSTER_IMBALANCE))
                    .unwrap_or_else(|| panic!("imbalance series missing for {platform}"));
                for point in &imbalance.points {
                    if point.mean < 1.0 {
                        failures.push(format!(
                            "{}/{platform}: imbalance at \"{}\" is {} (a max/mean ratio below 1)",
                            experiment.slug(),
                            point.x,
                            point.mean,
                        ));
                    }
                }
            }
        }
    }
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    baseline_check(
        &args,
        run.mode,
        &format!("{}_cluster_min_events_per_sec", run.mode),
        &scaling,
        &mut failures,
    );
    if !failures.is_empty() {
        eprintln!("cluster: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
