//! Event-core throughput microbench: timing wheel vs reference heap.
//!
//! Drives a fixed number of events through the hierarchical-timing-wheel
//! `EventQueue` and through the retained `ReferenceHeap` (the pre-wheel
//! binary-heap implementation) under an identical steady-state schedule: a
//! large pending population where every pop reschedules a new event at a
//! pseudo-random offset, mixing slot-local, cascading and (rarely)
//! overflow-level delays. Both drives fold the popped `(timestamp, tag)`
//! sequence into an FNV-1a digest; the digests must match, proving the
//! wheel pops the identical order the heap defines.
//!
//! Writes `BENCH_event_loop.json` with per-implementation events/sec, the
//! wheel/heap speedup ratio and the order-equivalence digests. Exits
//! non-zero when the digests disagree or, with `--baseline`, when the
//! wheel's throughput or speedup falls below the checked-in floor — the
//! CI `bench-perf` job gates on that.
//!
//! Run with: `cargo run --release -p bench --bin event_loop`
//!
//! Flags:
//! * `--quick` — CI-sized drive (1M events over 64K pending) instead of
//!   the full 10M-event drive over 256K pending
//! * `--events N` / `--pending N` — override the drive size
//! * `--seed N` — schedule seed (default 2021)
//! * `--out PATH` — output path (default `BENCH_event_loop.json`)
//! * `--baseline PATH` — compare against a perf baseline (see
//!   `ci/perf_baseline.json`) and exit non-zero on regression

use std::time::Instant;

use harness::cli::{flag_value, parse_count};
use simcore::{EventQueue, Nanos, ReferenceHeap, SimRng};

/// One measured drive of an event-queue implementation.
struct Drive {
    events: u64,
    elapsed_secs: f64,
    digest: u64,
}

impl Drive {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.elapsed_secs.max(f64::MIN_POSITIVE)
    }
}

/// The two implementations under an identical push/pop interface.
trait EventSink {
    fn push(&mut self, at: Nanos, tag: u64);
    fn pop(&mut self) -> Option<(Nanos, u64)>;
}

impl EventSink for EventQueue<u64> {
    fn push(&mut self, at: Nanos, tag: u64) {
        EventQueue::push(self, at, tag);
    }
    fn pop(&mut self) -> Option<(Nanos, u64)> {
        EventQueue::pop(self)
    }
}

impl EventSink for ReferenceHeap<u64> {
    fn push(&mut self, at: Nanos, tag: u64) {
        ReferenceHeap::push(self, at, tag);
    }
    fn pop(&mut self) -> Option<(Nanos, u64)> {
        ReferenceHeap::pop(self)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Word-at-a-time FNV-1a-style mix: one xor and one multiply per word, so
/// the digest costs the same negligible overhead in both measured drives.
fn mix(digest: u64, word: u64) -> u64 {
    (digest ^ word).wrapping_mul(FNV_PRIME)
}

/// The next pseudo-random reschedule delay: mostly sub-millisecond gaps
/// exercising the fine wheel levels, a slice of multi-millisecond gaps
/// cascading through the coarse levels, and one push in 4096 far beyond
/// the 2^48 ns wheel horizon to keep the overflow spill level honest.
/// Power-of-two masks only — no integer division in the measured loop.
fn next_delay(rng: &mut SimRng) -> Nanos {
    let roll = rng.next_u64();
    let ns = match roll & 0xFFF {
        0 => (1u64 << 49) + (roll >> 12 & 0xF_FFFF),
        r if r < 512 => 1_048_576 + (roll >> 12 & 0xFF_FFFF),
        _ => 200 + (roll >> 12 & 0xF_FFFF),
    };
    Nanos::from_nanos(ns)
}

/// Steady-state drive: prefill `pending` events, then pop-and-reschedule
/// until `events` pushes have happened, then drain. Every decision comes
/// from the seeded RNG and the popped timestamps, so both implementations
/// see byte-identical schedules iff they pop in the same order.
fn drive<Q: EventSink>(queue: &mut Q, events: u64, pending: u64, seed: u64) -> Drive {
    let mut rng = SimRng::seed_from(seed);
    let mut digest = FNV_OFFSET;
    let mut pushed = 0u64;
    let mut popped = 0u64;
    let start = Instant::now();
    while pushed < pending.min(events) {
        queue.push(next_delay(&mut rng), pushed);
        pushed += 1;
    }
    while let Some((at, tag)) = queue.pop() {
        popped += 1;
        digest = mix(digest, at.as_nanos());
        digest = mix(digest, tag);
        if pushed < events {
            queue.push(at + next_delay(&mut rng), pushed);
            pushed += 1;
        }
    }
    let elapsed_secs = start.elapsed().as_secs_f64();
    assert_eq!(popped, events, "every pushed event must pop exactly once");
    Drive {
        events,
        elapsed_secs,
        digest,
    }
}

/// Extracts the number following `"key":` from a flat JSON object — the
/// same hand-rolled JSON handling the rest of the workspace uses (the
/// vendored stand-ins ship no JSON parser).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mode = if quick { "quick" } else { "full" };
    // The full drive holds a quarter-million events in flight — the
    // "millions of requests" regime the wheel exists for, where the
    // heap's O(log n) pops wander cache-hostile paths.
    let (default_events, default_pending) = if quick {
        (1_000_000, 65_536)
    } else {
        (10_000_000, 262_144)
    };
    let events = parse_count(&args, "--events").map_or(default_events, |n| n as u64);
    let pending = parse_count(&args, "--pending").map_or(default_pending, |n| n as u64);
    let seed = parse_count(&args, "--seed").map_or(2021, |n| n as u64);
    let out_path =
        flag_value(&args, "--out").unwrap_or_else(|| "BENCH_event_loop.json".to_string());

    // Warm both implementations (allocator pools, branch predictors)
    // before the measured drives.
    drive(&mut EventQueue::new(), events / 20, pending.min(1024), seed);
    drive(
        &mut ReferenceHeap::new(),
        events / 20,
        pending.min(1024),
        seed,
    );

    eprintln!("event_loop: {mode} drive, {events} events over {pending} pending, seed {seed}");
    let wheel = drive(&mut EventQueue::new(), events, pending, seed);
    let heap = drive(&mut ReferenceHeap::new(), events, pending, seed);

    let speedup = wheel.events_per_sec() / heap.events_per_sec().max(f64::MIN_POSITIVE);
    let order_equivalent = wheel.digest == heap.digest;

    let json = format!(
        "{{\n  \"name\": \"event_loop\",\n  \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \
         \"events\": {events},\n  \"pending\": {pending},\n  \"wheel\": {{\n    \
         \"events_per_sec\": {:.1},\n    \"elapsed_ms\": {:.3},\n    \"digest\": \"{:#018x}\"\n  }},\n  \
         \"heap\": {{\n    \"events_per_sec\": {:.1},\n    \"elapsed_ms\": {:.3},\n    \
         \"digest\": \"{:#018x}\"\n  }},\n  \"speedup\": {:.3},\n  \"order_equivalent\": {}\n}}\n",
        wheel.events_per_sec(),
        wheel.elapsed_secs * 1e3,
        wheel.digest,
        heap.events_per_sec(),
        heap.elapsed_secs * 1e3,
        heap.digest,
        speedup,
        order_equivalent,
    );
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!("| impl | events/sec | elapsed (ms) | digest |");
    println!("|---|---|---|---|");
    println!(
        "| timing wheel | {:.0} | {:.1} | {:#018x} |",
        wheel.events_per_sec(),
        wheel.elapsed_secs * 1e3,
        wheel.digest
    );
    println!(
        "| reference heap | {:.0} | {:.1} | {:#018x} |",
        heap.events_per_sec(),
        heap.elapsed_secs * 1e3,
        heap.digest
    );
    println!("\nspeedup: {speedup:.2}x; order equivalent: {order_equivalent}; report: {out_path}");

    let mut failures = Vec::new();
    if !order_equivalent {
        failures.push(format!(
            "wheel digest {:#018x} != heap digest {:#018x}: pop orders diverge",
            wheel.digest, heap.digest
        ));
    }
    if let Some(path) = flag_value(&args, "--baseline") {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let min_eps = json_number(&baseline, &format!("{mode}_min_events_per_sec"))
            .unwrap_or_else(|| panic!("baseline {path} lacks {mode}_min_events_per_sec"));
        let min_speedup = json_number(&baseline, &format!("{mode}_min_speedup"))
            .unwrap_or_else(|| panic!("baseline {path} lacks {mode}_min_speedup"));
        println!(
            "baseline ({mode}): min {min_eps:.0} events/sec (wheel {:.0}), \
             min speedup {min_speedup:.2}x (measured {speedup:.2}x)",
            wheel.events_per_sec()
        );
        if wheel.events_per_sec() < min_eps {
            failures.push(format!(
                "wheel throughput {:.0} events/sec regressed below the baseline floor {min_eps:.0}",
                wheel.events_per_sec()
            ));
        }
        if speedup < min_speedup {
            failures.push(format!(
                "wheel speedup {speedup:.2}x fell below the baseline floor {min_speedup:.2}x"
            ));
        }
    }
    if !failures.is_empty() {
        eprintln!("event_loop: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
