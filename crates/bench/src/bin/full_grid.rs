//! Machine-readable full-grid bench runner.
//!
//! Runs the whole evaluation grid twice — serially (1 worker) and with N
//! workers — and writes `BENCH_full_grid.json` with per-experiment
//! wall-clock numbers, seeding the repo's performance trajectory. Exits
//! non-zero if any experiment cell is missing from the report, so CI can
//! gate on grid completeness.
//!
//! Run with: `cargo run --release -p bench --bin full_grid`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_full_grid.json`)

use harness::cli::run_serial_and_parallel;
use harness::{report, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let run = run_serial_and_parallel("full_grid", &args, None, "BENCH_full_grid.json");

    let serialize_start = std::time::Instant::now();
    let json = report::full_grid_json(run.mode, run.config.seed, &run.serial, &run.parallel);
    let serialize_ms = serialize_start.elapsed().as_secs_f64() * 1e3;
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    println!(
        "| experiment | cells | serial (ms) | {} workers (ms) |",
        run.parallel_workers
    );
    println!("|---|---|---|---|");
    for timing in &run.serial.timings {
        let parallel_ms = run
            .parallel
            .timings
            .iter()
            .find(|t| t.experiment == timing.experiment)
            .map(|t| t.cell_time.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        println!(
            "| {} | {} | {:.1} | {:.1} |",
            timing.experiment.slug(),
            timing.cells,
            timing.cell_time.as_secs_f64() * 1e3,
            parallel_ms,
        );
    }
    println!(
        "\n| phase | serial (ms) | {} workers (ms) |",
        run.parallel_workers
    );
    println!("|---|---|---|");
    println!(
        "| cell run | {:.1} | {:.1} |",
        run.serial.total_cell_time().as_secs_f64() * 1e3,
        run.parallel.total_cell_time().as_secs_f64() * 1e3,
    );
    println!(
        "| merge | {:.2} | {:.2} |",
        run.serial.merge.as_secs_f64() * 1e3,
        run.parallel.merge.as_secs_f64() * 1e3,
    );
    println!("| serialize (shared) | {serialize_ms:.2} | {serialize_ms:.2} |");
    println!(
        "\nwall clock: serial {:.0} ms, {} workers {:.0} ms ({:.2}x); report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.serial.wall.as_secs_f64() / run.parallel.wall.as_secs_f64().max(1e-9),
        run.out_path,
    );

    // Completeness gate: every experiment of the evaluation must be in the
    // report with a full cell complement and non-empty figure data.
    let mut missing = Vec::new();
    for experiment in ExperimentId::all() {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let timing = pass.timings.iter().find(|t| t.experiment == *experiment);
            let ok = timing.is_some_and(|t| t.cells > 0)
                && pass.figure(*experiment).is_some_and(|fig| {
                    !fig.series.is_empty() && fig.series.iter().any(|s| !s.points.is_empty())
                });
            if !ok {
                missing.push(format!("{} ({label})", experiment.slug()));
            }
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "full_grid: missing experiment cells: {}",
            missing.join(", ")
        );
        std::process::exit(1);
    }
}
