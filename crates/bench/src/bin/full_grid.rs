//! Machine-readable full-grid bench runner.
//!
//! Runs the whole evaluation grid twice — serially (1 worker) and with N
//! workers — and writes `BENCH_full_grid.json` with per-experiment
//! wall-clock numbers, seeding the repo's performance trajectory. Exits
//! non-zero if any experiment cell is missing from the report, so CI can
//! gate on grid completeness.
//!
//! Run with: `cargo run --release -p bench --bin full_grid`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_full_grid.json`)

use harness::cli::{flag_value, parse_count};
use harness::{report, Executor, ExperimentId, RunConfig, RunPlan};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paper_scale = args.iter().any(|a| a == "--paper");
    let mode = if paper_scale { "paper" } else { "quick" };
    let cfg = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };
    let out_path = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_full_grid.json".into());

    let mut plan = RunPlan::new(cfg);
    if let Some(trials) = parse_count(&args, "--trials") {
        plan = plan.with_trials(trials);
    }
    let workers = parse_count(&args, "--workers").unwrap_or(0);

    let serial_plan = plan.clone().with_workers(1);
    let parallel_plan = plan.with_workers(workers);
    let parallel_workers = parallel_plan.effective_workers();

    eprintln!(
        "full_grid: serial pass (1 worker, {mode} mode, seed {})",
        cfg.seed
    );
    let serial = Executor::new(serial_plan).run();
    eprintln!(
        "full_grid: parallel pass ({parallel_workers} workers); serial took {:.0} ms",
        serial.wall.as_secs_f64() * 1e3
    );
    let parallel = Executor::new(parallel_plan).run();

    let json = report::full_grid_json(mode, cfg.seed, &serial, &parallel);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));

    println!("| experiment | cells | serial (ms) | {parallel_workers} workers (ms) |");
    println!("|---|---|---|---|");
    for timing in &serial.timings {
        let parallel_ms = parallel
            .timings
            .iter()
            .find(|t| t.experiment == timing.experiment)
            .map(|t| t.cell_time.as_secs_f64() * 1e3)
            .unwrap_or(0.0);
        println!(
            "| {} | {} | {:.1} | {:.1} |",
            timing.experiment.slug(),
            timing.cells,
            timing.cell_time.as_secs_f64() * 1e3,
            parallel_ms,
        );
    }
    println!(
        "\nwall clock: serial {:.0} ms, {parallel_workers} workers {:.0} ms ({:.2}x); report: {out_path}",
        serial.wall.as_secs_f64() * 1e3,
        parallel.wall.as_secs_f64() * 1e3,
        serial.wall.as_secs_f64() / parallel.wall.as_secs_f64().max(1e-9),
    );

    // Completeness gate: every experiment of the evaluation must be in the
    // report with a full cell complement and non-empty figure data.
    let mut missing = Vec::new();
    for experiment in ExperimentId::all() {
        for (label, run) in [("serial", &serial), ("parallel", &parallel)] {
            let timing = run.timings.iter().find(|t| t.experiment == *experiment);
            let ok = timing.is_some_and(|t| t.cells > 0)
                && run.figure(*experiment).is_some_and(|fig| {
                    !fig.series.is_empty() && fig.series.iter().any(|s| !s.points.is_empty())
                });
            if !ok {
                missing.push(format!("{} ({label})", experiment.slug()));
            }
        }
    }
    if !missing.is_empty() {
        eprintln!(
            "full_grid: missing experiment cells: {}",
            missing.join(", ")
        );
        std::process::exit(1);
    }
}
