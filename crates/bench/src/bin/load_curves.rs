//! Machine-readable open-loop load-curve bench runner.
//!
//! Runs the two load-curve experiments (`load_memcached`, `load_mysql`)
//! twice — serially (1 worker) and with N workers — and writes
//! `BENCH_load_curves.json` with per-platform throughput-vs-latency
//! sweeps. Exits non-zero if the serial and parallel runs disagree, if an
//! experiment is missing, or if the emitted JSON contains any non-finite
//! value (NaN/inf), so CI can gate on all three.
//!
//! Run with: `cargo run --release -p bench --bin load_curves`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_load_curves.json`)
//! * `--trace` — additionally run one traced 0.8-fraction sweep point and
//!   write `TRACE_loadgen.json` (Chrome trace events) plus
//!   `BENCH_trace_loadgen.json` (the windowed-metrics timeline)

use harness::cli::run_serial_and_parallel;
use harness::{report, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `load_` keeps the filter to the two open-loop experiments (the
    // closed-loop fig16_memcached/fig17_mysql slugs do not contain it).
    let run = run_serial_and_parallel(
        "load_curves",
        &args,
        Some("load_"),
        "BENCH_load_curves.json",
    );

    let json = report::load_curves_json(run.mode, run.config.seed, &run.serial, &run.parallel);
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    println!(
        "wall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    let mut failures = Vec::new();
    if args.iter().any(|a| a == "--trace") {
        let trace =
            harness::obs::emit_trace_artifacts("loadgen", run.mode == "quick", run.config.seed);
        if let Some(token) = trace.non_finite {
            failures.push(format!(
                "trace timeline contains non-finite value {token:?}"
            ));
        }
        println!(
            "trace: {} spans accepted; artifacts: {}, {}",
            trace.spans_accepted, trace.chrome_path, trace.timeline_path
        );
    }
    for experiment in [ExperimentId::LoadMemcached, ExperimentId::LoadMysql] {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let ok = pass.figure(experiment).is_some_and(|fig| {
                !fig.series.is_empty() && fig.series.iter().all(|s| !s.points.is_empty())
            });
            if !ok {
                failures.push(format!(
                    "{} missing from the {label} run",
                    experiment.slug()
                ));
            }
        }
    }
    if run.serial.figures != run.parallel.figures {
        failures.push(format!(
            "serial and {}-worker figure data disagree",
            run.parallel_workers
        ));
    }
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    if !failures.is_empty() {
        eprintln!("load_curves: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
