//! Machine-readable middleware-pipeline bench runner.
//!
//! Runs the two pipeline experiments (`pipeline_memcached`,
//! `pipeline_mysql`) twice — serially (1 worker) and with N workers —
//! and writes `BENCH_pipeline.json` with per-platform depth ×
//! cache-hit-rate sweeps (sojourn percentiles, per-request stage tax,
//! short-circuit / cache-hit / drop fractions). Exits non-zero if the
//! serial and parallel runs disagree, if an experiment is missing, if
//! the emitted JSON contains any non-finite value (NaN/inf), or if the
//! sweep violates the pipeline's domain invariants: the deepest
//! warm-cache chain must not undercut the shallowest on median latency,
//! and every fraction series must stay within [0, 1].
//!
//! Run with: `cargo run --release -p bench --bin pipeline`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--quick` — quick configuration (the default; accepted for symmetry)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_pipeline.json`)
//! * `--trace` — additionally run one traced depth-4 sweep point and
//!   write `TRACE_pipeline.json` (Chrome trace events) plus
//!   `BENCH_trace_pipeline.json` (the windowed-metrics timeline)

use harness::cli::run_serial_and_parallel;
use harness::{grid, report, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `pipeline` selects exactly the two middleware-pipeline experiments.
    let run = run_serial_and_parallel("pipeline", &args, Some("pipeline"), "BENCH_pipeline.json");

    let json = report::pipeline_json(run.mode, run.config.seed, &run.serial, &run.parallel);
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    println!(
        "wall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    let mut failures = Vec::new();
    if args.iter().any(|a| a == "--trace") {
        let trace =
            harness::obs::emit_trace_artifacts("pipeline", run.mode == "quick", run.config.seed);
        if let Some(token) = trace.non_finite {
            failures.push(format!(
                "trace timeline contains non-finite value {token:?}"
            ));
        }
        println!(
            "trace: {} spans accepted; artifacts: {}, {}",
            trace.spans_accepted, trace.chrome_path, trace.timeline_path
        );
    }
    for experiment in [ExperimentId::PipelineMemcached, ExperimentId::PipelineMysql] {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let ok = pass.figure(experiment).is_some_and(|fig| {
                !fig.series.is_empty() && fig.series.iter().all(|s| !s.points.is_empty())
            });
            if !ok {
                failures.push(format!(
                    "{} missing from the {label} run",
                    experiment.slug()
                ));
            }
        }
        // Domain invariants: deeper warm-cache chains cannot be cheaper
        // than the shallowest at the median, and the fraction metrics are
        // probabilities.
        if let Some(fig) = run.serial.figure(experiment) {
            for platform in grid::platforms_of(fig, grid::PIPELINE_STAGE_TAX) {
                let series = |metric: &str| {
                    fig.series_named(&format!("{platform} {metric}"))
                        .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                };
                let p50 = series(grid::PIPELINE_P50);
                let (Some(first), Some(last)) = (p50.points.first(), p50.points.last()) else {
                    failures.push(format!("{}/{platform}: empty p50 sweep", experiment.slug()));
                    continue;
                };
                if last.mean < first.mean {
                    failures.push(format!(
                        "{}/{platform}: p50 at \"{}\" ({:.1} us) undercuts \"{}\" ({:.1} us)",
                        experiment.slug(),
                        last.x,
                        last.mean,
                        first.x,
                        first.mean,
                    ));
                }
                for metric in [
                    grid::PIPELINE_SHORT_CIRCUIT,
                    grid::PIPELINE_CACHE_HIT,
                    grid::PIPELINE_DROP_RATE,
                ] {
                    for point in &series(metric).points {
                        if !(0.0..=1.0).contains(&point.mean) {
                            failures.push(format!(
                                "{}/{platform}: {metric} at \"{}\" is {} (outside [0, 1])",
                                experiment.slug(),
                                point.x,
                                point.mean,
                            ));
                        }
                    }
                }
            }
        }
    }
    if run.serial.figures != run.parallel.figures {
        failures.push(format!(
            "serial and {}-worker figure data disagree",
            run.parallel_workers
        ));
    }
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    if !failures.is_empty() {
        eprintln!("pipeline: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
