//! Machine-readable multi-tenant isolation bench runner.
//!
//! Runs the two tenant-isolation experiments
//! (`tenant_isolation_memcached`, `tenant_isolation_mysql`) twice —
//! serially (1 worker) and with N workers — and writes
//! `BENCH_tenant_isolation.json` with per-platform victim/aggressor
//! sweeps (percentiles, achieved throughput, drop and SLO-violation
//! rates, isolation indices). Exits non-zero if the serial and parallel
//! runs disagree, if an experiment is missing, if the emitted JSON
//! contains any non-finite value (NaN/inf), or if any platform's victim
//! p99 inflation under the weighted scheduler exceeds its inflation under
//! unweighted FIFO sharing — the isolation guarantee the weighted slots
//! exist to provide.
//!
//! Run with: `cargo run --release -p bench --bin tenant_isolation`
//!
//! Flags:
//! * `--paper` — full-scale configuration (default is quick)
//! * `--workers N` — parallel worker count (default: available parallelism)
//! * `--trials N` — override every experiment's trial count
//! * `--out PATH` — output path (default `BENCH_tenant_isolation.json`)
//! * `--trace` — additionally run one traced victim/aggressor co-location
//!   point and write `TRACE_tenancy.json` (Chrome trace events) plus
//!   `BENCH_trace_tenancy.json` (the windowed-metrics timeline)

use harness::cli::run_serial_and_parallel;
use harness::{grid, report, ExperimentId};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `tenant_` selects exactly the two co-location experiments.
    let run = run_serial_and_parallel(
        "tenant_isolation",
        &args,
        Some("tenant_"),
        "BENCH_tenant_isolation.json",
    );

    let json = report::tenant_isolation_json(run.mode, run.config.seed, &run.serial, &run.parallel);
    std::fs::write(&run.out_path, &json)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", run.out_path));

    for figure in &run.serial.figures {
        println!("{}", report::to_markdown(figure));
    }
    println!(
        "wall clock: serial {:.0} ms, {} workers {:.0} ms; report: {}",
        run.serial.wall.as_secs_f64() * 1e3,
        run.parallel_workers,
        run.parallel.wall.as_secs_f64() * 1e3,
        run.out_path,
    );

    let mut failures = Vec::new();
    if args.iter().any(|a| a == "--trace") {
        let trace =
            harness::obs::emit_trace_artifacts("tenancy", run.mode == "quick", run.config.seed);
        if let Some(token) = trace.non_finite {
            failures.push(format!(
                "trace timeline contains non-finite value {token:?}"
            ));
        }
        println!(
            "trace: {} spans accepted; artifacts: {}, {}",
            trace.spans_accepted, trace.chrome_path, trace.timeline_path
        );
    }
    for experiment in [
        ExperimentId::TenantIsolationMemcached,
        ExperimentId::TenantIsolationMysql,
    ] {
        for (label, pass) in [("serial", &run.serial), ("parallel", &run.parallel)] {
            let ok = pass.figure(experiment).is_some_and(|fig| {
                !fig.series.is_empty() && fig.series.iter().all(|s| !s.points.is_empty())
            });
            if !ok {
                failures.push(format!(
                    "{} missing from the {label} run",
                    experiment.slug()
                ));
            }
        }
        // The isolation guarantee: at every sweep point of every platform,
        // the victim's p99 inflation over its solo baseline under the
        // weighted scheduler must not exceed its inflation under
        // unweighted FIFO sharing.
        if let Some(fig) = run.serial.figure(experiment) {
            let platforms: Vec<String> = fig
                .series
                .iter()
                .filter_map(|s| {
                    s.label
                        .strip_suffix(&format!(" {}", grid::TENANT_VICTIM_P99))
                })
                .map(str::to_string)
                .collect();
            for platform in &platforms {
                let series = |metric: &str| {
                    fig.series_named(&format!("{platform} {metric}"))
                        .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                };
                let p99 = series(grid::TENANT_VICTIM_P99);
                let fifo = series(grid::TENANT_VICTIM_FIFO_P99);
                let solo = series(grid::TENANT_VICTIM_SOLO_P99);
                for i in 0..p99.points.len() {
                    let baseline = solo.points[i].mean.max(f64::MIN_POSITIVE);
                    let weighted = p99.points[i].mean / baseline;
                    let unweighted = fifo.points[i].mean / baseline;
                    if weighted > unweighted {
                        failures.push(format!(
                            "{}/{platform} at aggressor {}: weighted inflation {weighted:.3} \
                             exceeds FIFO inflation {unweighted:.3}",
                            experiment.slug(),
                            p99.points[i].x,
                        ));
                    }
                }
            }
        }
    }
    if run.serial.figures != run.parallel.figures {
        failures.push(format!(
            "serial and {}-worker figure data disagree",
            run.parallel_workers
        ));
    }
    if let Some(token) = report::find_non_finite(&json) {
        failures.push(format!("emitted JSON contains non-finite value {token:?}"));
    }
    if !failures.is_empty() {
        eprintln!("tenant_isolation: FAILED: {}", failures.join("; "));
        std::process::exit(1);
    }
}
