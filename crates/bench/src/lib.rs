//! Shared helpers for the Criterion benchmark targets.
//!
//! Each bench target regenerates one (or a small group of) paper figures
//! and prints the resulting table, so `cargo bench` both measures the
//! harness and emits the reproduced rows/series. Figure generation goes
//! through the harness's cell grid — the same path the parallel executor
//! shards — so bench output is bit-identical to every other run mode.
//! The `full_grid` binary (`cargo run -p bench --bin full_grid`) runs the
//! whole grid serial and parallel and emits `BENCH_full_grid.json`.

#![warn(missing_docs)]

use harness::{figures, report, ExperimentId, RunConfig};

/// The configuration the bench targets use: quick mode with a fixed seed so
/// the printed tables are stable across runs.
pub fn bench_config() -> RunConfig {
    let mut cfg = RunConfig::quick(2021);
    cfg.runs = 2;
    cfg.startups = 40;
    cfg
}

/// Regenerates a figure and prints its markdown table once.
pub fn print_figure(experiment: ExperimentId) {
    let fig = figures::run(experiment, &bench_config());
    println!("\n{}", report::to_markdown(&fig));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_small() {
        assert!(bench_config().quick);
        assert!(bench_config().runs <= 3);
    }
}
