//! The physical block device at the bottom of every storage stack.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Nanos};

/// A physical block device (the paper's dedicated fast NVMe SSD).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockDevice {
    /// Sustained sequential read bandwidth.
    pub seq_read_bandwidth: Bandwidth,
    /// Sustained sequential write bandwidth.
    pub seq_write_bandwidth: Bandwidth,
    /// 4 KiB random read latency (device service time, no queueing).
    pub rand_read_latency: Nanos,
    /// 4 KiB random write latency (into the device write cache).
    pub rand_write_latency: Nanos,
    /// Maximum sustainable 4 KiB IOPS.
    pub max_iops: u64,
}

impl BlockDevice {
    /// The dedicated NVMe SSD of the paper's testbed.
    pub fn nvme_testbed() -> Self {
        BlockDevice {
            seq_read_bandwidth: Bandwidth::from_mib_per_sec(3_200.0),
            seq_write_bandwidth: Bandwidth::from_mib_per_sec(2_900.0),
            rand_read_latency: Nanos::from_micros(85),
            rand_write_latency: Nanos::from_micros(25),
            max_iops: 600_000,
        }
    }

    /// Sequential bandwidth for the given direction.
    pub fn seq_bandwidth(&self, write: bool) -> Bandwidth {
        if write {
            self.seq_write_bandwidth
        } else {
            self.seq_read_bandwidth
        }
    }

    /// Device service latency for one small random request.
    pub fn random_latency(&self, write: bool) -> Nanos {
        if write {
            self.rand_write_latency
        } else {
            self.rand_read_latency
        }
    }

    /// Time for the device to transfer one request of `bytes` sequentially.
    pub fn transfer_time(&self, bytes: u64, write: bool) -> Nanos {
        self.seq_bandwidth(write).transfer_time(bytes)
    }
}

impl Default for BlockDevice {
    fn default() -> Self {
        Self::nvme_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_is_a_fast_nvme() {
        let d = BlockDevice::nvme_testbed();
        assert!(d.seq_read_bandwidth.mib_per_sec() >= 3_000.0);
        assert!(d.rand_read_latency.as_micros_f64() < 150.0);
        assert!(d.max_iops >= 500_000);
    }

    #[test]
    fn writes_are_slower_sequentially_but_faster_randomly() {
        let d = BlockDevice::nvme_testbed();
        assert!(d.seq_bandwidth(true).bytes_per_sec() < d.seq_bandwidth(false).bytes_per_sec());
        // Random writes land in the device cache and complete faster than
        // random reads, as on real NVMe hardware.
        assert!(d.random_latency(true) < d.random_latency(false));
    }

    #[test]
    fn transfer_time_scales_with_size() {
        let d = BlockDevice::nvme_testbed();
        let small = d.transfer_time(128 * 1024, false);
        let large = d.transfer_time(1024 * 1024, false);
        assert!(large > small * 7);
        assert!(large < small * 9);
    }
}
