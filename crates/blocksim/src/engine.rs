//! I/O submission engines.
//!
//! The paper uses fio's `libaio` engine for all block benchmarks and notes
//! that OSv has no working libaio implementation (one of the reasons it is
//! excluded from the I/O figures). The engine determines how many requests
//! can be in flight and the per-request submission cost.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// An I/O submission engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoEngine {
    /// Linux native AIO (`io_submit`/`io_getevents`).
    Libaio,
    /// Synchronous positional reads/writes (`pread`/`pwrite`).
    Psync,
}

impl IoEngine {
    /// Per-request submission/completion CPU cost (syscalls, ring
    /// management), excluding the device time.
    pub fn per_request_overhead(self) -> Nanos {
        match self {
            IoEngine::Libaio => Nanos::from_micros(2),
            IoEngine::Psync => Nanos::from_nanos(1_200),
        }
    }

    /// Effective number of requests the engine keeps in flight given the
    /// requested queue depth.
    pub fn effective_depth(self, requested: u32) -> u32 {
        match self {
            IoEngine::Libaio => requested.max(1),
            IoEngine::Psync => 1,
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IoEngine::Libaio => "libaio",
            IoEngine::Psync => "psync",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn libaio_honours_queue_depth_psync_does_not() {
        assert_eq!(IoEngine::Libaio.effective_depth(32), 32);
        assert_eq!(IoEngine::Psync.effective_depth(32), 1);
        assert_eq!(IoEngine::Libaio.effective_depth(0), 1);
    }

    #[test]
    fn psync_has_lower_per_request_cost() {
        assert!(IoEngine::Psync.per_request_overhead() < IoEngine::Libaio.per_request_overhead());
    }

    #[test]
    fn labels_match() {
        assert_eq!(IoEngine::Libaio.label(), "libaio");
        assert_eq!(IoEngine::Psync.label(), "psync");
    }
}
