//! Storage layers a request traverses between the guest and the device.
//!
//! Each isolation platform attaches its storage differently: Docker passes
//! a bind mount, LXC recreates its container in a ZFS pool, hypervisors
//! attach the target medium as an extra virtio-blk drive, Kata shares the
//! host directory over 9p (or virtio-fs), and gVisor routes every I/O
//! syscall through the Sentry to the Gofer process over 9p. Each layer
//! contributes per-request latency, a bandwidth efficiency factor, and a
//! set of host kernel functions for the HAP trace.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// One layer in a platform's storage path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageLayer {
    /// A plain bind mount into the container (Docker `--volume`).
    BindMount,
    /// Docker's layered overlay filesystem (for the root filesystem).
    OverlayFs,
    /// The ZFS filesystem LXC uses for its storage pools.
    Zfs,
    /// A loop device exposing a host file as a guest block device.
    LoopDevice,
    /// A paravirtual virtio-blk queue between guest and VMM.
    VirtioBlk,
    /// The 9p shared filesystem (Kata's default shared rootfs transport,
    /// and the protocol between gVisor's Sentry and Gofer).
    NineP,
    /// virtio-fs: FUSE over virtio with DAX, the faster replacement for 9p.
    VirtioFs,
    /// The gVisor Gofer process boundary (Sentry → Gofer IPC on top of 9p).
    GoferBoundary,
    /// The gVisor Sentry syscall interception layer for I/O system calls.
    SentryIntercept,
}

impl StorageLayer {
    /// Per-request latency added by this layer.
    pub fn per_request_latency(self) -> Nanos {
        match self {
            StorageLayer::BindMount => Nanos::from_nanos(150),
            StorageLayer::OverlayFs => Nanos::from_nanos(700),
            StorageLayer::Zfs => Nanos::from_micros(3),
            StorageLayer::LoopDevice => Nanos::from_micros(4),
            StorageLayer::VirtioBlk => Nanos::from_micros(10),
            StorageLayer::NineP => Nanos::from_micros(120),
            StorageLayer::VirtioFs => Nanos::from_micros(18),
            StorageLayer::GoferBoundary => Nanos::from_micros(70),
            StorageLayer::SentryIntercept => Nanos::from_micros(12),
        }
    }

    /// Multiplicative throughput efficiency of the layer for large
    /// streaming transfers (1.0 = transparent).
    pub fn throughput_efficiency(self) -> f64 {
        match self {
            StorageLayer::BindMount => 1.0,
            StorageLayer::OverlayFs => 0.97,
            StorageLayer::Zfs => 0.93,
            StorageLayer::LoopDevice => 0.95,
            StorageLayer::VirtioBlk => 0.96,
            StorageLayer::NineP => 0.55,
            StorageLayer::VirtioFs => 0.92,
            StorageLayer::GoferBoundary => 0.80,
            StorageLayer::SentryIntercept => 0.90,
        }
    }

    /// Whether the layer swallows the `O_DIRECT` flag so that it no longer
    /// reaches the host block layer (the Section 3.3 caching pitfall:
    /// loop-device-backed guest images do not propagate `direct`).
    pub fn swallows_direct_flag(self) -> bool {
        matches!(
            self,
            StorageLayer::LoopDevice | StorageLayer::NineP | StorageLayer::GoferBoundary
        )
    }

    /// Host kernel functions this layer causes to run per request batch.
    pub fn host_functions(self) -> &'static [&'static str] {
        match self {
            StorageLayer::BindMount => &["vfs_read", "vfs_write", "lookup_fast"],
            StorageLayer::OverlayFs => {
                &["ovl_open", "ovl_read_iter", "ovl_write_iter", "ovl_lookup"]
            }
            StorageLayer::Zfs => &["zpl_read", "zpl_write", "zfs_read", "zfs_write"],
            StorageLayer::LoopDevice => &["loop_queue_rq", "lo_rw_aio", "submit_bio"],
            StorageLayer::VirtioBlk => &[
                "ioeventfd_write",
                "eventfd_signal",
                "irqfd_wakeup",
                "submit_bio",
                "blk_mq_submit_bio",
                "nvme_queue_rq",
            ],
            StorageLayer::NineP => &[
                "p9_client_rpc",
                "p9_client_read",
                "p9_client_write",
                "v9fs_vfs_lookup",
                "v9fs_file_read_iter",
                "v9fs_file_write_iter",
                "unix_stream_sendmsg",
                "unix_stream_recvmsg",
            ],
            StorageLayer::VirtioFs => &[
                "fuse_simple_request",
                "fuse_file_read_iter",
                "fuse_file_write_iter",
                "fuse_do_getattr",
            ],
            StorageLayer::GoferBoundary => &[
                "unix_stream_sendmsg",
                "unix_stream_recvmsg",
                "vfs_read",
                "vfs_write",
                "do_sys_openat2",
            ],
            StorageLayer::SentryIntercept => {
                &["seccomp_filter", "__seccomp_filter", "seccomp_run_filters"]
            }
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            StorageLayer::BindMount => "bind-mount",
            StorageLayer::OverlayFs => "overlayfs",
            StorageLayer::Zfs => "zfs",
            StorageLayer::LoopDevice => "loop",
            StorageLayer::VirtioBlk => "virtio-blk",
            StorageLayer::NineP => "9p",
            StorageLayer::VirtioFs => "virtio-fs",
            StorageLayer::GoferBoundary => "gofer",
            StorageLayer::SentryIntercept => "sentry",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskern::kernel_fn::KernelFunctionRegistry;

    const ALL: &[StorageLayer] = &[
        StorageLayer::BindMount,
        StorageLayer::OverlayFs,
        StorageLayer::Zfs,
        StorageLayer::LoopDevice,
        StorageLayer::VirtioBlk,
        StorageLayer::NineP,
        StorageLayer::VirtioFs,
        StorageLayer::GoferBoundary,
        StorageLayer::SentryIntercept,
    ];

    #[test]
    fn nine_p_is_the_least_efficient_shared_fs() {
        assert!(
            StorageLayer::NineP.throughput_efficiency()
                < StorageLayer::VirtioFs.throughput_efficiency()
        );
        assert!(
            StorageLayer::NineP.per_request_latency()
                > StorageLayer::VirtioFs.per_request_latency()
        );
    }

    #[test]
    fn bind_mount_is_nearly_transparent() {
        assert!(StorageLayer::BindMount.throughput_efficiency() > 0.99);
        assert!(
            StorageLayer::BindMount
                .per_request_latency()
                .as_micros_f64()
                < 1.0
        );
    }

    #[test]
    fn direct_flag_propagation_matches_architecture() {
        assert!(StorageLayer::LoopDevice.swallows_direct_flag());
        assert!(StorageLayer::NineP.swallows_direct_flag());
        assert!(!StorageLayer::VirtioBlk.swallows_direct_flag());
        assert!(!StorageLayer::BindMount.swallows_direct_flag());
    }

    #[test]
    fn all_host_functions_are_registered() {
        let reg = KernelFunctionRegistry::standard();
        for layer in ALL {
            assert!(!layer.host_functions().is_empty());
            for f in layer.host_functions() {
                assert!(reg.contains(f), "{layer:?} references unknown {f}");
            }
        }
    }

    #[test]
    fn efficiencies_are_valid_fractions() {
        for layer in ALL {
            let e = layer.throughput_efficiency();
            assert!(e > 0.0 && e <= 1.0, "{layer:?} efficiency {e}");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> = ALL.iter().map(|l| l.label()).collect();
        assert_eq!(labels.len(), ALL.len());
    }
}
