//! # blocksim
//!
//! Block-I/O path simulation behind the fio experiments (Figs. 9 and 10)
//! and the storage component of the MySQL experiment.
//!
//! A platform's storage path is modeled as a [`StorageStack`]: the physical
//! NVMe [`device::BlockDevice`] at the bottom, a host page cache, zero or
//! more [`layers::StorageLayer`]s a request traverses (overlayfs, ZFS, loop
//! devices, virtio-blk, 9p, virtio-fs, the gVisor Gofer), and optionally a
//! guest page cache when a second kernel is present. This structure
//! reproduces the paper's two key I/O observations:
//!
//! * secure containers (gVisor, Kata with 9p) lose half or more of the
//!   native throughput to their shared-filesystem layers, while
//!   `virtio-fs` recovers it (Findings 6–8);
//! * with two kernels, `direct=1` only bypasses the *guest* cache, so fio
//!   results are inflated unless the host cache is dropped before each run
//!   (the caching pitfall of Section 3.3).

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod engine;
pub mod layers;
pub mod request;
pub mod stack;

pub use device::BlockDevice;
pub use engine::IoEngine;
pub use layers::StorageLayer;
pub use request::{IoPattern, IoProfile};
pub use stack::{IoOutcome, StorageStack};
