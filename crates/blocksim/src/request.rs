//! I/O access patterns and benchmark profiles.

use serde::{Deserialize, Serialize};

/// The access pattern of an I/O benchmark phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoPattern {
    /// Sequential reads.
    SeqRead,
    /// Sequential writes.
    SeqWrite,
    /// Random reads.
    RandRead,
    /// Random writes.
    RandWrite,
}

impl IoPattern {
    /// Whether the pattern writes data.
    pub fn is_write(self) -> bool {
        matches!(self, IoPattern::SeqWrite | IoPattern::RandWrite)
    }

    /// Whether the pattern is sequential.
    pub fn is_sequential(self) -> bool {
        matches!(self, IoPattern::SeqRead | IoPattern::SeqWrite)
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            IoPattern::SeqRead => "seq_read",
            IoPattern::SeqWrite => "seq_write",
            IoPattern::RandRead => "rand_read",
            IoPattern::RandWrite => "rand_write",
        }
    }
}

/// A description of one fio-style benchmark phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoProfile {
    /// Access pattern.
    pub pattern: IoPattern,
    /// Block size per request in bytes.
    pub block_size: u64,
    /// Total bytes transferred by the phase.
    pub total_bytes: u64,
    /// Whether `direct=1` (O_DIRECT) is requested.
    pub direct: bool,
    /// I/O depth (outstanding requests) of the submitting engine.
    pub queue_depth: u32,
}

impl IoProfile {
    /// The paper's throughput phase: 128 KiB blocks, direct, libaio-style
    /// queue depth, over a file twice the guest memory size.
    pub fn paper_throughput(pattern: IoPattern, guest_memory_bytes: u64) -> Self {
        IoProfile {
            pattern,
            block_size: 128 * 1024,
            total_bytes: guest_memory_bytes.saturating_mul(2),
            direct: true,
            queue_depth: 32,
        }
    }

    /// The paper's latency phase: 4 KiB random reads, direct, shallow queue.
    pub fn paper_randread_latency(guest_memory_bytes: u64) -> Self {
        IoProfile {
            pattern: IoPattern::RandRead,
            block_size: 4 * 1024,
            total_bytes: guest_memory_bytes,
            direct: true,
            queue_depth: 1,
        }
    }

    /// Number of requests issued by the phase.
    pub fn request_count(&self) -> u64 {
        self.total_bytes.checked_div(self.block_size).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_classification() {
        assert!(IoPattern::SeqWrite.is_write());
        assert!(!IoPattern::RandRead.is_write());
        assert!(IoPattern::SeqRead.is_sequential());
        assert!(!IoPattern::RandWrite.is_sequential());
    }

    #[test]
    fn paper_profiles_match_description() {
        let t = IoProfile::paper_throughput(IoPattern::SeqRead, 4 << 30);
        assert_eq!(t.block_size, 128 * 1024);
        assert_eq!(t.total_bytes, 8 << 30);
        assert!(t.direct);
        let l = IoProfile::paper_randread_latency(4 << 30);
        assert_eq!(l.block_size, 4096);
        assert_eq!(l.queue_depth, 1);
    }

    #[test]
    fn request_count_divides_total() {
        let t = IoProfile::paper_throughput(IoPattern::SeqRead, 1 << 30);
        assert_eq!(t.request_count(), (2 << 30) / (128 * 1024));
        let zero = IoProfile { block_size: 0, ..t };
        assert_eq!(zero.request_count(), 0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> = [
            IoPattern::SeqRead,
            IoPattern::SeqWrite,
            IoPattern::RandRead,
            IoPattern::RandWrite,
        ]
        .iter()
        .map(|p| p.label())
        .collect();
        assert_eq!(labels.len(), 4);
    }
}
