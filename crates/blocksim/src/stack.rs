//! The composed storage stack of a platform and its fio-level behaviour.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Nanos, SimRng};

use oskern::ftrace::FtraceSession;
use oskern::pagecache::PageCache;

use crate::device::BlockDevice;
use crate::engine::IoEngine;
use crate::layers::StorageLayer;
use crate::request::IoProfile;

/// The result of simulating one fio-style phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IoOutcome {
    /// Achieved throughput.
    pub throughput: Bandwidth,
    /// Mean per-request completion latency.
    pub mean_latency: Nanos,
    /// Fraction of requests served from a page cache instead of the device.
    pub cache_hit_ratio: f64,
}

/// A platform's storage path from the workload down to the NVMe device.
#[derive(Debug, Clone)]
pub struct StorageStack {
    device: BlockDevice,
    layers: Vec<StorageLayer>,
    /// Host kernel page cache (always present).
    host_cache: PageCache,
    /// Guest kernel page cache, present when a second kernel runs.
    guest_cache: Option<PageCache>,
    /// Relative run-to-run noise of the platform's I/O path.
    jitter: f64,
}

impl StorageStack {
    /// Creates a stack over the testbed NVMe with the given layers.
    ///
    /// `guest_memory_bytes` controls the guest page-cache size; pass
    /// `None` for platforms without a second kernel (native, containers,
    /// gVisor — the Sentry deliberately does not implement a page cache
    /// for host files).
    pub fn new(layers: Vec<StorageLayer>, guest_memory_bytes: Option<u64>) -> Self {
        StorageStack {
            device: BlockDevice::nvme_testbed(),
            layers,
            host_cache: PageCache::new(64 << 30),
            guest_cache: guest_memory_bytes.map(PageCache::new),
            jitter: 0.03,
        }
    }

    /// Replaces the device model.
    pub fn with_device(mut self, device: BlockDevice) -> Self {
        self.device = device;
        self
    }

    /// Sets the run-to-run noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// The layers of this stack (top to bottom).
    pub fn layers(&self) -> &[StorageLayer] {
        &self.layers
    }

    /// Whether a guest kernel (and therefore a second page cache) exists.
    pub fn has_guest_cache(&self) -> bool {
        self.guest_cache.is_some()
    }

    /// Drops the host page cache (`echo 3 > drop_caches` before a run).
    pub fn drop_host_cache(&mut self) {
        self.host_cache.drop_caches();
    }

    /// Drops the guest page cache if one exists.
    pub fn drop_guest_cache(&mut self) {
        if let Some(cache) = &mut self.guest_cache {
            cache.drop_caches();
        }
    }

    /// Whether an `O_DIRECT` request issued by the workload still carries
    /// the direct flag when it reaches the host block layer.
    pub fn direct_flag_reaches_host(&self) -> bool {
        !self.layers.iter().any(|l| l.swallows_direct_flag())
    }

    /// Sum of per-request latencies of all layers.
    pub fn layer_latency(&self) -> Nanos {
        self.layers.iter().map(|l| l.per_request_latency()).sum()
    }

    /// Product of all layer throughput efficiencies.
    pub fn layer_efficiency(&self) -> f64 {
        self.layers
            .iter()
            .map(|l| l.throughput_efficiency())
            .product()
    }

    /// Simulates one fio phase and returns the measured outcome.
    ///
    /// `host_cache_dropped` corresponds to the paper's remedy of explicitly
    /// dropping the host buffer cache before each run; when it is `false`
    /// and the direct flag does not propagate, reads hit the host cache and
    /// the result overstates the device's capability.
    pub fn run_phase(
        &mut self,
        profile: IoProfile,
        engine: IoEngine,
        host_cache_dropped: bool,
        rng: &mut SimRng,
    ) -> IoOutcome {
        if host_cache_dropped {
            self.host_cache.drop_caches();
        }
        let write = profile.pattern.is_write();

        // Determine which caches can serve the request stream.
        let guest_cache_bypassed = profile.direct;
        let host_cache_bypassed = profile.direct && self.direct_flag_reaches_host();

        let mut cache_hit_ratio = 0.0;
        if !write {
            if !guest_cache_bypassed {
                if let Some(guest) = &self.guest_cache {
                    cache_hit_ratio = guest.hit_ratio(profile.total_bytes);
                }
            }
            if !host_cache_bypassed {
                let host_hit = self.host_cache.hit_ratio(profile.total_bytes);
                cache_hit_ratio = cache_hit_ratio.max(host_hit);
            }
        }

        // Per-request service time at the device plus the layer stack.
        let device_latency = if profile.pattern.is_sequential() {
            self.device.transfer_time(profile.block_size, write)
        } else {
            self.device.random_latency(write) + self.device.transfer_time(profile.block_size, write)
        };
        let cached_latency = Nanos::from_micros(6); // copy from page cache
        let miss_latency = device_latency + self.layer_latency() + engine.per_request_overhead();
        let hit_latency = cached_latency + self.layer_latency() + engine.per_request_overhead();
        let mean_latency_ns = cache_hit_ratio * hit_latency.as_secs_f64()
            + (1.0 - cache_hit_ratio) * miss_latency.as_secs_f64();

        // Throughput: the device ceiling scaled by layer efficiency, but a
        // queue-depth-limited path cannot exceed depth/latency.
        let depth = engine.effective_depth(profile.queue_depth) as f64;
        let latency_bound =
            depth * profile.block_size as f64 / mean_latency_ns.max(f64::MIN_POSITIVE);
        let device_bound = if cache_hit_ratio > 0.99 {
            // Fully cached: bounded by memcpy speed, not the device.
            Bandwidth::from_mib_per_sec(9_000.0).bytes_per_sec()
        } else {
            self.device.seq_bandwidth(write).bytes_per_sec() / (1.0 - cache_hit_ratio).max(0.05)
        };
        let mean_throughput = (device_bound.min(latency_bound) * self.layer_efficiency()).max(1.0);

        // Writes leave dirty pages behind; reads warm the caches.
        if write {
            self.host_cache.admit(profile.total_bytes.min(8 << 30));
        } else {
            if !host_cache_bypassed {
                self.host_cache.admit(profile.total_bytes.min(16 << 30));
            }
            if !guest_cache_bypassed {
                if let Some(guest) = &mut self.guest_cache {
                    guest.admit(profile.total_bytes.min(4 << 30));
                }
            }
        }

        let throughput = Bandwidth::from_bytes_per_sec(
            rng.normal_pos(mean_throughput, mean_throughput * self.jitter),
        );
        let latency =
            Nanos::from_secs_f64(rng.normal_pos(mean_latency_ns, mean_latency_ns * self.jitter));
        IoOutcome {
            throughput,
            mean_latency: latency,
            cache_hit_ratio,
        }
    }

    /// Records the host kernel functions one phase touches.
    pub fn trace_phase(&self, session: &mut FtraceSession, profile: IoProfile) {
        let requests = profile.request_count().max(1);
        for layer in &self.layers {
            session.invoke_all(layer.host_functions(), requests);
        }
        // The device itself is always reached through the host block layer
        // unless every byte was served from a cache; charge it
        // unconditionally, matching what ftrace sees during a direct run.
        session.invoke_all(
            &[
                "submit_bio",
                "blk_mq_submit_bio",
                "nvme_queue_rq",
                "nvme_complete_rq",
                "bio_endio",
            ],
            requests,
        );
        let class = if profile.pattern.is_write() {
            oskern::syscall::SyscallClass::FileWrite
        } else {
            oskern::syscall::SyscallClass::FileRead
        };
        session.invoke_all(class.host_functions(), requests);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::IoPattern;

    fn throughput_of(layers: Vec<StorageLayer>, guest: Option<u64>, pattern: IoPattern) -> f64 {
        let mut stack = StorageStack::new(layers, guest).with_jitter(0.0);
        let mut rng = SimRng::seed_from(1);
        let profile = IoProfile::paper_throughput(pattern, 4 << 30);
        stack
            .run_phase(profile, IoEngine::Libaio, true, &mut rng)
            .throughput
            .mib_per_sec()
    }

    #[test]
    fn bind_mount_reads_are_near_native() {
        let native = throughput_of(vec![], None, IoPattern::SeqRead);
        let docker = throughput_of(vec![StorageLayer::BindMount], None, IoPattern::SeqRead);
        assert!(docker / native > 0.95, "docker {docker} vs native {native}");
    }

    #[test]
    fn nine_p_halves_throughput() {
        let native = throughput_of(vec![], None, IoPattern::SeqRead);
        let kata_9p = throughput_of(
            vec![StorageLayer::VirtioBlk, StorageLayer::NineP],
            Some(2 << 30),
            IoPattern::SeqRead,
        );
        assert!(
            kata_9p / native < 0.6,
            "kata-9p {kata_9p} vs native {native}"
        );
    }

    #[test]
    fn virtio_fs_recovers_most_of_the_loss() {
        let kata_9p = throughput_of(
            vec![StorageLayer::VirtioBlk, StorageLayer::NineP],
            Some(2 << 30),
            IoPattern::SeqRead,
        );
        let kata_virtiofs = throughput_of(
            vec![StorageLayer::VirtioBlk, StorageLayer::VirtioFs],
            Some(2 << 30),
            IoPattern::SeqRead,
        );
        assert!(kata_virtiofs > kata_9p * 1.4);
    }

    #[test]
    fn undropped_host_cache_inflates_hypervisor_reads() {
        // Loop-device-backed guest storage does not propagate O_DIRECT, so
        // a warm host cache serves reads at memory speed — the pitfall the
        // paper warns about.
        let layers = vec![StorageLayer::LoopDevice, StorageLayer::VirtioBlk];
        let mut stack = StorageStack::new(layers, Some(2 << 30)).with_jitter(0.0);
        let mut rng = SimRng::seed_from(2);
        let profile = IoProfile::paper_throughput(IoPattern::SeqRead, 2 << 30);
        // Warm pass (writes/reads populate the host cache).
        stack.run_phase(profile, IoEngine::Libaio, false, &mut rng);
        let warm = stack.run_phase(profile, IoEngine::Libaio, false, &mut rng);
        let mut dropped_stack = StorageStack::new(
            vec![StorageLayer::LoopDevice, StorageLayer::VirtioBlk],
            Some(2 << 30),
        )
        .with_jitter(0.0);
        let cold = dropped_stack.run_phase(profile, IoEngine::Libaio, true, &mut rng);
        assert!(
            warm.throughput.mib_per_sec() > cold.throughput.mib_per_sec() * 1.3,
            "warm {} vs cold {}",
            warm.throughput.mib_per_sec(),
            cold.throughput.mib_per_sec()
        );
        assert!(warm.cache_hit_ratio > 0.0);
        assert_eq!(cold.cache_hit_ratio, 0.0);
    }

    #[test]
    fn randread_latency_orders_platforms_like_the_paper() {
        let mut rng = SimRng::seed_from(3);
        let profile = IoProfile::paper_randread_latency(2 << 30);
        let mut latency = |layers: Vec<StorageLayer>, guest: Option<u64>| {
            let mut stack = StorageStack::new(layers, guest).with_jitter(0.0);
            stack
                .run_phase(profile, IoEngine::Libaio, true, &mut rng)
                .mean_latency
                .as_micros_f64()
        };
        let native = latency(vec![], None);
        let qemu = latency(vec![StorageLayer::VirtioBlk], Some(2 << 30));
        let kata = latency(
            vec![StorageLayer::VirtioBlk, StorageLayer::NineP],
            Some(2 << 30),
        );
        assert!(native < qemu, "native {native} qemu {qemu}");
        assert!(qemu < kata, "qemu {qemu} kata {kata}");
        assert!(kata > native + 100.0, "kata must be an outlier: {kata}");
    }

    #[test]
    fn trace_phase_reports_layer_functions() {
        let stack = StorageStack::new(
            vec![StorageLayer::VirtioBlk, StorageLayer::NineP],
            Some(1 << 30),
        );
        let mut session = FtraceSession::start();
        stack.trace_phase(&mut session, IoProfile::paper_randread_latency(1 << 20));
        let trace = session.finish();
        assert!(trace.touched("p9_client_rpc"));
        assert!(trace.touched("nvme_queue_rq"));
        assert!(trace.touched("vfs_read"));
    }

    #[test]
    fn direct_flag_propagation_depends_on_layers() {
        let plain = StorageStack::new(vec![StorageLayer::VirtioBlk], Some(1 << 30));
        assert!(plain.direct_flag_reaches_host());
        let loopback = StorageStack::new(
            vec![StorageLayer::LoopDevice, StorageLayer::VirtioBlk],
            Some(1 << 30),
        );
        assert!(!loopback.direct_flag_reaches_host());
    }
}
