//! A deterministic EPSS-style exploitability model for kernel functions.
//!
//! The real Exploit Prediction Scoring System assigns each CVE a
//! probability of exploitation in the wild. The paper maps those scores
//! onto the kernel functions its traces hit. Without access to the CVE
//! corpus we substitute a deterministic model: each subsystem gets a base
//! rate reflecting its historic share of exploitable kernel bugs, and each
//! function gets a stable pseudo-random modifier derived from its name, so
//! scores are reproducible and differentiate functions within a subsystem.

use oskern::kernel_fn::{KernelFunctionRegistry, KernelSubsystem};

/// The exploitability scoring model.
#[derive(Debug, Clone)]
pub struct EpssModel {
    registry: KernelFunctionRegistry,
}

impl Default for EpssModel {
    fn default() -> Self {
        EpssModel {
            registry: KernelFunctionRegistry::standard(),
        }
    }
}

impl EpssModel {
    /// Base exploitability rate of a subsystem (fraction of its functions'
    /// weight), loosely following the historical distribution of Linux
    /// kernel CVEs: networking and memory management dominate, followed by
    /// the VFS and KVM; timekeeping is quiet.
    pub fn subsystem_base_rate(subsystem: KernelSubsystem) -> f64 {
        match subsystem {
            KernelSubsystem::Network => 0.090,
            KernelSubsystem::MemoryManagement => 0.075,
            KernelSubsystem::Vfs => 0.060,
            KernelSubsystem::Kvm => 0.055,
            KernelSubsystem::Block => 0.040,
            KernelSubsystem::Ipc => 0.040,
            KernelSubsystem::Namespaces => 0.035,
            KernelSubsystem::Cgroups => 0.030,
            KernelSubsystem::Signals => 0.030,
            KernelSubsystem::Security => 0.025,
            KernelSubsystem::Scheduling => 0.020,
            KernelSubsystem::Entry => 0.015,
            KernelSubsystem::Time => 0.010,
        }
    }

    /// Exploitability score of one kernel function in `[0, 0.25]`.
    /// Unknown functions score zero.
    pub fn score(&self, function: &str) -> f64 {
        let Some(f) = self.registry.get(function) else {
            return 0.0;
        };
        let base = Self::subsystem_base_rate(f.subsystem);
        // Stable per-function modifier in [0.5, 1.5) from an FNV-1a hash.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in function.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let modifier = 0.5 + (h % 1_000) as f64 / 1_000.0;
        (base * modifier).min(0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_deterministic_and_bounded() {
        let m = EpssModel::default();
        let a = m.score("tcp_sendmsg");
        let b = m.score("tcp_sendmsg");
        assert_eq!(a, b);
        assert!(a > 0.0 && a <= 0.25);
    }

    #[test]
    fn unknown_functions_score_zero() {
        assert_eq!(EpssModel::default().score("not_a_symbol"), 0.0);
    }

    #[test]
    fn network_functions_outscore_timekeeping_on_average() {
        let m = EpssModel::default();
        let reg = KernelFunctionRegistry::standard();
        let avg = |sub: KernelSubsystem| {
            let fns = reg.functions_in(sub);
            fns.iter().map(|f| m.score(f.name)).sum::<f64>() / fns.len() as f64
        };
        assert!(avg(KernelSubsystem::Network) > avg(KernelSubsystem::Time) * 3.0);
    }

    #[test]
    fn every_registered_function_has_a_positive_score() {
        let m = EpssModel::default();
        for f in KernelFunctionRegistry::standard().iter() {
            assert!(m.score(f.name) > 0.0, "{} scored zero", f.name);
        }
    }
}
