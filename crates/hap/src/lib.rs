//! # hap
//!
//! The extended Horizontal Attack Profile (HAP) metric of Section 4.
//!
//! The HAP approximates the degree of isolation by counting how many host
//! kernel functions a platform causes to execute while running a workload
//! suite (Sysbench CPU/memory/I/O, iperf3, and a start/stop cycle). The
//! paper extends the metric by weighting each function with an
//! EPSS-style exploitability score, so that touching an exploit-prone
//! subsystem counts for more than touching a well-hardened one.
//!
//! ```
//! use hap::{HapSuite, EpssModel};
//! use platforms::PlatformId;
//!
//! let suite = HapSuite::quick();
//! let osv = suite.profile(&PlatformId::OsvQemu.build());
//! let firecracker = suite.profile(&PlatformId::Firecracker.build());
//! assert!(osv.distinct_functions < firecracker.distinct_functions);
//! let epss = EpssModel::default();
//! assert!(epss.score("tcp_sendmsg") > 0.0);
//! ```

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod epss;
pub mod score;
pub mod suite;

pub use epss::EpssModel;
pub use score::HapProfile;
pub use suite::HapSuite;
