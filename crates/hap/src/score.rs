//! The HAP profile computed from a kernel trace.

use std::collections::BTreeMap;

use oskern::ftrace::KernelTrace;
use oskern::kernel_fn::{KernelFunctionRegistry, KernelSubsystem};
use serde::{Deserialize, Serialize};

use crate::epss::EpssModel;

/// The (extended) HAP of one platform under the tracing workload suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HapProfile {
    /// Platform label.
    pub platform: String,
    /// The classic HAP quantity: number of distinct host kernel functions
    /// invoked.
    pub distinct_functions: usize,
    /// Total number of invocations (not part of the HAP, but reported).
    pub total_invocations: u64,
    /// The extended HAP: sum of EPSS scores over the distinct functions.
    pub weighted_score: f64,
    /// Distinct functions per kernel subsystem.
    pub by_subsystem: BTreeMap<KernelSubsystem, usize>,
}

impl HapProfile {
    /// Computes the profile from a trace.
    pub fn from_trace(platform: &str, trace: &KernelTrace, epss: &EpssModel) -> Self {
        let registry = KernelFunctionRegistry::standard();
        let weighted_score = trace.iter().map(|(name, _)| epss.score(name)).sum();
        HapProfile {
            platform: platform.to_string(),
            distinct_functions: trace.distinct_functions(),
            total_invocations: trace.total_invocations(),
            weighted_score,
            by_subsystem: trace.distinct_by_subsystem(&registry),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_and_weights_follow_the_trace() {
        let mut trace = KernelTrace::new();
        trace.hit("tcp_sendmsg", 100);
        trace.hit("tcp_recvmsg", 50);
        trace.hit("schedule", 1);
        let profile = HapProfile::from_trace("demo", &trace, &EpssModel::default());
        assert_eq!(profile.distinct_functions, 3);
        assert_eq!(profile.total_invocations, 151);
        assert!(profile.weighted_score > 0.0);
        assert_eq!(
            profile.by_subsystem.get(&KernelSubsystem::Network),
            Some(&2)
        );
    }

    #[test]
    fn more_functions_means_a_larger_weighted_score() {
        let epss = EpssModel::default();
        let mut small = KernelTrace::new();
        small.hit("schedule", 10);
        let mut big = small.clone();
        big.hit("tcp_sendmsg", 1);
        big.hit("handle_mm_fault", 1);
        let s = HapProfile::from_trace("small", &small, &epss);
        let b = HapProfile::from_trace("big", &big, &epss);
        assert!(b.weighted_score > s.weighted_score);
    }
}
