//! The tracing workload suite used to obtain each platform's HAP.
//!
//! Following Section 4 of the paper, the suite traces host kernel function
//! invocations while running: the Sysbench CPU, memory and file-I/O
//! benchmarks, the iperf3 network benchmark, and one start/stop cycle of
//! the platform. The union of all traces is scored by [`crate::HapProfile`].

use blocksim::request::{IoPattern, IoProfile};
use oskern::cgroups::{CgroupConfig, CgroupVersion};
use oskern::ftrace::{FtraceSession, KernelTrace};
use oskern::namespaces::NamespaceSet;
use oskern::syscall::{SyscallClass, SyscallTable};
use platforms::{Platform, PlatformFamily, PlatformId};
use vmm::kvm::KvmInterface;
use vmm::vsock::TtrpcChannel;

use crate::epss::EpssModel;
use crate::score::HapProfile;

/// The HAP tracing suite.
#[derive(Debug, Clone, Copy)]
pub struct HapSuite {
    /// Number of operations each workload performs while being traced.
    pub operations: u64,
}

impl Default for HapSuite {
    fn default() -> Self {
        HapSuite { operations: 10_000 }
    }
}

impl HapSuite {
    /// A reduced-operation suite for tests; the *distinct function* count
    /// (the HAP) is insensitive to the operation count.
    pub fn quick() -> Self {
        HapSuite { operations: 200 }
    }

    /// Traces the full suite on one platform and returns the raw trace.
    pub fn trace(&self, platform: &Platform) -> KernelTrace {
        let mut session = FtraceSession::start();
        self.trace_cpu(platform, &mut session);
        self.trace_memory(platform, &mut session);
        self.trace_file_io(platform, &mut session);
        self.trace_network(platform, &mut session);
        self.trace_lifecycle(platform, &mut session);
        self.trace_vmm_housekeeping(platform, &mut session);
        session.finish()
    }

    /// Traces the suite and scores it with the extended (EPSS-weighted)
    /// HAP metric.
    pub fn profile(&self, platform: &Platform) -> HapProfile {
        let trace = self.trace(platform);
        HapProfile::from_trace(platform.name(), &trace, &EpssModel::default())
    }

    /// Profiles every platform in the paper's Figure 18 set.
    pub fn profile_paper_set(&self) -> Vec<HapProfile> {
        PlatformId::paper_set()
            .iter()
            .map(|id| self.profile(&id.build()))
            .collect()
    }

    fn trace_cpu(&self, platform: &Platform, session: &mut FtraceSession) {
        for class in [
            SyscallClass::Schedule,
            SyscallClass::Futex,
            SyscallClass::Time,
        ] {
            platform
                .syscalls()
                .trace_dispatch(session, class, self.operations);
        }
    }

    fn trace_memory(&self, platform: &Platform, session: &mut FtraceSession) {
        for class in [SyscallClass::MemoryMap, SyscallClass::PageFault] {
            platform
                .syscalls()
                .trace_dispatch(session, class, self.operations);
        }
    }

    fn trace_file_io(&self, platform: &Platform, session: &mut FtraceSession) {
        if platform.storage().is_excluded() {
            // The Sysbench file I/O phase still runs on the platform's root
            // disk; it reaches the host through the syscall path.
            for class in [
                SyscallClass::FileRead,
                SyscallClass::FileWrite,
                SyscallClass::Fsync,
            ] {
                platform
                    .syscalls()
                    .trace_dispatch(session, class, self.operations);
            }
        } else {
            let stack = platform.storage().build_stack();
            let profile = IoProfile {
                pattern: IoPattern::RandRead,
                block_size: 16 * 1024,
                total_bytes: 16 * 1024 * self.operations,
                direct: false,
                queue_depth: 16,
            };
            stack.trace_phase(session, profile);
            let write_profile = IoProfile {
                pattern: IoPattern::RandWrite,
                ..profile
            };
            stack.trace_phase(session, write_profile);
        }
    }

    fn trace_network(&self, platform: &Platform, session: &mut FtraceSession) {
        platform.network().trace_stream(session, self.operations);
        platform
            .syscalls()
            .trace_dispatch(session, SyscallClass::NetSend, self.operations);
        platform
            .syscalls()
            .trace_dispatch(session, SyscallClass::NetReceive, self.operations);
    }

    fn trace_lifecycle(&self, platform: &Platform, session: &mut FtraceSession) {
        let table = SyscallTable::native();
        // Starting and stopping the platform is host-side work performed by
        // the runtime (docker/lxc/kata-runtime/VMM binary), regardless of
        // how the guest itself dispatches syscalls.
        table.trace_dispatch(session, SyscallClass::ProcessControl, 8);
        table.trace_dispatch(session, SyscallClass::FileMeta, 64);
        table.trace_dispatch(session, SyscallClass::Signal, 8);
        if platform.isolation().namespaces {
            NamespaceSet::container_default().trace_setup(session);
        }
        if platform.isolation().cgroups {
            let cfg = CgroupConfig::container_default(CgroupVersion::V1);
            cfg.trace_setup(session);
            cfg.trace_runtime_accounting(session, self.operations / 10);
        }
        if platform.isolation().seccomp {
            session.invoke_all(
                &["seccomp_filter", "__seccomp_filter", "seccomp_run_filters"],
                self.operations,
            );
        }
        if platform.isolation().hardware_virtualization {
            let kvm = KvmInterface::new(16, 8);
            kvm.trace_setup(session);
            kvm.trace_run_loop(session, self.operations);
        }
        if matches!(platform.id(), PlatformId::Kata | PlatformId::KataVirtioFs) {
            TtrpcChannel::kata_agent().trace_calls(session, 12);
        }
        if matches!(
            platform.id(),
            PlatformId::GvisorPtrace | PlatformId::GvisorKvm
        ) {
            session.invoke_all(&["ptrace_attach", "ptrace_request"], 4);
        }
    }

    /// Host syscall activity of the VMM process itself (its event loops,
    /// timers, memory management and worker threads). This is what makes
    /// Firecracker — despite its minimal device model — the widest
    /// interface in Fig. 18, while Cloud Hypervisor's work-in-progress
    /// feature set keeps its host footprint small (Findings 24 and 25).
    fn trace_vmm_housekeeping(&self, platform: &Platform, session: &mut FtraceSession) {
        if platform.family() != PlatformFamily::Hypervisor
            && platform.family() != PlatformFamily::SecureContainer
            && platform.family() != PlatformFamily::Unikernel
        {
            return;
        }
        let table = SyscallTable::native();
        let classes: &[SyscallClass] = match platform.id() {
            PlatformId::Firecracker => &[
                SyscallClass::Poll,
                SyscallClass::Time,
                SyscallClass::MemoryMap,
                SyscallClass::PageFault,
                SyscallClass::Futex,
                SyscallClass::Signal,
                SyscallClass::ProcessControl,
                SyscallClass::FileMeta,
                SyscallClass::FileRead,
                SyscallClass::FileWrite,
                SyscallClass::AioSubmit,
                SyscallClass::Fsync,
                SyscallClass::NetSetup,
                SyscallClass::Ioctl,
                SyscallClass::Schedule,
            ],
            PlatformId::Qemu | PlatformId::QemuQboot | PlatformId::QemuMicrovm => &[
                SyscallClass::Poll,
                SyscallClass::Time,
                SyscallClass::MemoryMap,
                SyscallClass::PageFault,
                SyscallClass::Futex,
                SyscallClass::Signal,
                SyscallClass::ProcessControl,
                SyscallClass::AioSubmit,
                SyscallClass::Ioctl,
            ],
            PlatformId::Kata | PlatformId::KataVirtioFs => &[
                SyscallClass::Poll,
                SyscallClass::Time,
                SyscallClass::MemoryMap,
                SyscallClass::Futex,
                SyscallClass::AioSubmit,
                SyscallClass::Ioctl,
            ],
            PlatformId::CloudHypervisor => &[SyscallClass::Poll, SyscallClass::Ioctl],
            PlatformId::OsvQemu | PlatformId::OsvFirecracker => &[SyscallClass::Poll],
            // gVisor's Sentry activity is already captured by its syscall
            // path (ptrace + seccomp + reduced host syscalls).
            _ => &[],
        };
        for class in classes {
            table.trace_dispatch(session, *class, self.operations / 4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn distinct(id: PlatformId, suite: &HapSuite) -> usize {
        suite.profile(&id.build()).distinct_functions
    }

    #[test]
    fn hap_ordering_matches_figure_18() {
        let suite = HapSuite::quick();
        let mut counts = BTreeMap::new();
        for id in PlatformId::paper_set() {
            counts.insert(*id, distinct(*id, &suite));
        }
        let get = |id: PlatformId| counts[&id] as f64;

        // Finding 24: Firecracker calls into the host kernel most often.
        for id in PlatformId::paper_set() {
            if *id != PlatformId::Firecracker {
                assert!(
                    get(PlatformId::Firecracker) > get(*id),
                    "firecracker ({}) must exceed {:?} ({})",
                    get(PlatformId::Firecracker),
                    id,
                    get(*id)
                );
            }
        }
        // Conclusion 8: OSv exercises the least host kernel code.
        for id in PlatformId::paper_set() {
            if !matches!(id, PlatformId::OsvQemu | PlatformId::OsvFirecracker) {
                assert!(
                    get(PlatformId::OsvQemu) < get(*id),
                    "osv ({}) must be below {:?} ({})",
                    get(PlatformId::OsvQemu),
                    id,
                    get(*id)
                );
            }
        }
        // Finding 25: Cloud Hypervisor invokes far fewer functions than the
        // other two hypervisors.
        assert!(get(PlatformId::CloudHypervisor) < get(PlatformId::Qemu));
        assert!(get(PlatformId::CloudHypervisor) < get(PlatformId::Firecracker));
        // Finding 26: the secure containers have relatively high numbers,
        // especially compared to the regular containers.
        for secure in [PlatformId::Kata, PlatformId::GvisorPtrace] {
            for container in [PlatformId::Docker, PlatformId::Lxc] {
                assert!(
                    get(secure) > get(container),
                    "{secure:?} ({}) must exceed {container:?} ({})",
                    get(secure),
                    get(container)
                );
            }
        }
        // Conclusion 9: general-purpose OSs under hypervisors invoke more
        // host kernel functions than the containers.
        assert!(get(PlatformId::Qemu) > get(PlatformId::Docker));
    }

    #[test]
    fn weighted_score_tracks_distinct_count() {
        let suite = HapSuite::quick();
        let osv = suite.profile(&PlatformId::OsvQemu.build());
        let fc = suite.profile(&PlatformId::Firecracker.build());
        assert!(fc.weighted_score > osv.weighted_score);
        assert!(fc.by_subsystem.len() >= osv.by_subsystem.len());
    }

    #[test]
    fn operation_count_does_not_change_the_distinct_count() {
        let small = HapSuite { operations: 100 };
        let large = HapSuite { operations: 5_000 };
        let p = PlatformId::Docker.build();
        assert_eq!(
            small.profile(&p).distinct_functions,
            large.profile(&p).distinct_functions
        );
    }

    #[test]
    fn paper_set_profiles_are_complete() {
        let suite = HapSuite::quick();
        let profiles = suite.profile_paper_set();
        assert_eq!(profiles.len(), PlatformId::paper_set().len());
        for p in &profiles {
            assert!(p.distinct_functions > 20, "{} too small", p.platform);
            assert!(p.weighted_score > 0.0);
        }
    }
}
