//! Tiny flag-parsing helpers shared by the runnable surfaces (the
//! `full_evaluation` example and the `full_grid` bench runner).

/// Returns the value following the flag `name`.
///
/// # Panics
///
/// Panics if the flag is present but no value follows it — trailing, or
/// directly followed by another `--flag` — so a forgotten value fails
/// loudly instead of being silently ignored or misparsed.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{name} expects a value"));
        if value.starts_with("--") {
            panic!("{name} expects a value, found flag {value:?}");
        }
        value.clone()
    })
}

/// Returns the numeric value following the flag `name`.
///
/// # Panics
///
/// Panics if the flag is present without a value or with a non-numeric
/// one.
pub fn parse_count(args: &[String], name: &str) -> Option<usize> {
    flag_value(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got {v:?}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_yield_none() {
        assert_eq!(flag_value(&args(&["--paper"]), "--shard"), None);
        assert_eq!(parse_count(&args(&[]), "--workers"), None);
    }

    #[test]
    fn present_flags_yield_their_value() {
        let a = args(&["--shard", "boot", "--workers", "8"]);
        assert_eq!(flag_value(&a, "--shard").as_deref(), Some("boot"));
        assert_eq!(parse_count(&a, "--workers"), Some(8));
    }

    #[test]
    #[should_panic(expected = "--shard expects a value")]
    fn a_trailing_flag_panics_instead_of_being_ignored() {
        flag_value(&args(&["--paper", "--shard"]), "--shard");
    }

    #[test]
    #[should_panic(expected = "--workers expects a number")]
    fn a_non_numeric_count_panics() {
        parse_count(&args(&["--workers", "many"]), "--workers");
    }

    #[test]
    #[should_panic(expected = "--shard expects a value, found flag")]
    fn a_flag_is_not_swallowed_as_a_value() {
        flag_value(&args(&["--shard", "--workers", "8"]), "--shard");
    }
}
