//! Tiny flag-parsing helpers and the shared serial-vs-parallel bench
//! scaffold used by the runnable surfaces (the `full_evaluation` example
//! and the `full_grid`/`load_curves` bench runners).

use crate::config::RunConfig;
use crate::executor::{Executor, RunPlan, RunReport};

/// Returns the value following the flag `name`.
///
/// # Panics
///
/// Panics if the flag is present but no value follows it — trailing, or
/// directly followed by another `--flag` — so a forgotten value fails
/// loudly instead of being silently ignored or misparsed.
pub fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        let value = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{name} expects a value"));
        if value.starts_with("--") {
            panic!("{name} expects a value, found flag {value:?}");
        }
        value.clone()
    })
}

/// Returns the numeric value following the flag `name`.
///
/// # Panics
///
/// Panics if the flag is present without a value or with a non-numeric
/// one.
pub fn parse_count(args: &[String], name: &str) -> Option<usize> {
    flag_value(args, name).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("{name} expects a number, got {v:?}"))
    })
}

/// The outcome of one [`run_serial_and_parallel`] invocation.
pub struct BenchRun {
    /// `"paper"` or `"quick"`, from the `--paper` flag.
    pub mode: &'static str,
    /// The run configuration both passes used.
    pub config: RunConfig,
    /// The report output path, from `--out` or the caller's default.
    pub out_path: String,
    /// The 1-worker reference run.
    pub serial: RunReport,
    /// The N-worker run of the same plan.
    pub parallel: RunReport,
    /// The worker count the parallel pass resolved to.
    pub parallel_workers: usize,
}

/// The shared scaffold of the machine-readable bench runners: parses the
/// common flags (`--paper`, `--workers N`, `--trials N`, `--out PATH`),
/// then executes the selected experiments twice — serially (1 worker) and
/// with N workers — so the caller can compare the two runs' figure data
/// and emit its report.
///
/// # Panics
///
/// Panics on malformed flags, like [`flag_value`] and [`parse_count`].
pub fn run_serial_and_parallel(
    name: &str,
    args: &[String],
    shard: Option<&str>,
    default_out: &str,
) -> BenchRun {
    let paper_scale = args.iter().any(|a| a == "--paper");
    let mode = if paper_scale { "paper" } else { "quick" };
    let config = if paper_scale {
        RunConfig::paper(2021)
    } else {
        RunConfig::quick(2021)
    };
    let out_path = flag_value(args, "--out").unwrap_or_else(|| default_out.to_string());

    let mut plan = RunPlan::new(config);
    if let Some(filter) = shard {
        plan = plan.with_shard(filter);
    }
    if let Some(trials) = parse_count(args, "--trials") {
        plan = plan.with_trials(trials);
    }
    let workers = parse_count(args, "--workers").unwrap_or(0);

    let serial_plan = plan.clone().with_workers(1);
    let parallel_plan = plan.with_workers(workers);
    let parallel_workers = parallel_plan.effective_workers();

    eprintln!(
        "{name}: serial pass (1 worker, {mode} mode, seed {})",
        config.seed
    );
    let serial = Executor::new(serial_plan).run();
    eprintln!(
        "{name}: parallel pass ({parallel_workers} workers); serial took {:.0} ms",
        serial.wall.as_secs_f64() * 1e3
    );
    let parallel = Executor::new(parallel_plan).run();

    BenchRun {
        mode,
        config,
        out_path,
        serial,
        parallel,
        parallel_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn absent_flags_yield_none() {
        assert_eq!(flag_value(&args(&["--paper"]), "--shard"), None);
        assert_eq!(parse_count(&args(&[]), "--workers"), None);
    }

    #[test]
    fn present_flags_yield_their_value() {
        let a = args(&["--shard", "boot", "--workers", "8"]);
        assert_eq!(flag_value(&a, "--shard").as_deref(), Some("boot"));
        assert_eq!(parse_count(&a, "--workers"), Some(8));
    }

    #[test]
    #[should_panic(expected = "--shard expects a value")]
    fn a_trailing_flag_panics_instead_of_being_ignored() {
        flag_value(&args(&["--paper", "--shard"]), "--shard");
    }

    #[test]
    #[should_panic(expected = "--workers expects a number")]
    fn a_non_numeric_count_panics() {
        parse_count(&args(&["--workers", "many"]), "--workers");
    }

    #[test]
    #[should_panic(expected = "--shard expects a value, found flag")]
    fn a_flag_is_not_swallowed_as_a_value() {
        flag_value(&args(&["--shard", "--workers", "8"]), "--shard");
    }

    #[test]
    fn bench_scaffold_runs_both_passes_identically() {
        let run = run_serial_and_parallel(
            "test",
            &args(&["--workers", "2", "--trials", "1", "--out", "custom.json"]),
            Some("fig08"),
            "default.json",
        );
        assert_eq!(run.mode, "quick");
        assert_eq!(run.out_path, "custom.json");
        assert_eq!(run.serial.workers, 1);
        assert_eq!(run.parallel.workers, 2);
        assert_eq!(run.parallel_workers, 2);
        assert_eq!(run.serial.figures, run.parallel.figures);
        let default_out =
            run_serial_and_parallel("test", &args(&["--trials", "1"]), Some("no-such"), "d.json");
        assert_eq!(default_out.out_path, "d.json");
        assert!(default_out.serial.figures.is_empty());
    }
}
