//! Run configuration shared by every experiment.

use serde::{Deserialize, Serialize};

/// Configuration of one harness invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Root seed; every platform/run derives its stream from it.
    pub seed: u64,
    /// Repetitions for the figures the paper repeats 10 times.
    pub runs: usize,
    /// Startups per platform for the boot-time CDFs (paper: 300).
    pub startups: usize,
    /// Whether macro-benchmarks (YCSB, OLTP) use their scaled-down quick
    /// configurations.
    pub quick: bool,
}

impl RunConfig {
    /// The paper-faithful configuration (10 runs, 300 startups).
    pub fn paper(seed: u64) -> Self {
        RunConfig {
            seed,
            runs: 10,
            startups: 300,
            quick: false,
        }
    }

    /// A fast configuration for tests, examples and CI.
    pub fn quick(seed: u64) -> Self {
        RunConfig {
            seed,
            runs: 3,
            startups: 60,
            quick: true,
        }
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::quick(2021)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_the_methodology() {
        let cfg = RunConfig::paper(1);
        assert_eq!(cfg.runs, 10);
        assert_eq!(cfg.startups, 300);
        assert!(!cfg.quick);
    }

    #[test]
    fn quick_config_is_smaller() {
        let cfg = RunConfig::quick(1);
        assert!(cfg.runs < RunConfig::paper(1).runs);
        assert!(cfg.startups < RunConfig::paper(1).startups);
    }
}
