//! The parallel, sharded experiment executor.
//!
//! The full evaluation is a grid of independent `(experiment, platform
//! entry, trial)` cells (see [`crate::grid`]). The executor flattens the
//! selected experiments into one work queue, fans the cells out across
//! `std::thread` workers, and merges the results back **in canonical
//! order**. Because each cell derives its random stream statelessly from
//! the root seed, the merged figures are bit-identical for every worker
//! count and any completion order — a 1-worker run is byte-for-byte the
//! serial [`crate::figures::run_all`] path.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::config::RunConfig;
use crate::experiment::{ExperimentId, FigureData};
use crate::grid::{self, CellOutput};

/// What to run and how to schedule it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunPlan {
    /// The run configuration every cell receives (seed, scale, quick mode).
    pub config: RunConfig,
    /// Worker thread count; `0` uses the machine's available parallelism.
    pub workers: usize,
    /// Shard filter: only experiments whose slug contains this substring
    /// run (e.g. `"boot"` selects Figs. 13–15).
    pub shard: Option<String>,
    /// Overrides every experiment's natural trial count (the deterministic
    /// HAP experiment always runs one trial).
    pub trials: Option<usize>,
}

impl RunPlan {
    /// A plan running every experiment with automatic worker count.
    pub fn new(config: RunConfig) -> Self {
        RunPlan {
            config,
            workers: 0,
            shard: None,
            trials: None,
        }
    }

    /// Sets the worker count (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Restricts the run to experiments whose slug contains `filter`.
    pub fn with_shard(mut self, filter: &str) -> Self {
        self.shard = Some(filter.to_string());
        self
    }

    /// Overrides the per-experiment trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = Some(trials.max(1));
        self
    }

    /// The worker count this plan resolves to.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }

    /// The experiments selected by the shard filter, in paper order.
    pub fn experiments(&self) -> Vec<ExperimentId> {
        ExperimentId::all()
            .iter()
            .copied()
            .filter(|e| match &self.shard {
                Some(filter) => e.slug().contains(filter.as_str()),
                None => true,
            })
            .collect()
    }

    /// The trial count one experiment runs under this plan.
    pub fn trials_for(&self, experiment: ExperimentId) -> usize {
        match self.trials {
            // The HAP metric is deterministic; extra trials are identical.
            Some(n) if experiment != ExperimentId::Fig18Hap => n.max(1),
            _ => grid::trials(experiment, &self.config),
        }
    }
}

/// Wall-clock accounting for one experiment's cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentTiming {
    /// Which experiment.
    pub experiment: ExperimentId,
    /// How many cells it decomposed into.
    pub cells: usize,
    /// Total time spent inside this experiment's cells, summed across
    /// workers (CPU-time-like; the whole run's elapsed time is
    /// [`RunReport::wall`]).
    pub cell_time: Duration,
}

/// The outcome of one executor run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The merged figures, in paper order.
    pub figures: Vec<FigureData>,
    /// Per-experiment cell counts and timings, parallel to `figures`.
    pub timings: Vec<ExperimentTiming>,
    /// The worker count the run used.
    pub workers: usize,
    /// Elapsed wall-clock time of the whole run.
    pub wall: Duration,
    /// Wall-clock time of the single-threaded canonical merge phase
    /// (folding cell outputs into figures, after the workers joined).
    pub merge: Duration,
}

impl RunReport {
    /// Finds one experiment's figure.
    pub fn figure(&self, experiment: ExperimentId) -> Option<&FigureData> {
        self.figures.iter().find(|f| f.experiment == experiment)
    }

    /// Total time spent inside cells, summed across workers.
    pub fn total_cell_time(&self) -> Duration {
        self.timings.iter().map(|t| t.cell_time).sum()
    }
}

/// One flattened work item: indexes into the experiment list, its entry
/// table and its trial range.
struct Cell {
    experiment: usize,
    entry: usize,
    trial: usize,
}

/// The work-queue executor over the experiment grid.
#[derive(Debug, Clone)]
pub struct Executor {
    plan: RunPlan,
}

impl Executor {
    /// Creates an executor for the given plan.
    pub fn new(plan: RunPlan) -> Self {
        Executor { plan }
    }

    /// The plan this executor runs.
    pub fn plan(&self) -> &RunPlan {
        &self.plan
    }

    /// Runs every selected cell across the plan's workers and merges the
    /// figures in canonical order.
    pub fn run(&self) -> RunReport {
        let start = Instant::now();
        let experiments = self.plan.experiments();
        let entry_tables: Vec<Vec<grid::Entry>> =
            experiments.iter().map(|e| grid::entries(*e)).collect();

        // Flatten the grid into one canonical work queue.
        let mut cells = Vec::new();
        for (x, experiment) in experiments.iter().enumerate() {
            let trials = self.plan.trials_for(*experiment);
            for entry in 0..entry_tables[x].len() {
                for trial in 0..trials {
                    cells.push(Cell {
                        experiment: x,
                        entry,
                        trial,
                    });
                }
            }
        }

        // Fan out: workers pop cells off a shared counter and write their
        // outputs into the cell's canonical slot, so completion order
        // cannot influence the merge below.
        let results: Mutex<Vec<Option<(CellOutput, Duration)>>> =
            Mutex::new((0..cells.len()).map(|_| None).collect());
        let next = AtomicUsize::new(0);
        let workers = self.plan.effective_workers().max(1);
        let cfg = self.plan.config;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let cell_start = Instant::now();
                    let output = grid::run_cell(
                        experiments[cell.experiment],
                        &entry_tables[cell.experiment][cell.entry],
                        cell.trial,
                        &cfg,
                    );
                    let elapsed = cell_start.elapsed();
                    results.lock().expect("no worker panics while storing")[i] =
                        Some((output, elapsed));
                });
            }
        });

        // Merge in canonical order (the queue was built in that order).
        let merge_start = Instant::now();
        let mut results = results.into_inner().expect("workers joined").into_iter();
        let mut figures = Vec::with_capacity(experiments.len());
        let mut timings = Vec::with_capacity(experiments.len());
        for (x, experiment) in experiments.iter().enumerate() {
            let trials = self.plan.trials_for(*experiment);
            let mut cell_time = Duration::ZERO;
            let mut cell_count = 0;
            let outputs: Vec<Vec<CellOutput>> = (0..entry_tables[x].len())
                .map(|_| {
                    (0..trials)
                        .map(|_| {
                            let (output, elapsed) =
                                results.next().flatten().expect("every cell ran");
                            cell_time += elapsed;
                            cell_count += 1;
                            output
                        })
                        .collect()
                })
                .collect();
            figures.push(grid::merge(*experiment, &outputs));
            timings.push(ExperimentTiming {
                experiment: *experiment,
                cells: cell_count,
                cell_time,
            });
        }
        RunReport {
            figures,
            timings,
            workers,
            merge: merge_start.elapsed(),
            wall: start.elapsed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> RunConfig {
        RunConfig {
            seed: 7,
            runs: 2,
            startups: 12,
            quick: true,
        }
    }

    #[test]
    fn shard_filter_selects_by_slug_substring() {
        let plan = RunPlan::new(small()).with_shard("boot");
        let selected = plan.experiments();
        assert_eq!(selected.len(), 3);
        assert!(selected.iter().all(|e| e.slug().contains("boot")));
        assert!(RunPlan::new(small())
            .with_shard("no-such")
            .experiments()
            .is_empty());
    }

    #[test]
    fn trial_override_applies_except_to_hap() {
        let plan = RunPlan::new(small()).with_trials(9);
        assert_eq!(plan.trials_for(ExperimentId::Fig05Ffmpeg), 9);
        assert_eq!(plan.trials_for(ExperimentId::Fig13BootContainers), 9);
        assert_eq!(plan.trials_for(ExperimentId::Fig18Hap), 1);
    }

    #[test]
    fn a_sharded_run_reports_figures_and_timings() {
        let plan = RunPlan::new(small()).with_shard("fig05").with_workers(2);
        let report = Executor::new(plan).run();
        assert_eq!(report.figures.len(), 1);
        assert_eq!(report.timings.len(), 1);
        assert_eq!(report.workers, 2);
        // 10 platforms × 2 trials.
        assert_eq!(report.timings[0].cells, 20);
        assert!(report.figure(ExperimentId::Fig05Ffmpeg).is_some());
        assert!(report.total_cell_time() > Duration::ZERO);
        assert!(
            report.merge <= report.wall,
            "the merge phase is part of the run's wall clock"
        );
    }

    #[test]
    fn worker_count_does_not_change_the_figures() {
        let base = Executor::new(RunPlan::new(small()).with_shard("fig1").with_workers(1)).run();
        for workers in [2, 5] {
            let report = Executor::new(
                RunPlan::new(small())
                    .with_shard("fig1")
                    .with_workers(workers),
            )
            .run();
            assert_eq!(report.figures, base.figures, "workers={workers}");
        }
    }
}
