//! Experiment identifiers and the generic figure data model.

use serde::{Deserialize, Serialize};

/// One experiment of the paper's evaluation section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ExperimentId {
    /// Fig. 5 — ffmpeg CPU-bound re-encode.
    Fig05Ffmpeg,
    /// Section 3.1 — Sysbench CPU prime verification.
    SysbenchPrime,
    /// Fig. 6 — tinymembench random-access latency sweep.
    Fig06MemLatency,
    /// Fig. 7 — tinymembench copy bandwidth.
    Fig07MemBandwidth,
    /// Fig. 8 — STREAM COPY bandwidth.
    Fig08Stream,
    /// Fig. 9 — fio 128 KiB read/write throughput.
    Fig09FioThroughput,
    /// Fig. 10 — fio 4 KiB random-read latency.
    Fig10FioLatency,
    /// Fig. 11 — iperf3 throughput.
    Fig11Iperf,
    /// Fig. 12 — netperf p90 latency.
    Fig12Netperf,
    /// Fig. 13 — container boot-time CDF.
    Fig13BootContainers,
    /// Fig. 14 — hypervisor boot-time CDF.
    Fig14BootHypervisors,
    /// Fig. 15 — OSv boot-time CDF under different hypervisors.
    Fig15BootOsv,
    /// Fig. 16 — Memcached YCSB throughput.
    Fig16Memcached,
    /// Fig. 17 — MySQL Sysbench OLTP thread sweep.
    Fig17Mysql,
    /// Fig. 18 — extended HAP metric.
    Fig18Hap,
    /// Beyond the paper: open-loop Memcached throughput-vs-latency curves.
    LoadMemcached,
    /// Beyond the paper: open-loop MySQL throughput-vs-latency curves.
    LoadMysql,
    /// Beyond the paper: Memcached multi-tenant co-location — a
    /// latency-sensitive victim against a swept aggressor on shared
    /// weighted service slots.
    TenantIsolationMemcached,
    /// Beyond the paper: MySQL multi-tenant co-location.
    TenantIsolationMysql,
    /// Beyond the paper: Memcached behind a staged middleware pipeline —
    /// per-stage in/out costs, a warmable auth cache, and short-circuits
    /// — swept over chain depth and cache hit rate.
    PipelineMemcached,
    /// Beyond the paper: MySQL behind a staged middleware pipeline.
    PipelineMysql,
    /// Beyond the paper: a Memcached sharded cluster — a routing tier
    /// hashing Zipf-skewed keys over N per-shard event cores, swept over
    /// shard count, skew and rebalancing policy.
    ClusterMemcached,
    /// Beyond the paper: a MySQL sharded cluster.
    ClusterMysql,
    /// Beyond the paper: the Memcached cluster's replication round —
    /// R-way quorum replication, scatter-gather fan-out and a
    /// mid-window shard kill/recover with sloppy-quorum failover.
    ClusterFailoverMemcached,
    /// Beyond the paper: the MySQL replication/failover cluster.
    ClusterFailoverMysql,
}

impl ExperimentId {
    /// Every experiment in the evaluation, in paper order.
    pub fn all() -> &'static [ExperimentId] {
        use ExperimentId::*;
        &[
            Fig05Ffmpeg,
            SysbenchPrime,
            Fig06MemLatency,
            Fig07MemBandwidth,
            Fig08Stream,
            Fig09FioThroughput,
            Fig10FioLatency,
            Fig11Iperf,
            Fig12Netperf,
            Fig13BootContainers,
            Fig14BootHypervisors,
            Fig15BootOsv,
            Fig16Memcached,
            Fig17Mysql,
            Fig18Hap,
            LoadMemcached,
            LoadMysql,
            TenantIsolationMemcached,
            TenantIsolationMysql,
            PipelineMemcached,
            PipelineMysql,
            ClusterMemcached,
            ClusterMysql,
            ClusterFailoverMemcached,
            ClusterFailoverMysql,
        ]
    }

    /// The figure/section title.
    pub fn title(self) -> &'static str {
        use ExperimentId::*;
        match self {
            Fig05Ffmpeg => "Fig. 5: ffmpeg H.264->H.265 re-encode time (ms)",
            SysbenchPrime => "Sec. 3.1: Sysbench CPU prime verification (events/s)",
            Fig06MemLatency => "Fig. 6: tinymembench random access latency (ns)",
            Fig07MemBandwidth => "Fig. 7: tinymembench copy bandwidth (MiB/s)",
            Fig08Stream => "Fig. 8: STREAM COPY bandwidth (MiB/s)",
            Fig09FioThroughput => "Fig. 9: fio 128KiB throughput (MiB/s)",
            Fig10FioLatency => "Fig. 10: fio 4KiB randread latency (us)",
            Fig11Iperf => "Fig. 11: iperf3 throughput (Gbit/s)",
            Fig12Netperf => "Fig. 12: netperf p90 latency (us)",
            Fig13BootContainers => "Fig. 13: container boot time CDF (ms)",
            Fig14BootHypervisors => "Fig. 14: hypervisor boot time CDF (ms)",
            Fig15BootOsv => "Fig. 15: OSv boot time CDF (ms)",
            Fig16Memcached => "Fig. 16: Memcached YCSB throughput (ops/s)",
            Fig17Mysql => "Fig. 17: MySQL sysbench oltp_read_write (tps)",
            Fig18Hap => "Fig. 18: extended HAP metric",
            LoadMemcached => "Load: Memcached open-loop latency vs offered load (us)",
            LoadMysql => "Load: MySQL open-loop latency vs offered load (us)",
            TenantIsolationMemcached => {
                "Tenancy: Memcached victim p99 vs co-located aggressor load (us)"
            }
            TenantIsolationMysql => "Tenancy: MySQL victim p99 vs co-located aggressor load (us)",
            PipelineMemcached => {
                "Pipeline: Memcached latency vs middleware depth and cache hit rate (us)"
            }
            PipelineMysql => "Pipeline: MySQL latency vs middleware depth and cache hit rate (us)",
            ClusterMemcached => "Cluster: Memcached latency vs shard count under Zipf skew (us)",
            ClusterMysql => "Cluster: MySQL latency vs shard count under Zipf skew (us)",
            ClusterFailoverMemcached => {
                "Failover: Memcached quorum replication, scatter-gather and shard-kill (us)"
            }
            ClusterFailoverMysql => {
                "Failover: MySQL quorum replication, scatter-gather and shard-kill (us)"
            }
        }
    }

    /// A short stable identifier (used for CSV filenames and bench names).
    pub fn slug(self) -> &'static str {
        use ExperimentId::*;
        match self {
            Fig05Ffmpeg => "fig05_ffmpeg",
            SysbenchPrime => "sysbench_prime",
            Fig06MemLatency => "fig06_mem_latency",
            Fig07MemBandwidth => "fig07_mem_bandwidth",
            Fig08Stream => "fig08_stream",
            Fig09FioThroughput => "fig09_fio_throughput",
            Fig10FioLatency => "fig10_fio_latency",
            Fig11Iperf => "fig11_iperf",
            Fig12Netperf => "fig12_netperf",
            Fig13BootContainers => "fig13_boot_containers",
            Fig14BootHypervisors => "fig14_boot_hypervisors",
            Fig15BootOsv => "fig15_boot_osv",
            Fig16Memcached => "fig16_memcached",
            Fig17Mysql => "fig17_mysql",
            Fig18Hap => "fig18_hap",
            LoadMemcached => "load_memcached",
            LoadMysql => "load_mysql",
            TenantIsolationMemcached => "tenant_isolation_memcached",
            TenantIsolationMysql => "tenant_isolation_mysql",
            PipelineMemcached => "pipeline_memcached",
            PipelineMysql => "pipeline_mysql",
            ClusterMemcached => "cluster_memcached",
            ClusterMysql => "cluster_mysql",
            ClusterFailoverMemcached => "cluster_failover_memcached",
            ClusterFailoverMysql => "cluster_failover_mysql",
        }
    }
}

/// One data point of a series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataPoint {
    /// X-axis label (platform name, buffer size, thread count, ...).
    pub x: String,
    /// Numeric x value where meaningful (buffer bytes, thread count,
    /// CDF percentile); zero for categorical axes.
    pub x_value: f64,
    /// Mean of the measured metric.
    pub mean: f64,
    /// Standard deviation (error bar) of the metric.
    pub std_dev: f64,
}

impl DataPoint {
    /// A categorical data point (platform on the x axis).
    pub fn categorical(x: &str, mean: f64, std_dev: f64) -> Self {
        DataPoint {
            x: x.to_string(),
            x_value: 0.0,
            mean,
            std_dev,
        }
    }

    /// A numeric data point.
    pub fn numeric(x_value: f64, mean: f64, std_dev: f64) -> Self {
        DataPoint {
            x: format!("{x_value}"),
            x_value,
            mean,
            std_dev,
        }
    }
}

/// A labelled series of data points (one platform, one variant, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Series label as it would appear in the figure legend.
    pub label: String,
    /// The data points.
    pub points: Vec<DataPoint>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: &str) -> Self {
        Series {
            label: label.to_string(),
            points: Vec::new(),
        }
    }

    /// Returns the mean value of the point with the given x label.
    pub fn mean_of(&self, x: &str) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.mean)
    }
}

/// The regenerated data behind one figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Which experiment this is.
    pub experiment: ExperimentId,
    /// Figure title.
    pub title: String,
    /// One or more data series.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure.
    pub fn new(experiment: ExperimentId) -> Self {
        FigureData {
            experiment,
            title: experiment.title().to_string(),
            series: Vec::new(),
        }
    }

    /// Finds a series by label.
    pub fn series_named(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_have_unique_slugs_and_titles() {
        let slugs: std::collections::BTreeSet<_> =
            ExperimentId::all().iter().map(|e| e.slug()).collect();
        assert_eq!(slugs.len(), ExperimentId::all().len());
        assert_eq!(ExperimentId::all().len(), 25);
    }

    #[test]
    fn series_lookup_by_label_and_x() {
        let mut fig = FigureData::new(ExperimentId::Fig11Iperf);
        let mut s = Series::new("throughput");
        s.points.push(DataPoint::categorical("native", 37.3, 0.2));
        fig.series.push(s);
        assert_eq!(
            fig.series_named("throughput").unwrap().mean_of("native"),
            Some(37.3)
        );
        assert!(fig.series_named("missing").is_none());
    }
}
