//! One generator function per paper figure.

use memsim::bandwidth::CopyMethod;
use platforms::subsystems::startup::StartupVariant;
use platforms::{Platform, PlatformId};
use simcore::SimRng;

use hap::HapSuite;
use workloads::{
    FfmpegBenchmark, FioBenchmark, IperfBenchmark, NetperfBenchmark, OltpBenchmark,
    StartupBenchmark, StreamBenchmark, SysbenchCpuBenchmark, TinymembenchBenchmark, YcsbBenchmark,
};

use crate::config::RunConfig;
use crate::experiment::{DataPoint, ExperimentId, FigureData, Series};

fn platform_rng(cfg: &RunConfig, experiment: ExperimentId, platform: &Platform) -> SimRng {
    let mut root = SimRng::seed_from(cfg.seed);
    root.split(&format!("{}:{}", experiment.slug(), platform.name()))
}

/// Runs a single experiment and returns its figure data.
pub fn run(experiment: ExperimentId, cfg: &RunConfig) -> FigureData {
    match experiment {
        ExperimentId::Fig05Ffmpeg => fig05_ffmpeg(cfg),
        ExperimentId::SysbenchPrime => sysbench_prime(cfg),
        ExperimentId::Fig06MemLatency => fig06_mem_latency(cfg),
        ExperimentId::Fig07MemBandwidth => fig07_mem_bandwidth(cfg),
        ExperimentId::Fig08Stream => fig08_stream(cfg),
        ExperimentId::Fig09FioThroughput => fig09_fio_throughput(cfg),
        ExperimentId::Fig10FioLatency => fig10_fio_latency(cfg),
        ExperimentId::Fig11Iperf => fig11_iperf(cfg),
        ExperimentId::Fig12Netperf => fig12_netperf(cfg),
        ExperimentId::Fig13BootContainers => fig13_boot_containers(cfg),
        ExperimentId::Fig14BootHypervisors => fig14_boot_hypervisors(cfg),
        ExperimentId::Fig15BootOsv => fig15_boot_osv(cfg),
        ExperimentId::Fig16Memcached => fig16_memcached(cfg),
        ExperimentId::Fig17Mysql => fig17_mysql(cfg),
        ExperimentId::Fig18Hap => fig18_hap(cfg),
    }
}

/// Runs every experiment of the evaluation section.
pub fn run_all(cfg: &RunConfig) -> Vec<FigureData> {
    ExperimentId::all().iter().map(|e| run(*e, cfg)).collect()
}

/// Fig. 5: ffmpeg re-encode wall clock per platform.
pub fn fig05_ffmpeg(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig05Ffmpeg);
    let bench = FfmpegBenchmark::new(cfg.runs);
    let mut series = Series::new("re-encode time (ms)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig05Ffmpeg, &platform);
        let stats = bench.run_summary_ms(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            stats.mean(),
            stats.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

/// Section 3.1: sysbench prime verification events per second.
pub fn sysbench_prime(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::SysbenchPrime);
    let bench = SysbenchCpuBenchmark::new(cfg.runs);
    let mut series = Series::new("events/s");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::SysbenchPrime, &platform);
        let stats = bench.run_events_per_sec(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            stats.mean(),
            stats.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

/// Fig. 6: tinymembench latency sweep (one series per platform).
pub fn fig06_mem_latency(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig06MemLatency);
    let bench = TinymembenchBenchmark::new(cfg.runs);
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig06MemLatency, &platform);
        let mut series = Series::new(platform.name());
        for point in bench.run_latency(&platform, &mut rng) {
            series.points.push(DataPoint {
                x: format!("2^{}", (point.buffer_bytes as f64).log2() as u32),
                x_value: point.buffer_bytes as f64,
                mean: point.latency_ns.mean(),
                std_dev: point.latency_ns.std_dev(),
            });
        }
        fig.series.push(series);
    }
    fig
}

/// Fig. 7: tinymembench copy bandwidth (regular and SSE2 series).
pub fn fig07_mem_bandwidth(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig07MemBandwidth);
    let bench = TinymembenchBenchmark::new(cfg.runs);
    let mut regular = Series::new("regular copy (MiB/s)");
    let mut sse2 = Series::new("sse2 copy (MiB/s)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig07MemBandwidth, &platform);
        let r = bench.run_bandwidth(&platform, CopyMethod::Regular, &mut rng);
        let s = bench.run_bandwidth(&platform, CopyMethod::Sse2, &mut rng);
        regular.points.push(DataPoint::categorical(
            platform.name(),
            r.mean(),
            r.std_dev(),
        ));
        sse2.points.push(DataPoint::categorical(
            platform.name(),
            s.mean(),
            s.std_dev(),
        ));
    }
    fig.series.push(regular);
    fig.series.push(sse2);
    fig
}

/// Fig. 8: STREAM COPY bandwidth.
pub fn fig08_stream(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig08Stream);
    let bench = StreamBenchmark::new(cfg.runs);
    let mut series = Series::new("copy bandwidth (MiB/s)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig08Stream, &platform);
        let stats = bench.run(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            stats.mean(),
            stats.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

fn fio_bench(cfg: &RunConfig) -> FioBenchmark {
    let mut bench = FioBenchmark::new(cfg.runs);
    if cfg.quick {
        bench.guest_memory_bytes = 2 << 30;
    }
    bench
}

/// Fig. 9: fio 128 KiB sequential read/write throughput.
pub fn fig09_fio_throughput(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig09FioThroughput);
    let bench = fio_bench(cfg);
    let mut read = Series::new("read (MiB/s)");
    let mut write = Series::new("write (MiB/s)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig09FioThroughput, &platform);
        if let Some(out) = bench.run_throughput(&platform, &mut rng) {
            read.points.push(DataPoint::categorical(
                platform.name(),
                out.read_mib_s.mean(),
                out.read_mib_s.std_dev(),
            ));
            write.points.push(DataPoint::categorical(
                platform.name(),
                out.write_mib_s.mean(),
                out.write_mib_s.std_dev(),
            ));
        }
    }
    fig.series.push(read);
    fig.series.push(write);
    fig
}

/// Fig. 10: fio 4 KiB random read latency.
pub fn fig10_fio_latency(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig10FioLatency);
    let bench = fio_bench(cfg);
    let mut series = Series::new("randread latency (us)");
    for id in PlatformId::paper_set()
        .iter()
        .chain([PlatformId::KataVirtioFs].iter())
    {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig10FioLatency, &platform);
        if let Some(stats) = bench.run_randread_latency(&platform, &mut rng) {
            series.points.push(DataPoint::categorical(
                platform.name(),
                stats.mean(),
                stats.std_dev(),
            ));
        }
    }
    fig.series.push(series);
    fig
}

/// Fig. 11: iperf3 maximum throughput over 5 runs.
pub fn fig11_iperf(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig11Iperf);
    let bench = IperfBenchmark::new(5.max(cfg.runs));
    let mut series = Series::new("throughput (Gbit/s)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig11Iperf, &platform);
        let stats = bench.run(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            stats.max().unwrap_or(0.0),
            stats.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

/// Fig. 12: netperf 90th-percentile request/response latency.
pub fn fig12_netperf(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig12Netperf);
    let bench = NetperfBenchmark::new(5.max(cfg.runs));
    let mut series = Series::new("p90 latency (us)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig12Netperf, &platform);
        let stats = bench.run_p90_us(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            stats.mean(),
            stats.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

fn boot_cdf_series(
    cfg: &RunConfig,
    experiment: ExperimentId,
    entries: &[(PlatformId, StartupVariant, &str)],
) -> FigureData {
    let mut fig = FigureData::new(experiment);
    let bench = StartupBenchmark::new(cfg.startups);
    for (id, variant, label) in entries {
        let platform = id.build();
        let mut rng = platform_rng(cfg, experiment, &platform);
        let cdf = bench.run_cdf(&platform, *variant, &mut rng);
        let mut series = Series::new(label);
        for pct in [10.0, 25.0, 50.0, 75.0, 90.0, 99.0] {
            series
                .points
                .push(DataPoint::numeric(pct, cdf.percentile(pct), 0.0));
        }
        fig.series.push(series);
    }
    fig
}

/// Fig. 13: container boot-time CDFs (Docker/gVisor/Kata via the daemon and
/// via direct OCI invocation, plus LXC).
pub fn fig13_boot_containers(cfg: &RunConfig) -> FigureData {
    boot_cdf_series(
        cfg,
        ExperimentId::Fig13BootContainers,
        &[
            (PlatformId::Docker, StartupVariant::Default, "docker"),
            (PlatformId::Docker, StartupVariant::OciDirect, "runc (oci)"),
            (PlatformId::GvisorPtrace, StartupVariant::Default, "gvisor"),
            (
                PlatformId::GvisorPtrace,
                StartupVariant::OciDirect,
                "runsc (oci)",
            ),
            (PlatformId::Kata, StartupVariant::Default, "kata"),
            (PlatformId::Kata, StartupVariant::OciDirect, "kata (oci)"),
            (PlatformId::Lxc, StartupVariant::Default, "lxc"),
        ],
    )
}

/// Fig. 14: hypervisor boot-time CDFs with the same kernel and rootfs.
pub fn fig14_boot_hypervisors(cfg: &RunConfig) -> FigureData {
    boot_cdf_series(
        cfg,
        ExperimentId::Fig14BootHypervisors,
        &[
            (
                PlatformId::CloudHypervisor,
                StartupVariant::Default,
                "cloud-hypervisor",
            ),
            (PlatformId::Qemu, StartupVariant::Default, "qemu"),
            (PlatformId::QemuQboot, StartupVariant::Default, "qemu-qboot"),
            (
                PlatformId::QemuMicrovm,
                StartupVariant::Default,
                "qemu-microvm",
            ),
            (
                PlatformId::Firecracker,
                StartupVariant::Default,
                "firecracker",
            ),
        ],
    )
}

/// Fig. 15: OSv boot-time CDFs under different hypervisors, measured
/// end-to-end and with the stdout method.
pub fn fig15_boot_osv(cfg: &RunConfig) -> FigureData {
    boot_cdf_series(
        cfg,
        ExperimentId::Fig15BootOsv,
        &[
            (
                PlatformId::OsvFirecracker,
                StartupVariant::Default,
                "osv-fc (e2e)",
            ),
            (
                PlatformId::OsvFirecracker,
                StartupVariant::StdoutMethod,
                "osv-fc (stdout)",
            ),
            (
                PlatformId::OsvQemu,
                StartupVariant::Default,
                "osv-qemu (e2e)",
            ),
            (
                PlatformId::OsvQemu,
                StartupVariant::StdoutMethod,
                "osv-qemu (stdout)",
            ),
        ],
    )
}

/// Fig. 16: Memcached YCSB workload A throughput.
pub fn fig16_memcached(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig16Memcached);
    let bench = if cfg.quick {
        YcsbBenchmark::quick()
    } else {
        YcsbBenchmark::default()
    };
    let mut series = Series::new("throughput (ops/s)");
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig16Memcached, &platform);
        let outcome = bench.run(&platform, &mut rng);
        series.points.push(DataPoint::categorical(
            platform.name(),
            outcome.ops_per_sec.mean(),
            outcome.ops_per_sec.std_dev(),
        ));
    }
    fig.series.push(series);
    fig
}

/// Fig. 17: MySQL sysbench oltp_read_write thread sweep (one series per
/// platform).
pub fn fig17_mysql(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig17Mysql);
    let bench = if cfg.quick {
        OltpBenchmark::quick()
    } else {
        OltpBenchmark::default()
    };
    for id in PlatformId::paper_set() {
        let platform = id.build();
        let mut rng = platform_rng(cfg, ExperimentId::Fig17Mysql, &platform);
        let mut series = Series::new(platform.name());
        for point in bench.run(&platform, &mut rng) {
            series.points.push(DataPoint::numeric(
                point.threads as f64,
                point.tps,
                point.tps_std,
            ));
        }
        fig.series.push(series);
    }
    fig
}

/// Fig. 18: the extended HAP metric (distinct host kernel functions and the
/// EPSS-weighted score).
pub fn fig18_hap(cfg: &RunConfig) -> FigureData {
    let mut fig = FigureData::new(ExperimentId::Fig18Hap);
    let suite = if cfg.quick {
        HapSuite::quick()
    } else {
        HapSuite::default()
    };
    let mut distinct = Series::new("distinct host kernel functions");
    let mut weighted = Series::new("EPSS-weighted score");
    for profile in suite.profile_paper_set() {
        distinct.points.push(DataPoint::categorical(
            &profile.platform,
            profile.distinct_functions as f64,
            0.0,
        ));
        weighted.points.push(DataPoint::categorical(
            &profile.platform,
            profile.weighted_score,
            0.0,
        ));
    }
    fig.series.push(distinct);
    fig.series.push(weighted);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig::quick(7)
    }

    #[test]
    fn bar_figures_cover_the_paper_platform_set() {
        let fig = fig05_ffmpeg(&cfg());
        assert_eq!(fig.series[0].points.len(), PlatformId::paper_set().len());
        let iperf = fig11_iperf(&cfg());
        assert_eq!(iperf.series[0].points.len(), PlatformId::paper_set().len());
    }

    #[test]
    fn fio_figures_exclude_the_right_platforms() {
        let fig = fig09_fio_throughput(&cfg());
        let read = fig.series_named("read (MiB/s)").unwrap();
        assert!(read.mean_of("firecracker").is_none());
        assert!(read.mean_of("osv").is_none());
        assert!(read.mean_of("qemu").is_some());
        let lat = fig10_fio_latency(&cfg());
        assert!(lat.series[0].mean_of("gvisor").is_none());
        assert!(lat.series[0].mean_of("kata-virtiofs").is_some());
    }

    #[test]
    fn boot_cdfs_have_monotone_percentiles() {
        let fig = fig14_boot_hypervisors(&cfg());
        for series in &fig.series {
            let mut last = 0.0;
            for p in &series.points {
                assert!(p.mean >= last, "{} not monotone", series.label);
                last = p.mean;
            }
        }
    }

    #[test]
    fn mysql_sweep_has_one_series_per_platform() {
        let fig = fig17_mysql(&cfg());
        assert_eq!(fig.series.len(), PlatformId::paper_set().len());
        for s in &fig.series {
            assert_eq!(s.points.len(), OltpBenchmark::quick().thread_counts.len());
        }
    }

    #[test]
    fn hap_figure_has_both_metrics() {
        let fig = fig18_hap(&cfg());
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), PlatformId::paper_set().len());
    }
}
