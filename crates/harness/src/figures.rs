//! Figure generation: the serial walk over the experiment grid.
//!
//! Every figure is generated from the cell decomposition in
//! [`crate::grid`]: the experiment's canonical platform entries × trials,
//! each with an independently derived random stream, merged back in
//! canonical order. Because the cells are stateless, this serial path
//! produces exactly the same bytes as the parallel
//! [`crate::executor::Executor`] for any worker count.

use crate::config::RunConfig;
use crate::experiment::{ExperimentId, FigureData};
use crate::grid;

/// Runs a single experiment and returns its figure data.
pub fn run(experiment: ExperimentId, cfg: &RunConfig) -> FigureData {
    let outputs: Vec<Vec<grid::CellOutput>> = grid::entries(experiment)
        .iter()
        .map(|entry| {
            (0..grid::trials(experiment, cfg))
                .map(|trial| grid::run_cell(experiment, entry, trial, cfg))
                .collect()
        })
        .collect();
    grid::merge(experiment, &outputs)
}

/// Runs every experiment of the evaluation section.
pub fn run_all(cfg: &RunConfig) -> Vec<FigureData> {
    ExperimentId::all().iter().map(|e| run(*e, cfg)).collect()
}

/// Fig. 5: ffmpeg re-encode wall clock per platform.
pub fn fig05_ffmpeg(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig05Ffmpeg, cfg)
}

/// Section 3.1: sysbench prime verification events per second.
pub fn sysbench_prime(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::SysbenchPrime, cfg)
}

/// Fig. 6: tinymembench latency sweep (one series per platform).
pub fn fig06_mem_latency(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig06MemLatency, cfg)
}

/// Fig. 7: tinymembench copy bandwidth (regular and SSE2 series).
pub fn fig07_mem_bandwidth(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig07MemBandwidth, cfg)
}

/// Fig. 8: STREAM COPY bandwidth.
pub fn fig08_stream(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig08Stream, cfg)
}

/// Fig. 9: fio 128 KiB sequential read/write throughput.
pub fn fig09_fio_throughput(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig09FioThroughput, cfg)
}

/// Fig. 10: fio 4 KiB random read latency.
pub fn fig10_fio_latency(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig10FioLatency, cfg)
}

/// Fig. 11: iperf3 maximum throughput over 5 runs.
pub fn fig11_iperf(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig11Iperf, cfg)
}

/// Fig. 12: netperf 90th-percentile request/response latency.
pub fn fig12_netperf(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig12Netperf, cfg)
}

/// Fig. 13: container boot-time CDFs (Docker/gVisor/Kata via the daemon and
/// via direct OCI invocation, plus LXC).
pub fn fig13_boot_containers(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig13BootContainers, cfg)
}

/// Fig. 14: hypervisor boot-time CDFs with the same kernel and rootfs.
pub fn fig14_boot_hypervisors(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig14BootHypervisors, cfg)
}

/// Fig. 15: OSv boot-time CDFs under different hypervisors, measured
/// end-to-end and with the stdout method.
pub fn fig15_boot_osv(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig15BootOsv, cfg)
}

/// Fig. 16: Memcached YCSB workload A throughput.
pub fn fig16_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig16Memcached, cfg)
}

/// Fig. 17: MySQL sysbench oltp_read_write thread sweep (one series per
/// platform).
pub fn fig17_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig17Mysql, cfg)
}

/// Fig. 18: the extended HAP metric (distinct host kernel functions and the
/// EPSS-weighted score).
pub fn fig18_hap(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::Fig18Hap, cfg)
}

/// Beyond the paper: open-loop Memcached throughput-vs-latency curves
/// (p50/p95/p99 sojourn time and achieved throughput per platform, swept
/// over offered-load fractions).
pub fn load_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::LoadMemcached, cfg)
}

/// Beyond the paper: open-loop MySQL throughput-vs-latency curves.
pub fn load_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::LoadMysql, cfg)
}

/// Beyond the paper: Memcached multi-tenant co-location — per-platform
/// victim/aggressor percentiles, drop and SLO-violation rates, and
/// isolation indices over an aggressor offered-load sweep.
pub fn tenant_isolation_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::TenantIsolationMemcached, cfg)
}

/// Beyond the paper: MySQL multi-tenant co-location.
pub fn tenant_isolation_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::TenantIsolationMysql, cfg)
}

/// Beyond the paper: Memcached behind a staged middleware pipeline —
/// per-platform sojourn percentiles, per-request stage tax, and
/// short-circuit / cache-hit / drop fractions over a chain-depth and
/// auth-cache hit-rate sweep (including the cache-miss storm).
pub fn pipeline_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::PipelineMemcached, cfg)
}

/// Beyond the paper: MySQL behind a staged middleware pipeline.
pub fn pipeline_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::PipelineMysql, cfg)
}

/// Beyond the paper: a Memcached sharded cluster — per-platform
/// cluster-wide sojourn percentiles, the hottest shard's tail, the
/// steady-phase load imbalance, and achieved/drop behaviour over a
/// shard-count, Zipf-skew and rebalancing-policy sweep.
pub fn cluster_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::ClusterMemcached, cfg)
}

/// Beyond the paper: a MySQL sharded cluster.
pub fn cluster_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::ClusterMysql, cfg)
}

/// Beyond the paper: the Memcached replication/failover cluster —
/// per-platform sojourn percentiles, the scatter-gather tail,
/// sloppy-quorum hand-offs and failure-phase drop rates over an
/// R/W-quorum, fan-out and kill/recover sweep.
pub fn cluster_failover_memcached(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::ClusterFailoverMemcached, cfg)
}

/// Beyond the paper: the MySQL replication/failover cluster.
pub fn cluster_failover_mysql(cfg: &RunConfig) -> FigureData {
    run(ExperimentId::ClusterFailoverMysql, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;
    use workloads::OltpBenchmark;

    fn cfg() -> RunConfig {
        RunConfig::quick(7)
    }

    #[test]
    fn bar_figures_cover_the_paper_platform_set() {
        let fig = fig05_ffmpeg(&cfg());
        assert_eq!(fig.series[0].points.len(), PlatformId::paper_set().len());
        let iperf = fig11_iperf(&cfg());
        assert_eq!(iperf.series[0].points.len(), PlatformId::paper_set().len());
    }

    #[test]
    fn fio_figures_exclude_the_right_platforms() {
        let fig = fig09_fio_throughput(&cfg());
        let read = fig.series_named("read (MiB/s)").unwrap();
        assert!(read.mean_of("firecracker").is_none());
        assert!(read.mean_of("osv").is_none());
        assert!(read.mean_of("qemu").is_some());
        let lat = fig10_fio_latency(&cfg());
        assert!(lat.series[0].mean_of("gvisor").is_none());
        assert!(lat.series[0].mean_of("kata-virtiofs").is_some());
    }

    #[test]
    fn boot_cdfs_have_monotone_percentiles() {
        let fig = fig14_boot_hypervisors(&cfg());
        for series in &fig.series {
            let mut last = 0.0;
            for p in &series.points {
                assert!(p.mean >= last, "{} not monotone", series.label);
                last = p.mean;
            }
        }
    }

    #[test]
    fn mysql_sweep_has_one_series_per_platform() {
        let fig = fig17_mysql(&cfg());
        assert_eq!(fig.series.len(), PlatformId::paper_set().len());
        for s in &fig.series {
            assert_eq!(s.points.len(), OltpBenchmark::quick().thread_counts.len());
        }
    }

    #[test]
    fn hap_figure_has_both_metrics() {
        let fig = fig18_hap(&cfg());
        assert_eq!(fig.series.len(), 2);
        assert_eq!(fig.series[0].points.len(), PlatformId::paper_set().len());
    }
}
