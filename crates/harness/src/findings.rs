//! Machine-checkable versions of the paper's key findings.
//!
//! Each check re-derives one of the paper's numbered findings (or
//! conclusions) from freshly generated figure data, so `cargo test` (and
//! the `findings_check` example) verifies that the reproduction still
//! exhibits the published behaviour.

use crate::config::RunConfig;
use crate::experiment::{ExperimentId, FigureData};
use crate::figures;

/// The outcome of one finding check.
#[derive(Debug, Clone, PartialEq)]
pub struct FindingCheck {
    /// Identifier, e.g. "finding-01".
    pub id: &'static str,
    /// What the paper claims.
    pub claim: &'static str,
    /// Whether the regenerated data supports the claim.
    pub passed: bool,
    /// A short explanation with the relevant numbers.
    pub detail: String,
}

fn check(id: &'static str, claim: &'static str, passed: bool, detail: String) -> FindingCheck {
    FindingCheck {
        id,
        claim,
        passed,
        detail,
    }
}

/// The experiments the finding checks read.
const NEEDED: [ExperimentId; 15] = [
    ExperimentId::SysbenchPrime,
    ExperimentId::Fig05Ffmpeg,
    ExperimentId::Fig06MemLatency,
    ExperimentId::Fig10FioLatency,
    ExperimentId::Fig11Iperf,
    ExperimentId::Fig13BootContainers,
    ExperimentId::Fig14BootHypervisors,
    ExperimentId::Fig15BootOsv,
    ExperimentId::Fig18Hap,
    ExperimentId::LoadMemcached,
    ExperimentId::LoadMysql,
    ExperimentId::TenantIsolationMemcached,
    ExperimentId::PipelineMemcached,
    ExperimentId::ClusterMemcached,
    ExperimentId::ClusterFailoverMemcached,
];

/// Runs all implemented finding checks using the given configuration,
/// regenerating exactly the figures the checks need.
pub fn check_findings(cfg: &RunConfig) -> Vec<FindingCheck> {
    let figures: Vec<FigureData> = NEEDED.iter().map(|e| figures::run(*e, cfg)).collect();
    check_findings_on(&figures)
}

/// Runs the finding checks against already-generated figure data — e.g.
/// an executor run's figures — without re-running any experiment. Checks
/// whose figures are absent from the slice are skipped.
pub fn check_findings_on(figures: &[FigureData]) -> Vec<FindingCheck> {
    let fig = |e: ExperimentId| figures.iter().find(|f| f.experiment == e);
    let mut out = Vec::new();

    // Finding 1 / 2: prime benchmark equal everywhere, ffmpeg penalises
    // custom schedulers.
    if let (Some(prime), Some(ffmpeg)) = (
        fig(ExperimentId::SysbenchPrime),
        fig(ExperimentId::Fig05Ffmpeg),
    ) {
        let s = &prime.series[0];
        let native = s.mean_of("native").unwrap_or(0.0);
        let spread = s
            .points
            .iter()
            .map(|p| (p.mean - native).abs() / native)
            .fold(0.0f64, f64::max);
        out.push(check(
            "finding-01",
            "basic CPU-bound work shows no overhead on any platform",
            spread < 0.1,
            format!("max deviation from native {:.1}%", spread * 100.0),
        ));
        let f = &ffmpeg.series[0];
        let native_ms = f.mean_of("native").unwrap_or(0.0);
        let osv_ms = f.mean_of("osv").unwrap_or(0.0);
        out.push(check(
            "finding-01b",
            "complex SIMD/thread-heavy encoding penalises custom schedulers (OSv)",
            osv_ms > native_ms * 1.4,
            format!("osv {osv_ms:.0} ms vs native {native_ms:.0} ms"),
        ));
    }

    // Finding 3/4: Kata memory not impaired; Firecracker is the outlier.
    if let Some(latency) = fig(ExperimentId::Fig06MemLatency) {
        let last = |label: &str| {
            latency
                .series_named(label)
                .and_then(|s| s.points.last())
                .map(|p| p.mean)
                .unwrap_or(0.0)
        };
        let native = last("native");
        out.push(check(
            "finding-03",
            "Kata (QEMU NVDIMM) memory latency is not significantly impaired",
            last("kata") < native * 1.15,
            format!("kata {:.0} ns vs native {:.0} ns", last("kata"), native),
        ));
        out.push(check(
            "finding-04",
            "Firecracker is the memory latency outlier, ahead of Cloud Hypervisor",
            last("firecracker") > last("cloud-hypervisor") && last("cloud-hypervisor") > native,
            format!(
                "fc {:.0} ns, chv {:.0} ns, native {:.0} ns",
                last("firecracker"),
                last("cloud-hypervisor"),
                native
            ),
        ));
    }

    // Findings 6/7: I/O of secure containers suffers; virtio-fs fixes Kata.
    if let Some(fio_lat) = fig(ExperimentId::Fig10FioLatency) {
        let s = &fio_lat.series[0];
        let kata = s.mean_of("kata").unwrap_or(0.0);
        let kata_vfs = s.mean_of("kata-virtiofs").unwrap_or(f64::MAX);
        let qemu = s.mean_of("qemu").unwrap_or(0.0);
        out.push(check(
            "finding-06",
            "Kata (9p) random-read latency is exceptionally poor",
            kata > qemu * 1.5,
            format!("kata {kata:.0} us vs qemu {qemu:.0} us"),
        ));
        out.push(check(
            "finding-07",
            "virtio-fs significantly outperforms 9p for Kata",
            kata_vfs < kata * 0.7,
            format!("kata-virtiofs {kata_vfs:.0} us vs kata {kata:.0} us"),
        ));
    }

    // Findings 10-12 / network: bridges ~10%, hypervisors ~25%, gVisor outlier.
    if let Some(iperf) = fig(ExperimentId::Fig11Iperf) {
        let s = &iperf.series[0];
        let native = s.mean_of("native").unwrap_or(0.0);
        let docker = s.mean_of("docker").unwrap_or(0.0);
        let qemu = s.mean_of("qemu").unwrap_or(0.0);
        let osv = s.mean_of("osv").unwrap_or(0.0);
        let gvisor = s.mean_of("gvisor").unwrap_or(0.0);
        out.push(check(
            "network-bridge",
            "bridge-based containers lose roughly 10% of native throughput",
            (0.05..0.15).contains(&(1.0 - docker / native)),
            format!("docker {docker:.1} vs native {native:.1} Gbit/s"),
        ));
        out.push(check(
            "network-hypervisor",
            "TAP+virtio hypervisors lose roughly 25%, while OSv under QEMU is ~25% above QEMU",
            (0.18..0.32).contains(&(1.0 - qemu / native)) && osv / qemu > 1.18,
            format!("qemu {qemu:.1}, osv {osv:.1}, native {native:.1} Gbit/s"),
        ));
        out.push(check(
            "finding-12",
            "gVisor is an extreme network outlier",
            gvisor < native * 0.25,
            format!("gvisor {gvisor:.1} vs native {native:.1} Gbit/s"),
        ));
    }

    // Findings 13-15: boot times.
    if let (Some(containers), Some(hypervisors), Some(osv_boot)) = (
        fig(ExperimentId::Fig13BootContainers),
        fig(ExperimentId::Fig14BootHypervisors),
        fig(ExperimentId::Fig15BootOsv),
    ) {
        let median = |fig: &crate::experiment::FigureData, label: &str| {
            fig.series_named(label)
                .and_then(|s| s.points.iter().find(|p| p.x_value == 50.0))
                .map(|p| p.mean)
                .unwrap_or(0.0)
        };
        let docker = median(containers, "runc (oci)");
        let kata = median(containers, "kata (oci)");
        let lxc = median(containers, "lxc");
        out.push(check(
            "finding-13",
            "containers boot fast except Kata and LXC (>600 ms)",
            docker < 200.0 && kata > 500.0 && lxc > 600.0,
            format!("docker {docker:.0} ms, kata {kata:.0} ms, lxc {lxc:.0} ms"),
        ));
        let fc = median(hypervisors, "firecracker");
        let chv = median(hypervisors, "cloud-hypervisor");
        let microvm = median(hypervisors, "qemu-microvm");
        out.push(check(
            "finding-14",
            "Firecracker boots slowest of the three hypervisors; Cloud Hypervisor fastest; QEMU-microvm slowest overall",
            chv < fc && fc < microvm,
            format!("chv {chv:.0} ms, fc {fc:.0} ms, microvm {microvm:.0} ms"),
        ));
        let osv_fc = median(osv_boot, "osv-fc (e2e)");
        let osv_qemu = median(osv_boot, "osv-qemu (e2e)");
        out.push(check(
            "finding-15",
            "OSv boots as fast as containers and its boot time depends on the hypervisor",
            osv_fc < 250.0 && osv_fc < osv_qemu,
            format!("osv-fc {osv_fc:.0} ms vs osv-qemu {osv_qemu:.0} ms"),
        ));
    }

    // Findings 24-27 / conclusions 8-9: the HAP ordering.
    if let Some(hap) = fig(ExperimentId::Fig18Hap) {
        let s = hap.series_named("distinct host kernel functions").unwrap();
        let get = |label: &str| s.mean_of(label).unwrap_or(0.0);
        let fc = get("firecracker");
        let max_other = s
            .points
            .iter()
            .filter(|p| p.x != "firecracker")
            .map(|p| p.mean)
            .fold(0.0f64, f64::max);
        out.push(check(
            "finding-24",
            "Firecracker calls into the host kernel most often of all platforms",
            fc > max_other,
            format!("firecracker {fc:.0} vs next {max_other:.0}"),
        ));
        out.push(check(
            "finding-25",
            "Cloud Hypervisor invokes far fewer host functions than the other hypervisors",
            get("cloud-hypervisor") < get("qemu") && get("cloud-hypervisor") < fc,
            format!(
                "chv {:.0}, qemu {:.0}, fc {fc:.0}",
                get("cloud-hypervisor"),
                get("qemu")
            ),
        ));
        out.push(check(
            "finding-26",
            "secure containers have higher HAP than regular containers",
            get("kata") > get("docker") && get("gvisor") > get("docker"),
            format!(
                "kata {:.0}, gvisor {:.0}, docker {:.0}",
                get("kata"),
                get("gvisor"),
                get("docker")
            ),
        ));
        out.push(check(
            "finding-27",
            "OSv executes the fewest host kernel functions",
            s.points
                .iter()
                .all(|p| p.x == "osv" || p.x == "osv-fc" || p.mean > get("osv")),
            format!("osv {:.0}", get("osv")),
        ));
    }

    // Beyond the paper: open-loop load behaviour. These curves are new
    // ground — the paper's closed-loop macro benchmarks cannot see them.
    if let Some(load) = fig(ExperimentId::LoadMemcached) {
        let p99_at = |platform: &str, fraction: &str| {
            load.series_named(&format!("{platform} {}", crate::grid::LOAD_P99))
                .and_then(|s| s.points.iter().find(|p| p.x == fraction))
                .map(|p| p.mean)
                .unwrap_or(0.0)
        };
        let native_low = p99_at("native", "0.20");
        let native_high = p99_at("native", "0.95");
        out.push(check(
            "load-01",
            "open-loop tail latency inflates as offered load approaches saturation",
            native_high > native_low,
            format!("native p99 {native_low:.1} us at 20% load vs {native_high:.1} us at 95%"),
        ));
        let gvisor_high = p99_at("gvisor", "0.95");
        out.push(check(
            "load-02",
            "at equal utilization, secure containers pay their per-request tax in absolute tail latency",
            gvisor_high > native_high,
            format!("gvisor p99 {gvisor_high:.1} us vs native {native_high:.1} us at 95% load"),
        ));
    }
    // Hockey-stick knee: the largest relative p99 jump of the derived
    // latency-vs-achieved-throughput curve must sit in the saturation
    // region (between the two highest offered loads) on every platform.
    if let Some(load) = fig(ExperimentId::LoadMemcached) {
        let mut knees = Vec::new();
        let mut all_at_the_end = true;
        for platform in crate::grid::platforms_of(load, crate::grid::LOAD_P50) {
            let series = load
                .series_named(&format!("{platform} {}", crate::grid::LOAD_P99))
                .expect("p99 series exists for every load platform");
            let jumps: Vec<f64> = series
                .points
                .windows(2)
                .map(|pair| pair[1].mean / pair[0].mean.max(f64::MIN_POSITIVE))
                .collect();
            // A knee needs at least two points to exist; a degenerate
            // single-point sweep fails the check instead of panicking.
            let Some((knee, _)) = jumps.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)) else {
                all_at_the_end = false;
                knees.push(format!("{platform} sweep too short for a knee"));
                continue;
            };
            if knee + 1 != jumps.len() {
                all_at_the_end = false;
            }
            knees.push(format!(
                "{platform} knee at {}",
                series.points[knee + 1].x.as_str()
            ));
        }
        out.push(check(
            "load-04",
            "every platform's hockey-stick knee sits at the saturation end of the load sweep",
            all_at_the_end && !knees.is_empty(),
            knees.join(", "),
        ));
    }
    if let Some(load) = fig(ExperimentId::LoadMysql) {
        let achieved_at = |platform: &str, fraction: &str| {
            load.series_named(&format!("{platform} {}", crate::grid::LOAD_ACHIEVED))
                .and_then(|s| s.points.iter().find(|p| p.x == fraction))
                .map(|p| p.mean)
                .unwrap_or(0.0)
        };
        let native = achieved_at("native", "0.80");
        let gvisor = achieved_at("gvisor", "0.80");
        out.push(check(
            "load-03",
            "at the same utilization fraction, native sustains a far higher absolute MySQL request rate",
            native > gvisor * 1.5,
            format!("native {native:.0} req/s vs gvisor {gvisor:.0} req/s at 80% load"),
        ));
    }

    // Beyond the paper: multi-tenant co-location. A latency-sensitive
    // victim shares the platform's weighted service slots with a bursty
    // aggressor swept into overload.
    if let Some(tenancy) = fig(ExperimentId::TenantIsolationMemcached) {
        let platforms = crate::grid::platforms_of(tenancy, crate::grid::TENANT_VICTIM_P99);
        let last = |platform: &str, metric: &str| {
            tenancy
                .series_named(&format!("{platform} {metric}"))
                .and_then(|s| s.points.last())
                .map(|p| p.mean)
                .unwrap_or(0.0)
        };

        // tenant-01: co-location inflates every victim's p99, and the
        // platform tax ordering survives the interference — the secure
        // container's victim tail stays above the native victim's.
        let native_p99 = last("native", crate::grid::TENANT_VICTIM_P99);
        let gvisor_p99 = last("gvisor", crate::grid::TENANT_VICTIM_P99);
        let min_inflation = platforms
            .iter()
            .map(|p| last(p, crate::grid::TENANT_ISOLATION_INDEX))
            .fold(f64::MAX, f64::min);
        out.push(check(
            "tenant-01",
            "an overloading aggressor inflates the victim's p99 on every platform, and the per-platform tax ordering survives co-location",
            min_inflation > 1.0 && gvisor_p99 > native_p99 && !platforms.is_empty(),
            format!(
                "min isolation index {min_inflation:.2}; victim p99 gvisor {gvisor_p99:.0} us vs native {native_p99:.0} us"
            ),
        ));

        // tenant-02: weighted slots bound the aggressor's impact — at
        // overload the victim's p99 under DRR undercuts unweighted FIFO
        // sharing on every platform.
        let worst_ratio = platforms
            .iter()
            .map(|p| {
                last(p, crate::grid::TENANT_VICTIM_P99)
                    / last(p, crate::grid::TENANT_VICTIM_FIFO_P99).max(f64::MIN_POSITIVE)
            })
            .fold(0.0f64, f64::max);
        out.push(check(
            "tenant-02",
            "weighted service slots bound the aggressor's impact: victim p99 under DRR stays below unweighted FIFO sharing at overload",
            worst_ratio < 1.0 && !platforms.is_empty(),
            format!("worst drr/fifo victim p99 ratio {worst_ratio:.3}"),
        ));

        // tenant-03: the bounded per-tenant queues shed the aggressor's
        // overload progressively — its drop rate is monotone in offered
        // load and strictly positive once past saturation.
        let mut monotone = true;
        let mut top_drop = f64::MAX;
        for platform in &platforms {
            let series = tenancy
                .series_named(&format!(
                    "{platform} {}",
                    crate::grid::TENANT_AGGRESSOR_DROP_RATE
                ))
                .expect("drop-rate series exists for every platform");
            let mut prev = 0.0f64;
            for point in &series.points {
                if point.mean < prev - 1e-9 {
                    monotone = false;
                }
                prev = point.mean;
            }
            top_drop = top_drop.min(prev);
        }
        out.push(check(
            "tenant-03",
            "the aggressor's drop rate rises monotonically with its offered load and is positive in overload on every platform",
            monotone && top_drop > 0.0 && !platforms.is_empty(),
            format!("smallest overload drop rate {top_drop:.3}"),
        ));
    }

    // Beyond the paper: the staged middleware pipeline. Every request now
    // pays explicit per-stage costs on top of the backend, so chain depth,
    // cache health, and the platform tax interact in measurable ways.
    if let Some(pipeline) = fig(ExperimentId::PipelineMemcached) {
        let platforms = crate::grid::platforms_of(pipeline, crate::grid::PIPELINE_STAGE_TAX);
        let at = |platform: &str, metric: &str, label: &str| {
            pipeline
                .series_named(&format!("{platform} {metric}"))
                .and_then(|s| s.mean_of(label))
                .unwrap_or(0.0)
        };

        // pipeline-01: deeper chains charge a larger stage tax and a
        // higher median on every platform — and the tax itself scales
        // clearly super-linearly versus a single stage.
        let mut depth_holds = !platforms.is_empty();
        let mut min_tax_ratio = f64::MAX;
        for platform in &platforms {
            let p50_d1 = at(platform, crate::grid::PIPELINE_P50, "d1 h0.90");
            let p50_d8 = at(platform, crate::grid::PIPELINE_P50, "d8 h0.90");
            let tax_d1 = at(platform, crate::grid::PIPELINE_STAGE_TAX, "d1 h0.90");
            let tax_d8 = at(platform, crate::grid::PIPELINE_STAGE_TAX, "d8 h0.90");
            if !(p50_d8 > p50_d1 && tax_d8 > tax_d1) {
                depth_holds = false;
            }
            min_tax_ratio = min_tax_ratio.min(tax_d8 / tax_d1.max(f64::MIN_POSITIVE));
        }
        out.push(check(
            "pipeline-01",
            "deeper middleware chains raise both the per-request stage tax and the median latency on every platform",
            depth_holds && min_tax_ratio > 2.0,
            format!("smallest d8/d1 stage-tax ratio {min_tax_ratio:.2}"),
        ));

        // pipeline-02: a cache-miss storm at the same depth blows the tail
        // past the warm-cache operating point on every platform, because
        // the capacity plan assumed the warm hit rate.
        let mut storm_holds = !platforms.is_empty();
        let mut min_storm_ratio = f64::MAX;
        for platform in &platforms {
            let warm = at(platform, crate::grid::PIPELINE_P99, "d4 h0.90");
            let storm = at(platform, crate::grid::PIPELINE_P99, "d4 miss-storm");
            let ratio = storm / warm.max(f64::MIN_POSITIVE);
            if ratio <= 1.5 {
                storm_holds = false;
            }
            min_storm_ratio = min_storm_ratio.min(ratio);
        }
        out.push(check(
            "pipeline-02",
            "a cache-miss storm inflates p99 well past the warm-cache point at the same chain depth on every platform",
            storm_holds,
            format!("smallest storm/warm p99 ratio {min_storm_ratio:.2}"),
        ));

        // pipeline-03: the platform tax compounds through the chain — the
        // secure container pays a strictly larger absolute stage tax and
        // tail than native at the deepest sweep point.
        let native_p99 = at("native", crate::grid::PIPELINE_P99, "d8 h0.90");
        let gvisor_p99 = at("gvisor", crate::grid::PIPELINE_P99, "d8 h0.90");
        let native_tax = at("native", crate::grid::PIPELINE_STAGE_TAX, "d8 h0.90");
        let gvisor_tax = at("gvisor", crate::grid::PIPELINE_STAGE_TAX, "d8 h0.90");
        out.push(check(
            "pipeline-03",
            "the platform tax compounds through the chain: gVisor's deep-chain p99 and stage tax exceed native's",
            gvisor_p99 > native_p99 && gvisor_tax > native_tax,
            format!(
                "d8 p99 gvisor {gvisor_p99:.0} us vs native {native_p99:.0} us; stage tax gvisor {gvisor_tax:.1} us vs native {native_tax:.1} us"
            ),
        ));
    }

    // Beyond the paper: the sharded cluster. A routing tier spreads
    // Zipf-skewed keys over N per-shard event cores, so placement skew,
    // fleet size, and resharding policy become measurable.
    if let Some(cluster) = fig(ExperimentId::ClusterMemcached) {
        let platforms = crate::grid::platforms_of(cluster, crate::grid::CLUSTER_HOT_P99);
        let at = |platform: &str, metric: &str, label: &str| {
            cluster
                .series_named(&format!("{platform} {metric}"))
                .and_then(|s| s.mean_of(label))
                .unwrap_or(0.0)
        };

        // cluster-01: key skew concentrates the tail on the hot shard —
        // at a fixed fleet size, raising the Zipf skew inflates both the
        // steady-phase load imbalance and the hottest shard's p99 on
        // every platform.
        let mut skew_holds = !platforms.is_empty();
        let mut min_imbalance_ratio = f64::MAX;
        for platform in &platforms {
            let balanced = at(platform, crate::grid::CLUSTER_IMBALANCE, "s16 z0.00");
            let skewed = at(platform, crate::grid::CLUSTER_IMBALANCE, "s16 z0.99");
            let hot_balanced = at(platform, crate::grid::CLUSTER_HOT_P99, "s16 z0.00");
            let hot_skewed = at(platform, crate::grid::CLUSTER_HOT_P99, "s16 z0.99");
            if !(skewed > balanced && hot_skewed > hot_balanced) {
                skew_holds = false;
            }
            min_imbalance_ratio = min_imbalance_ratio.min(skewed / balanced.max(f64::MIN_POSITIVE));
        }
        out.push(check(
            "cluster-01",
            "Zipf key skew concentrates load: at 16 shards, strong skew inflates the steady imbalance and the hot shard's p99 on every platform",
            skew_holds && min_imbalance_ratio > 1.3,
            format!("smallest z0.99/z0.00 imbalance ratio {min_imbalance_ratio:.2}"),
        ));

        // cluster-02: scale-out flattens the median but not the hot
        // tail — the cluster p50 falls 1→256 shards while the hottest
        // shard's p99 keeps growing, because the hottest key still lands
        // on exactly one shard whose load share does not shrink with N.
        let mut scale_holds = !platforms.is_empty();
        let mut min_hot_ratio = f64::MAX;
        for platform in &platforms {
            let p50_one = at(platform, crate::grid::CLUSTER_P50, "s1");
            let p50_many = at(platform, crate::grid::CLUSTER_P50, "s256");
            let hot_one = at(platform, crate::grid::CLUSTER_HOT_P99, "s1");
            let hot_many = at(platform, crate::grid::CLUSTER_HOT_P99, "s256");
            if !(p50_many < p50_one && hot_many > hot_one) {
                scale_holds = false;
            }
            min_hot_ratio = min_hot_ratio.min(hot_many / hot_one.max(f64::MIN_POSITIVE));
        }
        out.push(check(
            "cluster-02",
            "scale-out flattens the median but not the hot tail: 1→256 shards lowers cluster p50 while the hot shard's p99 grows on every platform",
            scale_holds && min_hot_ratio > 1.5,
            format!("smallest s256/s1 hot-shard p99 ratio {min_hot_ratio:.2}"),
        ));

        // cluster-03: resharding during churn restores balance — the
        // rebalanced point's steady-phase imbalance undercuts the stale
        // pinned placement by a wide margin and stays near the hashed
        // placement floor on every platform.
        let mut rebalance_holds = !platforms.is_empty();
        let mut max_rebal_ratio = 0.0f64;
        for platform in &platforms {
            let pinned = at(platform, crate::grid::CLUSTER_IMBALANCE, "s16 pinned");
            let rebal = at(platform, crate::grid::CLUSTER_IMBALANCE, "s16 rebal");
            let hashed = at(platform, crate::grid::CLUSTER_IMBALANCE, "s16");
            let ratio = rebal / pinned.max(f64::MIN_POSITIVE);
            if !(ratio < 0.75 && rebal < hashed * 1.5) {
                rebalance_holds = false;
            }
            max_rebal_ratio = max_rebal_ratio.max(ratio);
        }
        out.push(check(
            "cluster-03",
            "resharding during tenant churn restores balance: the rebalanced steady imbalance undercuts the stale pinned placement and lands near the hashed floor on every platform",
            rebalance_holds,
            format!("largest rebal/pinned imbalance ratio {max_rebal_ratio:.2}"),
        ));
    }

    // Beyond the paper: replication, failover and scatter-gather. The
    // quorum discipline (sojourn = max over the touched replicas) and a
    // seed-injected mid-window shard kill make tail-at-scale and
    // availability-under-failure measurable.
    if let Some(failover) = fig(ExperimentId::ClusterFailoverMemcached) {
        let platforms = crate::grid::platforms_of(failover, crate::grid::FAILOVER_SCATTER_P99);
        let at = |platform: &str, metric: &str, label: &str| {
            failover
                .series_named(&format!("{platform} {metric}"))
                .and_then(|s| s.mean_of(label))
                .unwrap_or(0.0)
        };

        // failover-01: the quorum max inflates the sojourn
        // distribution — a read-all shape at R=3 (W=1, reads wait for
        // all three replicas) lifts the cluster median past both
        // single-shard routing (R=1) and the narrow-read shape (W=R,
        // reads touch one replica) on every platform, even though
        // spreading each key over its replica set simultaneously
        // smooths the Zipf hot shard.
        let mut quorum_holds = !platforms.is_empty();
        let mut min_quorum_ratio = f64::MAX;
        for platform in &platforms {
            let single = at(platform, crate::grid::CLUSTER_P50, "r1");
            let read_all = at(platform, crate::grid::CLUSTER_P50, "r3 w1");
            let read_one = at(platform, crate::grid::CLUSTER_P50, "r3 w3");
            if !(read_one > single && read_all > read_one) {
                quorum_holds = false;
            }
            min_quorum_ratio = min_quorum_ratio.min(read_all / single.max(f64::MIN_POSITIVE));
        }
        out.push(check(
            "failover-01",
            "the quorum max inflates sojourn: R=3 read-all lifts the cluster median over both single-shard routing and the narrow-read quorum shape on every platform",
            quorum_holds && min_quorum_ratio > 1.1,
            format!("smallest read-all/single median ratio {min_quorum_ratio:.2}"),
        ));

        // failover-02: a mid-window shard kill spikes the drop rate
        // inside the failure window, the spike grows with the replica
        // exposure (read-all at R=3 touches the dead shard more often
        // than at R=2), the sloppy quorum hands traffic off around the
        // corpse, and after recovery the drop rate returns to the
        // pre-failure band on every platform.
        let mut spike_holds = !platforms.is_empty();
        let mut min_spike = f64::MAX;
        let mut max_residual = 0.0f64;
        for platform in &platforms {
            let pre = at(platform, crate::grid::FAILOVER_PRE_DROP, "r2 failrec");
            let window = at(platform, crate::grid::FAILOVER_WINDOW_DROP, "r2 failrec");
            let post = at(platform, crate::grid::FAILOVER_POST_DROP, "r2 failrec");
            let window_r3 = at(platform, crate::grid::FAILOVER_WINDOW_DROP, "r3 failrec");
            let handoffs = at(platform, crate::grid::FAILOVER_HANDOFFS, "r2 failrec");
            if !(window > pre && window_r3 > window && handoffs > 0.0) {
                spike_holds = false;
            }
            min_spike = min_spike.min(window - pre);
            max_residual = max_residual.max(post - pre);
        }
        out.push(check(
            "failover-02",
            "a mid-window shard kill spikes the failure-window drop rate, the spike grows with replica exposure (R=3 over R=2), and recovery returns drops to the pre-failure band on every platform",
            spike_holds && max_residual < 0.02,
            format!(
                "smallest window-pre spike {min_spike:.3}, largest post-pre residual {max_residual:.3}"
            ),
        ));

        // failover-03: scatter-gather pays max-of-K — even with the
        // per-shard query partitioned so total work is constant in the
        // fan-out, waiting for the slowest of K sub-queries lifts the
        // cluster median on every platform, and the scatter class's
        // p99 (averaged over platforms to tame small-sample tail
        // noise) grows monotonically K=1 → 4 → 16.
        let mut scatter_holds = !platforms.is_empty();
        let mut min_median_lift = f64::MAX;
        let (mut p99_k1, mut p99_k4, mut p99_k16) = (0.0f64, 0.0f64, 0.0f64);
        for platform in &platforms {
            let median_k1 = at(platform, crate::grid::CLUSTER_P50, "r3 w1");
            let median_k16 = at(platform, crate::grid::CLUSTER_P50, "r3 k16");
            if median_k16 <= median_k1 {
                scatter_holds = false;
            }
            min_median_lift = min_median_lift.min(median_k16 / median_k1.max(f64::MIN_POSITIVE));
            p99_k1 += at(platform, crate::grid::FAILOVER_SCATTER_P99, "r3 w1");
            p99_k4 += at(platform, crate::grid::FAILOVER_SCATTER_P99, "r3 k4");
            p99_k16 += at(platform, crate::grid::FAILOVER_SCATTER_P99, "r3 k16");
        }
        let p99_monotone = p99_k1 > 0.0 && p99_k1 <= p99_k4 && p99_k4 <= p99_k16;
        out.push(check(
            "failover-03",
            "scatter-gather pays max-of-K: fanning out lifts the cluster median on every platform and the platform-averaged scatter p99 grows monotonically in K",
            scatter_holds && p99_monotone && min_median_lift > 1.1,
            format!(
                "smallest k16/k1 median lift {min_median_lift:.2}, platform-mean scatter p99 {:.0}/{:.0}/{:.0} us at K=1/4/16",
                p99_k1 / platforms.len().max(1) as f64,
                p99_k4 / platforms.len().max(1) as f64,
                p99_k16 / platforms.len().max(1) as f64
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_finding_checks_pass_on_the_quick_configuration() {
        let cfg = RunConfig::quick(2021);
        let results = check_findings(&cfg);
        assert!(results.len() >= 12);
        let failed: Vec<_> = results.iter().filter(|c| !c.passed).collect();
        assert!(failed.is_empty(), "failed findings: {:#?}", failed);
    }

    #[test]
    fn checks_over_precomputed_figures_skip_what_is_missing() {
        assert!(check_findings_on(&[]).is_empty());
        let cfg = RunConfig::quick(2021);
        let hap_only = [figures::run(ExperimentId::Fig18Hap, &cfg)];
        let results = check_findings_on(&hap_only);
        assert_eq!(results.len(), 4);
        assert!(results.iter().all(|c| c.id.starts_with("finding-2")));
    }
}
