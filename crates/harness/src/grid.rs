//! The canonical experiment grid.
//!
//! Every figure of the evaluation decomposes into independent
//! `(experiment, platform entry, trial)` **cells**. Each cell derives its
//! own random stream statelessly via [`simcore::rng::derive`] from the
//! root seed, runs one trial of one platform's workload, and returns a
//! [`CellOutput`]. [`merge`] folds the per-cell outputs back into the
//! figure's series **in canonical order** (entry order × trial order), so
//! the resulting [`FigureData`] is bit-identical no matter how the cells
//! were scheduled — serially, sharded, or across any number of workers.
//!
//! [`crate::figures::run`] is the serial walk over this grid;
//! [`crate::executor::Executor`] fans the same cells out across threads.

use memsim::bandwidth::CopyMethod;
use platforms::subsystems::startup::StartupVariant;
use platforms::{Platform, PlatformId};
use simcore::rng;
use simcore::stats::{Cdf, RunningStats};
use simcore::SimRng;

use hap::HapSuite;
use workloads::bench::WorkloadBenchmark;
use workloads::cluster::{ClusterBenchmark, ClusterPoint};
use workloads::loadgen::{LoadBackend, LoadPoint, LoadgenBenchmark};
use workloads::pipeline::{PipelineBenchmark, PipelinePoint};
use workloads::tenancy::{ColocationPoint, TenancyBenchmark};
use workloads::{
    FfmpegBenchmark, FioBenchmark, IperfBenchmark, NetperfBenchmark, OltpBenchmark,
    StreamBenchmark, SysbenchCpuBenchmark, TinymembenchBenchmark, YcsbBenchmark,
};

use crate::config::RunConfig;
use crate::experiment::{DataPoint, ExperimentId, FigureData, Series};

/// One platform entry of an experiment's grid: a column of a bar figure,
/// one sweep series, or one boot-CDF series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// The platform this entry runs on.
    pub platform: PlatformId,
    /// The start-up variant (only meaningful for the boot experiments).
    pub variant: StartupVariant,
    /// The entry's unique label within the experiment — the figure legend
    /// name, and the `platform` component of the cell's seed derivation.
    pub label: &'static str,
}

impl Entry {
    fn bar(platform: PlatformId) -> Entry {
        Entry {
            platform,
            variant: StartupVariant::Default,
            label: platform.label(),
        }
    }
}

/// The boot-CDF entry tables (Figs. 13–15), in figure-legend order.
const BOOT_CONTAINERS: &[(PlatformId, StartupVariant, &str)] = &[
    (PlatformId::Docker, StartupVariant::Default, "docker"),
    (PlatformId::Docker, StartupVariant::OciDirect, "runc (oci)"),
    (PlatformId::GvisorPtrace, StartupVariant::Default, "gvisor"),
    (
        PlatformId::GvisorPtrace,
        StartupVariant::OciDirect,
        "runsc (oci)",
    ),
    (PlatformId::Kata, StartupVariant::Default, "kata"),
    (PlatformId::Kata, StartupVariant::OciDirect, "kata (oci)"),
    (PlatformId::Lxc, StartupVariant::Default, "lxc"),
];

const BOOT_HYPERVISORS: &[(PlatformId, StartupVariant, &str)] = &[
    (
        PlatformId::CloudHypervisor,
        StartupVariant::Default,
        "cloud-hypervisor",
    ),
    (PlatformId::Qemu, StartupVariant::Default, "qemu"),
    (PlatformId::QemuQboot, StartupVariant::Default, "qemu-qboot"),
    (
        PlatformId::QemuMicrovm,
        StartupVariant::Default,
        "qemu-microvm",
    ),
    (
        PlatformId::Firecracker,
        StartupVariant::Default,
        "firecracker",
    ),
];

const BOOT_OSV: &[(PlatformId, StartupVariant, &str)] = &[
    (
        PlatformId::OsvFirecracker,
        StartupVariant::Default,
        "osv-fc (e2e)",
    ),
    (
        PlatformId::OsvFirecracker,
        StartupVariant::StdoutMethod,
        "osv-fc (stdout)",
    ),
    (
        PlatformId::OsvQemu,
        StartupVariant::Default,
        "osv-qemu (e2e)",
    ),
    (
        PlatformId::OsvQemu,
        StartupVariant::StdoutMethod,
        "osv-qemu (stdout)",
    ),
];

/// The platform set of the open-loop load-curve, multi-tenant
/// co-location, middleware-pipeline and sharded-cluster experiments: one
/// representative per family (baseline, container, hypervisor, microVM,
/// secure container ×2), in figure-legend order.
const LOAD_PLATFORMS: &[PlatformId] = &[
    PlatformId::Native,
    PlatformId::Docker,
    PlatformId::Qemu,
    PlatformId::Firecracker,
    PlatformId::Kata,
    PlatformId::GvisorPtrace,
];

fn boot_entries(table: &'static [(PlatformId, StartupVariant, &'static str)]) -> Vec<Entry> {
    table
        .iter()
        .map(|(platform, variant, label)| Entry {
            platform: *platform,
            variant: *variant,
            label,
        })
        .collect()
}

/// The canonical platform entries of one experiment, in figure order.
pub fn entries(experiment: ExperimentId) -> Vec<Entry> {
    use ExperimentId::*;
    match experiment {
        Fig10FioLatency => PlatformId::paper_set()
            .iter()
            .chain([PlatformId::KataVirtioFs].iter())
            .map(|id| Entry::bar(*id))
            .collect(),
        Fig13BootContainers => boot_entries(BOOT_CONTAINERS),
        Fig14BootHypervisors => boot_entries(BOOT_HYPERVISORS),
        Fig15BootOsv => boot_entries(BOOT_OSV),
        LoadMemcached
        | LoadMysql
        | TenantIsolationMemcached
        | TenantIsolationMysql
        | PipelineMemcached
        | PipelineMysql
        | ClusterMemcached
        | ClusterMysql
        | ClusterFailoverMemcached
        | ClusterFailoverMysql => LOAD_PLATFORMS.iter().map(|id| Entry::bar(*id)).collect(),
        _ => PlatformId::paper_set()
            .iter()
            .map(|id| Entry::bar(*id))
            .collect(),
    }
}

/// The natural trial count of one experiment under the given
/// configuration: the paper's repetition count for the repeated figures,
/// the startup count for the boot CDFs, one for the deterministic HAP
/// metric.
pub fn trials(experiment: ExperimentId, cfg: &RunConfig) -> usize {
    use ExperimentId::*;
    let natural = match experiment {
        // The figure reports the max/p90 over at least 5 runs.
        Fig11Iperf | Fig12Netperf => cfg.runs.max(5),
        Fig13BootContainers | Fig14BootHypervisors | Fig15BootOsv => cfg.startups,
        Fig16Memcached => ycsb_bench(cfg).runs,
        Fig17Mysql => oltp_bench(cfg).runs,
        Fig18Hap => 1,
        LoadMemcached | LoadMysql => load_bench(experiment, cfg).runs,
        TenantIsolationMemcached | TenantIsolationMysql => tenant_bench(experiment, cfg).runs,
        PipelineMemcached | PipelineMysql => pipeline_bench(experiment, cfg).runs,
        ClusterMemcached | ClusterMysql => cluster_bench(experiment, cfg).runs,
        ClusterFailoverMemcached | ClusterFailoverMysql => failover_bench(experiment, cfg).runs,
        _ => cfg.runs,
    };
    // A zero-run/zero-startup config still produces one trial per cell so
    // merging never sees an empty grid.
    natural.max(1)
}

/// One x position of a sweep cell's output.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// X-axis label.
    pub x: String,
    /// Numeric x value (buffer bytes, thread count).
    pub x_value: f64,
    /// The sampled metric at this x.
    pub value: f64,
}

/// The measurement one cell contributes to its figure.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutput {
    /// One sample per figure series (the bar figures; most experiments
    /// contribute to one series, fio throughput and tinymembench copy
    /// bandwidth to two).
    Scalars(Vec<f64>),
    /// One sample per x position (the Fig. 6 buffer sweep and the Fig. 17
    /// thread sweep).
    Sweep(Vec<SweepPoint>),
    /// One boot time in milliseconds (the CDF figures).
    Boot(f64),
    /// The deterministic HAP metrics of one platform.
    Hap {
        /// Distinct host kernel functions invoked.
        distinct: f64,
        /// EPSS-weighted attack-surface score.
        weighted: f64,
    },
    /// One open-loop load sweep (one [`LoadPoint`] per offered-load
    /// fraction) of the load-curve experiments.
    Load(Vec<LoadPoint>),
    /// One multi-tenant co-location sweep (one [`ColocationPoint`] per
    /// aggressor offered-load fraction) of the tenant-isolation
    /// experiments.
    Tenant(Vec<ColocationPoint>),
    /// One middleware-pipeline sweep (one [`PipelinePoint`] per
    /// depth/hit-rate setting) of the pipeline experiments.
    Pipeline(Vec<PipelinePoint>),
    /// One sharded-cluster sweep (one [`ClusterPoint`] per
    /// shard-count/skew/routing setting) of the cluster experiments.
    Cluster(Vec<ClusterPoint>),
    /// The platform is excluded from this experiment.
    Skip,
}

fn fio_bench(cfg: &RunConfig) -> FioBenchmark {
    let mut bench = FioBenchmark::new(1);
    if cfg.quick {
        bench.guest_memory_bytes = 2 << 30;
    }
    bench
}

fn ycsb_bench(cfg: &RunConfig) -> YcsbBenchmark {
    if cfg.quick {
        YcsbBenchmark::quick()
    } else {
        YcsbBenchmark::default()
    }
}

fn oltp_bench(cfg: &RunConfig) -> OltpBenchmark {
    if cfg.quick {
        OltpBenchmark::quick()
    } else {
        OltpBenchmark::default()
    }
}

fn load_bench(experiment: ExperimentId, cfg: &RunConfig) -> LoadgenBenchmark {
    let backend = match experiment {
        ExperimentId::LoadMysql => LoadBackend::Mysql,
        _ => LoadBackend::Memcached,
    };
    if cfg.quick {
        LoadgenBenchmark::quick(backend)
    } else {
        LoadgenBenchmark::new(backend)
    }
}

fn tenant_bench(experiment: ExperimentId, cfg: &RunConfig) -> TenancyBenchmark {
    let backend = match experiment {
        ExperimentId::TenantIsolationMysql => LoadBackend::Mysql,
        _ => LoadBackend::Memcached,
    };
    if cfg.quick {
        TenancyBenchmark::quick(backend)
    } else {
        TenancyBenchmark::new(backend)
    }
}

fn pipeline_bench(experiment: ExperimentId, cfg: &RunConfig) -> PipelineBenchmark {
    let backend = match experiment {
        ExperimentId::PipelineMysql => LoadBackend::Mysql,
        _ => LoadBackend::Memcached,
    };
    if cfg.quick {
        PipelineBenchmark::quick(backend)
    } else {
        PipelineBenchmark::new(backend)
    }
}

fn cluster_bench(experiment: ExperimentId, cfg: &RunConfig) -> ClusterBenchmark {
    let backend = match experiment {
        ExperimentId::ClusterMysql => LoadBackend::Mysql,
        _ => LoadBackend::Memcached,
    };
    if cfg.quick {
        ClusterBenchmark::quick(backend)
    } else {
        ClusterBenchmark::new(backend)
    }
}

fn failover_bench(experiment: ExperimentId, cfg: &RunConfig) -> ClusterBenchmark {
    let backend = match experiment {
        ExperimentId::ClusterFailoverMysql => LoadBackend::Mysql,
        _ => LoadBackend::Memcached,
    };
    if cfg.quick {
        ClusterBenchmark::failover_quick(backend)
    } else {
        ClusterBenchmark::failover(backend)
    }
}

/// Runs one sweep-workload trial through the unified
/// [`WorkloadBenchmark`] surface — the single dispatch point of the
/// load-curve, tenancy, pipeline and cluster cells. A new sweep workload
/// reaches the grid by implementing the trait and wrapping its points in
/// a [`CellOutput`] variant here.
fn run_sweep_trial<B: WorkloadBenchmark>(
    bench: &B,
    platform: &Platform,
    rng: &mut SimRng,
) -> Vec<B::Point> {
    bench
        .run_trial(platform, rng)
        .expect("paper platforms derate to valid sweep configurations")
}

/// Runs one cell: one trial of one platform entry of one experiment.
///
/// The cell's random stream is derived statelessly from
/// `(cfg.seed, experiment, entry label, trial)`, so the output depends
/// only on those four values — never on scheduling.
pub fn run_cell(
    experiment: ExperimentId,
    entry: &Entry,
    trial: usize,
    cfg: &RunConfig,
) -> CellOutput {
    let platform = entry.platform.build();
    let mut rng = rng::derive(cfg.seed, experiment.slug(), entry.label, trial as u64);
    use ExperimentId::*;
    match experiment {
        Fig05Ffmpeg => {
            let stats = FfmpegBenchmark::new(1).run_summary_ms(&platform, &mut rng);
            CellOutput::Scalars(vec![stats.mean()])
        }
        SysbenchPrime => {
            let stats = SysbenchCpuBenchmark::new(1).run_events_per_sec(&platform, &mut rng);
            CellOutput::Scalars(vec![stats.mean()])
        }
        Fig06MemLatency => {
            let points = TinymembenchBenchmark::new(1).run_latency(&platform, &mut rng);
            CellOutput::Sweep(
                points
                    .into_iter()
                    .map(|p| SweepPoint {
                        x: format!("2^{}", (p.buffer_bytes as f64).log2() as u32),
                        x_value: p.buffer_bytes as f64,
                        value: p.latency_ns.mean(),
                    })
                    .collect(),
            )
        }
        Fig07MemBandwidth => {
            let bench = TinymembenchBenchmark::new(1);
            let regular = bench.run_bandwidth(&platform, CopyMethod::Regular, &mut rng);
            let sse2 = bench.run_bandwidth(&platform, CopyMethod::Sse2, &mut rng);
            CellOutput::Scalars(vec![regular.mean(), sse2.mean()])
        }
        Fig08Stream => {
            let stats = StreamBenchmark::new(1).run(&platform, &mut rng);
            CellOutput::Scalars(vec![stats.mean()])
        }
        Fig09FioThroughput => match fio_bench(cfg).run_throughput(&platform, &mut rng) {
            Some(out) => CellOutput::Scalars(vec![out.read_mib_s.mean(), out.write_mib_s.mean()]),
            None => CellOutput::Skip,
        },
        Fig10FioLatency => match fio_bench(cfg).run_randread_latency(&platform, &mut rng) {
            Some(stats) => CellOutput::Scalars(vec![stats.mean()]),
            None => CellOutput::Skip,
        },
        Fig11Iperf => {
            let stats = IperfBenchmark::new(1).run(&platform, &mut rng);
            CellOutput::Scalars(vec![stats.mean()])
        }
        Fig12Netperf => {
            let stats = NetperfBenchmark::new(1).run_p90_us(&platform, &mut rng);
            CellOutput::Scalars(vec![stats.mean()])
        }
        Fig13BootContainers | Fig14BootHypervisors | Fig15BootOsv => CellOutput::Boot(
            platform
                .startup()
                .sample(entry.variant, &mut rng)
                .as_millis_f64(),
        ),
        Fig16Memcached => {
            let mut bench = ycsb_bench(cfg);
            bench.runs = 1;
            CellOutput::Scalars(vec![bench.run_trial(&platform, &mut rng)])
        }
        Fig17Mysql => {
            let mut bench = oltp_bench(cfg);
            bench.runs = 1;
            CellOutput::Sweep(
                bench
                    .run_trial(&platform, &mut rng)
                    .into_iter()
                    .map(|(threads, tps)| SweepPoint {
                        x: format!("{}", threads as f64),
                        x_value: threads as f64,
                        value: tps,
                    })
                    .collect(),
            )
        }
        Fig18Hap => {
            let suite = if cfg.quick {
                HapSuite::quick()
            } else {
                HapSuite::default()
            };
            let profile = suite.profile(&platform);
            CellOutput::Hap {
                distinct: profile.distinct_functions as f64,
                weighted: profile.weighted_score,
            }
        }
        LoadMemcached | LoadMysql => CellOutput::Load(run_sweep_trial(
            &load_bench(experiment, cfg),
            &platform,
            &mut rng,
        )),
        TenantIsolationMemcached | TenantIsolationMysql => CellOutput::Tenant(run_sweep_trial(
            &tenant_bench(experiment, cfg),
            &platform,
            &mut rng,
        )),
        PipelineMemcached | PipelineMysql => CellOutput::Pipeline(run_sweep_trial(
            &pipeline_bench(experiment, cfg),
            &platform,
            &mut rng,
        )),
        ClusterMemcached | ClusterMysql => CellOutput::Cluster(run_sweep_trial(
            &cluster_bench(experiment, cfg),
            &platform,
            &mut rng,
        )),
        ClusterFailoverMemcached | ClusterFailoverMysql => CellOutput::Cluster(run_sweep_trial(
            &failover_bench(experiment, cfg),
            &platform,
            &mut rng,
        )),
    }
}

/// The figure series labels of the bar and HAP experiments, in series
/// order (sweeps and boot CDFs name their series after the entries).
fn series_labels(experiment: ExperimentId) -> &'static [&'static str] {
    use ExperimentId::*;
    match experiment {
        Fig05Ffmpeg => &["re-encode time (ms)"],
        SysbenchPrime => &["events/s"],
        Fig07MemBandwidth => &["regular copy (MiB/s)", "sse2 copy (MiB/s)"],
        Fig08Stream => &["copy bandwidth (MiB/s)"],
        Fig09FioThroughput => &["read (MiB/s)", "write (MiB/s)"],
        Fig10FioLatency => &["randread latency (us)"],
        Fig11Iperf => &["throughput (Gbit/s)"],
        Fig12Netperf => &["p90 latency (us)"],
        Fig16Memcached => &["throughput (ops/s)"],
        Fig18Hap => &["distinct host kernel functions", "EPSS-weighted score"],
        _ => &[],
    }
}

/// The CDF percentiles the boot figures report.
const BOOT_PERCENTILES: [f64; 6] = [10.0, 25.0, 50.0, 75.0, 90.0, 99.0];

/// Merges the outputs of every cell of one experiment — indexed
/// `outputs[entry][trial]` in canonical order — into the figure data.
///
/// Merging is a pure fold over the canonically ordered outputs, so two
/// runs that produced the same cells yield byte-identical figures
/// regardless of the order the cells actually completed in.
pub fn merge(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    use ExperimentId::*;
    match experiment {
        Fig06MemLatency | Fig17Mysql => merge_sweep(experiment, outputs),
        Fig13BootContainers | Fig14BootHypervisors | Fig15BootOsv => {
            merge_boot(experiment, outputs)
        }
        Fig18Hap => merge_hap(experiment, outputs),
        LoadMemcached | LoadMysql => merge_load(experiment, outputs),
        TenantIsolationMemcached | TenantIsolationMysql => merge_tenant(experiment, outputs),
        PipelineMemcached | PipelineMysql => merge_pipeline(experiment, outputs),
        ClusterMemcached | ClusterMysql => merge_cluster(experiment, outputs),
        ClusterFailoverMemcached | ClusterFailoverMysql => merge_failover(experiment, outputs),
        // Fig. 11 reports the maximum over the runs, everything else the mean.
        Fig11Iperf => merge_bars(experiment, outputs, true),
        _ => merge_bars(experiment, outputs, false),
    }
}

/// Series-label suffix of the load figures' median sojourn time.
pub const LOAD_P50: &str = "p50 (us)";
/// Series-label suffix of the load figures' 95th-percentile sojourn time.
pub const LOAD_P95: &str = "p95 (us)";
/// Series-label suffix of the load figures' 99th-percentile sojourn time.
pub const LOAD_P99: &str = "p99 (us)";
/// Series-label suffix of the load figures' achieved throughput.
pub const LOAD_ACHIEVED: &str = "achieved (req/s)";

/// The per-platform metric series of one load-curve figure, in series
/// order: the sojourn-time percentiles plus the achieved throughput.
/// Every series is labelled `"<platform> <metric>"`; [`crate::findings`]
/// and [`crate::report`] look series up through these constants.
pub const LOAD_METRICS: [&str; 4] = [LOAD_P50, LOAD_P95, LOAD_P99, LOAD_ACHIEVED];

fn load_metric(point: &LoadPoint, metric: &str) -> f64 {
    match metric {
        LOAD_P50 => point.p50_us,
        LOAD_P95 => point.p95_us,
        LOAD_P99 => point.p99_us,
        LOAD_ACHIEVED => point.achieved_per_sec,
        other => unreachable!("unknown load metric {other}"),
    }
}

fn merge_load(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let sweeps: Vec<&[LoadPoint]> = trials
            .iter()
            .map(|output| match output {
                CellOutput::Load(points) => points.as_slice(),
                other => unreachable!("{experiment:?} produced {other:?}, expected a load sweep"),
            })
            .collect();
        let first = sweeps.first().expect("every entry runs at least one trial");
        for metric in LOAD_METRICS {
            let mut series = Series::new(&format!("{} {metric}", entry.label));
            for (xi, sample) in first.iter().enumerate() {
                let stats: RunningStats = sweeps
                    .iter()
                    .map(|points| load_metric(&points[xi], metric))
                    .collect();
                series.points.push(DataPoint {
                    x: format!("{:.2}", sample.offered_fraction),
                    x_value: sample.offered_fraction,
                    mean: stats.mean(),
                    std_dev: stats.std_dev(),
                });
            }
            fig.series.push(series);
        }
    }
    fig
}

/// The per-platform metric series of one tenant-isolation figure, in
/// series order: the victim's percentiles, throughput, drop/SLO behaviour
/// and isolation diagnostics (solo baseline, FIFO comparison, isolation
/// index), then the aggressor's percentiles, throughput and drop rate.
/// Every series is labelled `"<platform> <metric>"`; [`crate::findings`]
/// and [`crate::report`] look series up through these constants.
pub const TENANT_METRICS: [&str; 14] = [
    TENANT_VICTIM_P50,
    TENANT_VICTIM_P95,
    TENANT_VICTIM_P99,
    TENANT_VICTIM_ACHIEVED,
    TENANT_VICTIM_DROP_RATE,
    TENANT_VICTIM_SLO_VIOLATION,
    TENANT_VICTIM_SOLO_P99,
    TENANT_VICTIM_FIFO_P99,
    TENANT_ISOLATION_INDEX,
    TENANT_AGGRESSOR_P50,
    TENANT_AGGRESSOR_P95,
    TENANT_AGGRESSOR_P99,
    TENANT_AGGRESSOR_ACHIEVED,
    TENANT_AGGRESSOR_DROP_RATE,
];

/// Victim median sojourn time under the weighted scheduler.
pub const TENANT_VICTIM_P50: &str = "victim p50 (us)";
/// Victim 95th-percentile sojourn time under the weighted scheduler.
pub const TENANT_VICTIM_P95: &str = "victim p95 (us)";
/// Victim 99th-percentile sojourn time under the weighted scheduler.
pub const TENANT_VICTIM_P99: &str = "victim p99 (us)";
/// Victim achieved throughput under the weighted scheduler.
pub const TENANT_VICTIM_ACHIEVED: &str = "victim achieved (req/s)";
/// Victim drop rate (dropped / issued) under the weighted scheduler.
pub const TENANT_VICTIM_DROP_RATE: &str = "victim drop rate";
/// Fraction of victim completions slower than its p99 SLO target.
pub const TENANT_VICTIM_SLO_VIOLATION: &str = "victim slo violation";
/// Victim p99 running alone on the platform (same streams).
pub const TENANT_VICTIM_SOLO_P99: &str = "victim solo p99 (us)";
/// Victim p99 under unweighted global-FIFO sharing (same streams).
pub const TENANT_VICTIM_FIFO_P99: &str = "victim fifo p99 (us)";
/// Isolation index: co-located (weighted) victim p99 / solo victim p99.
pub const TENANT_ISOLATION_INDEX: &str = "victim isolation index";
/// Aggressor median sojourn time under the weighted scheduler.
pub const TENANT_AGGRESSOR_P50: &str = "aggressor p50 (us)";
/// Aggressor 95th-percentile sojourn time under the weighted scheduler.
pub const TENANT_AGGRESSOR_P95: &str = "aggressor p95 (us)";
/// Aggressor 99th-percentile sojourn time under the weighted scheduler.
pub const TENANT_AGGRESSOR_P99: &str = "aggressor p99 (us)";
/// Aggressor achieved throughput under the weighted scheduler.
pub const TENANT_AGGRESSOR_ACHIEVED: &str = "aggressor achieved (req/s)";
/// Aggressor drop rate (dropped / issued) under the weighted scheduler.
pub const TENANT_AGGRESSOR_DROP_RATE: &str = "aggressor drop rate";

/// The per-platform metric series of one middleware-pipeline figure, in
/// series order: sojourn percentiles, the per-request middleware tax,
/// and the short-circuit / cache-hit / drop fractions. Every series is
/// labelled `"<platform> <metric>"`; [`crate::findings`] and
/// [`crate::report`] look series up through these constants.
pub const PIPELINE_METRICS: [&str; 6] = [
    PIPELINE_P50,
    PIPELINE_P99,
    PIPELINE_STAGE_TAX,
    PIPELINE_SHORT_CIRCUIT,
    PIPELINE_CACHE_HIT,
    PIPELINE_DROP_RATE,
];

/// Pipeline median sojourn time (queueing + chain + backend).
pub const PIPELINE_P50: &str = "p50 (us)";
/// Pipeline 99th-percentile sojourn time.
pub const PIPELINE_P99: &str = "p99 (us)";
/// Mean middleware cost charged per response (the per-stage latency tax
/// summed over the entered stages).
pub const PIPELINE_STAGE_TAX: &str = "stage tax (us)";
/// Fraction of responses short-circuited by a middleware stage.
pub const PIPELINE_SHORT_CIRCUIT: &str = "short-circuit fraction";
/// Auth-cache hit fraction over the point's accesses.
pub const PIPELINE_CACHE_HIT: &str = "cache hit fraction";
/// Dropped fraction of all issued requests.
pub const PIPELINE_DROP_RATE: &str = "drop fraction";

fn pipeline_metric(point: &PipelinePoint, metric: &str) -> f64 {
    match metric {
        PIPELINE_P50 => point.p50_us,
        PIPELINE_P99 => point.p99_us,
        PIPELINE_STAGE_TAX => point.stage_tax_us,
        PIPELINE_SHORT_CIRCUIT => point.short_circuit_fraction,
        PIPELINE_CACHE_HIT => point.cache_hit_fraction,
        PIPELINE_DROP_RATE => point.drop_fraction,
        other => unreachable!("unknown pipeline metric {other}"),
    }
}

fn merge_pipeline(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let sweeps: Vec<&[PipelinePoint]> = trials
            .iter()
            .map(|output| match output {
                CellOutput::Pipeline(points) => points.as_slice(),
                other => {
                    unreachable!("{experiment:?} produced {other:?}, expected a pipeline sweep")
                }
            })
            .collect();
        let first = sweeps.first().expect("every entry runs at least one trial");
        for metric in PIPELINE_METRICS {
            let mut series = Series::new(&format!("{} {metric}", entry.label));
            for (xi, sample) in first.iter().enumerate() {
                let stats: RunningStats = sweeps
                    .iter()
                    .map(|points| pipeline_metric(&points[xi], metric))
                    .collect();
                series.points.push(DataPoint {
                    x: sample.label.clone(),
                    x_value: xi as f64,
                    mean: stats.mean(),
                    std_dev: stats.std_dev(),
                });
            }
            fig.series.push(series);
        }
    }
    fig
}

/// The per-platform metric series of one sharded-cluster figure, in
/// series order: cluster-wide sojourn percentiles, the hottest shard's
/// tail, the steady-phase load imbalance, and the achieved/drop
/// behaviour. Every series is labelled `"<platform> <metric>"`;
/// [`crate::findings`] and [`crate::report`] look series up through
/// these constants.
pub const CLUSTER_METRICS: [&str; 6] = [
    CLUSTER_P50,
    CLUSTER_P99,
    CLUSTER_HOT_P99,
    CLUSTER_IMBALANCE,
    CLUSTER_ACHIEVED,
    CLUSTER_DROP_RATE,
];

/// Cluster-wide median sojourn time across all shards.
pub const CLUSTER_P50: &str = "p50 (us)";
/// Cluster-wide 99th-percentile sojourn time across all shards.
pub const CLUSTER_P99: &str = "p99 (us)";
/// 99th-percentile sojourn time on the hottest shard (by arrivals).
pub const CLUSTER_HOT_P99: &str = "hot shard p99 (us)";
/// Steady-phase load imbalance: hottest shard arrivals over the
/// per-shard mean (1.0 = perfectly balanced).
pub const CLUSTER_IMBALANCE: &str = "imbalance";
/// Completed cluster throughput.
pub const CLUSTER_ACHIEVED: &str = "achieved (req/s)";
/// Dropped fraction of all issued requests.
pub const CLUSTER_DROP_RATE: &str = "drop fraction";

fn cluster_metric(point: &ClusterPoint, metric: &str) -> f64 {
    match metric {
        CLUSTER_P50 => point.p50_us,
        CLUSTER_P99 => point.p99_us,
        CLUSTER_HOT_P99 => point.hot_p99_us,
        CLUSTER_IMBALANCE => point.imbalance,
        CLUSTER_ACHIEVED => point.achieved_per_sec,
        CLUSTER_DROP_RATE => point.drop_fraction,
        other => unreachable!("unknown cluster metric {other}"),
    }
}

/// The per-platform metric series of one replication/failover figure, in
/// series order: cluster-wide sojourn percentiles, the scatter-gather
/// tail, the drop behaviour, the sloppy-quorum hand-off count and the
/// failure-phase drop rates. Every series is labelled
/// `"<platform> <metric>"`; [`crate::findings`] and [`crate::report`]
/// look series up through these constants.
pub const FAILOVER_METRICS: [&str; 9] = [
    CLUSTER_P50,
    CLUSTER_P99,
    FAILOVER_SCATTER_P99,
    CLUSTER_DROP_RATE,
    FAILOVER_HANDOFFS,
    FAILOVER_FAIL_AT,
    FAILOVER_PRE_DROP,
    FAILOVER_WINDOW_DROP,
    FAILOVER_POST_DROP,
];

/// 99th-percentile sojourn of the scatter-gather class (max over its K
/// partial queries).
pub const FAILOVER_SCATTER_P99: &str = "scatter p99 (us)";
/// Sub-requests the sloppy quorum handed off around a dead shard.
pub const FAILOVER_HANDOFFS: &str = "hand-offs";
/// Virtual-time instant of the shard kill (µs into the window); `-1` for
/// settings with no fault injected.
pub const FAILOVER_FAIL_AT: &str = "fail at (us)";
/// Drop rate over requests resolved before the failure instant.
pub const FAILOVER_PRE_DROP: &str = "pre-fail drop rate";
/// Drop rate over requests resolved inside the failure window.
pub const FAILOVER_WINDOW_DROP: &str = "fail-window drop rate";
/// Drop rate over requests resolved after the recovery instant.
pub const FAILOVER_POST_DROP: &str = "post-recover drop rate";

fn failover_metric(point: &ClusterPoint, metric: &str) -> f64 {
    match metric {
        CLUSTER_P50 => point.p50_us,
        CLUSTER_P99 => point.p99_us,
        FAILOVER_SCATTER_P99 => point.scatter_p99_us,
        CLUSTER_DROP_RATE => point.drop_fraction,
        FAILOVER_HANDOFFS => point.failover_handoffs as f64,
        FAILOVER_FAIL_AT => point.fail_at_us,
        FAILOVER_PRE_DROP => point.pre_fail_drop_rate,
        FAILOVER_WINDOW_DROP => point.fail_window_drop_rate,
        FAILOVER_POST_DROP => point.post_recover_drop_rate,
        other => unreachable!("unknown failover metric {other}"),
    }
}

fn merge_cluster(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    merge_cluster_family(experiment, outputs, &CLUSTER_METRICS, cluster_metric)
}

fn merge_failover(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    merge_cluster_family(experiment, outputs, &FAILOVER_METRICS, failover_metric)
}

fn merge_cluster_family(
    experiment: ExperimentId,
    outputs: &[Vec<CellOutput>],
    metrics: &[&str],
    metric_of: fn(&ClusterPoint, &str) -> f64,
) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let sweeps: Vec<&[ClusterPoint]> = trials
            .iter()
            .map(|output| match output {
                CellOutput::Cluster(points) => points.as_slice(),
                other => {
                    unreachable!("{experiment:?} produced {other:?}, expected a cluster sweep")
                }
            })
            .collect();
        let first = sweeps.first().expect("every entry runs at least one trial");
        for metric in metrics {
            let mut series = Series::new(&format!("{} {metric}", entry.label));
            for (xi, sample) in first.iter().enumerate() {
                let stats: RunningStats = sweeps
                    .iter()
                    .map(|points| metric_of(&points[xi], metric))
                    .collect();
                series.points.push(DataPoint {
                    x: sample.label.clone(),
                    x_value: xi as f64,
                    mean: stats.mean(),
                    std_dev: stats.std_dev(),
                });
            }
            fig.series.push(series);
        }
    }
    fig
}

/// The platform labels of a merged per-metric sweep figure (load,
/// tenancy, pipeline or cluster), recovered in canonical entry order by
/// stripping one of the figure's metric suffixes (e.g. [`LOAD_P50`],
/// [`TENANT_VICTIM_P99`], [`PIPELINE_STAGE_TAX`], [`CLUSTER_P99`]) from
/// its `"<platform> <metric>"` series labels. Any metric the figure
/// carries recovers the same list; callers conventionally pass the
/// figure family's first headline metric.
pub fn platforms_of(fig: &FigureData, metric: &str) -> Vec<String> {
    let suffix = format!(" {metric}");
    fig.series
        .iter()
        .filter_map(|s| s.label.strip_suffix(suffix.as_str()))
        .map(str::to_string)
        .collect()
}

fn tenant_metric(point: &ColocationPoint, metric: &str) -> f64 {
    match metric {
        TENANT_VICTIM_P50 => point.victim.p50_us,
        TENANT_VICTIM_P95 => point.victim.p95_us,
        TENANT_VICTIM_P99 => point.victim.p99_us,
        TENANT_VICTIM_ACHIEVED => point.victim.achieved_per_sec,
        TENANT_VICTIM_DROP_RATE => point.victim.drop_rate,
        TENANT_VICTIM_SLO_VIOLATION => point.victim.slo_violation,
        TENANT_VICTIM_SOLO_P99 => point.victim_solo_p99_us,
        TENANT_VICTIM_FIFO_P99 => point.victim_fifo_p99_us,
        TENANT_ISOLATION_INDEX => point.isolation_index,
        TENANT_AGGRESSOR_P50 => point.aggressor.p50_us,
        TENANT_AGGRESSOR_P95 => point.aggressor.p95_us,
        TENANT_AGGRESSOR_P99 => point.aggressor.p99_us,
        TENANT_AGGRESSOR_ACHIEVED => point.aggressor.achieved_per_sec,
        TENANT_AGGRESSOR_DROP_RATE => point.aggressor.drop_rate,
        other => unreachable!("unknown tenant metric {other}"),
    }
}

fn merge_tenant(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let sweeps: Vec<&[ColocationPoint]> = trials
            .iter()
            .map(|output| match output {
                CellOutput::Tenant(points) => points.as_slice(),
                other => {
                    unreachable!("{experiment:?} produced {other:?}, expected a tenant sweep")
                }
            })
            .collect();
        let first = sweeps.first().expect("every entry runs at least one trial");
        for metric in TENANT_METRICS {
            let mut series = Series::new(&format!("{} {metric}", entry.label));
            for (xi, sample) in first.iter().enumerate() {
                let stats: RunningStats = sweeps
                    .iter()
                    .map(|points| tenant_metric(&points[xi], metric))
                    .collect();
                series.points.push(DataPoint {
                    x: format!("{:.2}", sample.aggressor_fraction),
                    x_value: sample.aggressor_fraction,
                    mean: stats.mean(),
                    std_dev: stats.std_dev(),
                });
            }
            fig.series.push(series);
        }
    }
    fig
}

fn merge_bars(
    experiment: ExperimentId,
    outputs: &[Vec<CellOutput>],
    headline_max: bool,
) -> FigureData {
    let labels = series_labels(experiment);
    let mut fig = FigureData::new(experiment);
    let mut series: Vec<Series> = labels.iter().map(|l| Series::new(l)).collect();
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let mut stats = vec![RunningStats::new(); labels.len()];
        let mut ran = false;
        for output in trials {
            match output {
                CellOutput::Scalars(values) => {
                    ran = true;
                    for (s, value) in stats.iter_mut().zip(values) {
                        s.record(*value);
                    }
                }
                CellOutput::Skip => {}
                other => unreachable!("{experiment:?} produced {other:?}, expected scalars"),
            }
        }
        if !ran {
            // Excluded platform (fio on Firecracker/OSv/gVisor): no point.
            continue;
        }
        for (s, stat) in series.iter_mut().zip(&stats) {
            let value = if headline_max {
                stat.max().unwrap_or(0.0)
            } else {
                stat.mean()
            };
            s.points
                .push(DataPoint::categorical(entry.label, value, stat.std_dev()));
        }
    }
    fig.series = series;
    fig
}

fn merge_sweep(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let mut series = Series::new(entry.label);
        let first = match trials.first() {
            Some(CellOutput::Sweep(points)) => points,
            other => unreachable!("{experiment:?} produced {other:?}, expected a sweep"),
        };
        for (xi, sp) in first.iter().enumerate() {
            let mut stats = RunningStats::new();
            for output in trials {
                match output {
                    CellOutput::Sweep(points) => stats.record(points[xi].value),
                    other => unreachable!("{experiment:?} produced {other:?}, expected a sweep"),
                }
            }
            series.points.push(DataPoint {
                x: sp.x.clone(),
                x_value: sp.x_value,
                mean: stats.mean(),
                std_dev: stats.std_dev(),
            });
        }
        fig.series.push(series);
    }
    fig
}

fn merge_boot(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        let samples: Vec<f64> = trials
            .iter()
            .map(|output| match output {
                CellOutput::Boot(ms) => *ms,
                other => unreachable!("{experiment:?} produced {other:?}, expected a boot time"),
            })
            .collect();
        let cdf = Cdf::from_samples(samples).expect("boot entries always produce samples");
        let mut series = Series::new(entry.label);
        for pct in BOOT_PERCENTILES {
            series
                .points
                .push(DataPoint::numeric(pct, cdf.percentile(pct), 0.0));
        }
        fig.series.push(series);
    }
    fig
}

fn merge_hap(experiment: ExperimentId, outputs: &[Vec<CellOutput>]) -> FigureData {
    let mut fig = FigureData::new(experiment);
    let labels = series_labels(experiment);
    let mut distinct_series = Series::new(labels[0]);
    let mut weighted_series = Series::new(labels[1]);
    for (entry, trials) in entries(experiment).iter().zip(outputs) {
        match trials.first() {
            Some(CellOutput::Hap { distinct, weighted }) => {
                distinct_series
                    .points
                    .push(DataPoint::categorical(entry.label, *distinct, 0.0));
                weighted_series
                    .points
                    .push(DataPoint::categorical(entry.label, *weighted, 0.0));
            }
            other => unreachable!("{experiment:?} produced {other:?}, expected a HAP profile"),
        }
    }
    fig.series.push(distinct_series);
    fig.series.push(weighted_series);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> RunConfig {
        RunConfig::quick(7)
    }

    #[test]
    fn every_experiment_has_entries_and_trials() {
        for experiment in ExperimentId::all() {
            assert!(!entries(*experiment).is_empty(), "{experiment:?}");
            assert!(trials(*experiment, &cfg()) >= 1, "{experiment:?}");
        }
    }

    #[test]
    fn entry_labels_are_unique_within_each_experiment() {
        for experiment in ExperimentId::all() {
            let labels: std::collections::BTreeSet<_> = entries(*experiment)
                .iter()
                .map(|entry| entry.label)
                .collect();
            assert_eq!(
                labels.len(),
                entries(*experiment).len(),
                "{experiment:?} has duplicate entry labels"
            );
        }
    }

    #[test]
    fn cells_are_deterministic_and_trial_independent() {
        let experiment = ExperimentId::Fig08Stream;
        let entry = entries(experiment)[0];
        let a = run_cell(experiment, &entry, 3, &cfg());
        let b = run_cell(experiment, &entry, 3, &cfg());
        assert_eq!(a, b);
        let c = run_cell(experiment, &entry, 4, &cfg());
        assert_ne!(a, c, "different trials must sample different streams");
    }

    #[test]
    fn excluded_platforms_skip_their_fio_cells() {
        let experiment = ExperimentId::Fig09FioThroughput;
        let firecracker = entries(experiment)
            .into_iter()
            .find(|entry| entry.platform == PlatformId::Firecracker)
            .unwrap();
        assert_eq!(
            run_cell(experiment, &firecracker, 0, &cfg()),
            CellOutput::Skip
        );
    }

    #[test]
    fn load_experiments_cover_multiple_platform_families() {
        for experiment in [ExperimentId::LoadMemcached, ExperimentId::LoadMysql] {
            let entries = entries(experiment);
            assert!(entries.len() >= 3, "{experiment:?} needs >= 3 platforms");
            let families: std::collections::BTreeSet<_> = entries
                .iter()
                .map(|entry| entry.platform.family())
                .collect();
            assert!(families.len() >= 3, "{experiment:?} families {families:?}");
        }
    }

    #[test]
    fn load_cells_produce_full_sweeps_and_merge_per_metric_series() {
        let experiment = ExperimentId::LoadMemcached;
        let grid_entries = entries(experiment);
        let outputs: Vec<Vec<CellOutput>> = grid_entries
            .iter()
            .map(|entry| vec![run_cell(experiment, entry, 0, &cfg())])
            .collect();
        let sweep_len = match &outputs[0][0] {
            CellOutput::Load(points) => {
                assert!(points.len() >= 5, "load sweep needs >= 5 offered points");
                points.len()
            }
            other => panic!("expected a load sweep, got {other:?}"),
        };
        let fig = merge(experiment, &outputs);
        assert_eq!(fig.series.len(), grid_entries.len() * LOAD_METRICS.len());
        for series in &fig.series {
            assert_eq!(series.points.len(), sweep_len);
        }
        for entry in &grid_entries {
            for metric in LOAD_METRICS {
                assert!(
                    fig.series_named(&format!("{} {metric}", entry.label))
                        .is_some(),
                    "missing series for {} {metric}",
                    entry.label
                );
            }
        }
    }

    #[test]
    fn tenant_cells_produce_full_sweeps_and_merge_per_metric_series() {
        let experiment = ExperimentId::TenantIsolationMemcached;
        let grid_entries = entries(experiment);
        assert!(grid_entries.len() >= 3);
        let entry = &grid_entries[0];
        let outputs = [vec![run_cell(experiment, entry, 0, &cfg())]];
        let sweep_len = match &outputs[0][0] {
            CellOutput::Tenant(points) => {
                assert!(
                    points.len() >= 5,
                    "tenant sweep needs >= 5 aggressor points"
                );
                assert!(
                    points.last().unwrap().aggressor_fraction > 1.0,
                    "the aggressor sweep must reach overload"
                );
                points.len()
            }
            other => panic!("expected a tenant sweep, got {other:?}"),
        };
        let fig = merge(experiment, &outputs[..1]);
        assert_eq!(fig.series.len(), TENANT_METRICS.len());
        for metric in TENANT_METRICS {
            let series = fig
                .series_named(&format!("{} {metric}", entry.label))
                .unwrap_or_else(|| panic!("missing series for {} {metric}", entry.label));
            assert_eq!(series.points.len(), sweep_len);
        }
    }

    #[test]
    fn pipeline_cells_produce_full_sweeps_and_merge_per_metric_series() {
        let experiment = ExperimentId::PipelineMemcached;
        let grid_entries = entries(experiment);
        assert!(grid_entries.len() >= 3);
        let entry = &grid_entries[0];
        let outputs = [vec![run_cell(experiment, entry, 0, &cfg())]];
        let sweep_len = match &outputs[0][0] {
            CellOutput::Pipeline(points) => {
                assert!(
                    points.len() >= 8,
                    "pipeline sweep needs the depth and hit-rate axes"
                );
                assert!(
                    points.iter().any(|p| p.depth == 8),
                    "the depth sweep must reach 8 stages"
                );
                assert!(
                    points.iter().any(|p| p.planned_hit_rate > p.hit_rate + 0.5),
                    "the sweep must include the cache-miss-storm point"
                );
                points.len()
            }
            other => panic!("expected a pipeline sweep, got {other:?}"),
        };
        let fig = merge(experiment, &outputs[..1]);
        assert_eq!(fig.series.len(), PIPELINE_METRICS.len());
        for metric in PIPELINE_METRICS {
            let series = fig
                .series_named(&format!("{} {metric}", entry.label))
                .unwrap_or_else(|| panic!("missing series for {} {metric}", entry.label));
            assert_eq!(series.points.len(), sweep_len);
        }
        assert_eq!(
            platforms_of(&fig, PIPELINE_STAGE_TAX),
            vec![entry.label.to_string()]
        );
    }

    #[test]
    fn cluster_cells_produce_full_sweeps_and_merge_per_metric_series() {
        let experiment = ExperimentId::ClusterMemcached;
        let grid_entries = entries(experiment);
        assert!(grid_entries.len() >= 3);
        let entry = &grid_entries[0];
        let outputs = [vec![run_cell(experiment, entry, 0, &cfg())]];
        let sweep_len = match &outputs[0][0] {
            CellOutput::Cluster(points) => {
                assert!(
                    points.len() >= 8,
                    "cluster sweep needs the shard-count and skew axes"
                );
                assert!(
                    points.iter().any(|p| p.shards == 256),
                    "the shard sweep must reach 256 shards"
                );
                assert!(
                    points.iter().any(|p| p.rebalanced),
                    "the sweep must include the resharding point"
                );
                points.len()
            }
            other => panic!("expected a cluster sweep, got {other:?}"),
        };
        let fig = merge(experiment, &outputs[..1]);
        assert_eq!(fig.series.len(), CLUSTER_METRICS.len());
        for metric in CLUSTER_METRICS {
            let series = fig
                .series_named(&format!("{} {metric}", entry.label))
                .unwrap_or_else(|| panic!("missing series for {} {metric}", entry.label));
            assert_eq!(series.points.len(), sweep_len);
        }
        assert_eq!(
            platforms_of(&fig, CLUSTER_HOT_P99),
            vec![entry.label.to_string()]
        );
    }

    #[test]
    fn failover_cells_produce_full_sweeps_and_merge_per_metric_series() {
        let experiment = ExperimentId::ClusterFailoverMemcached;
        let grid_entries = entries(experiment);
        assert!(grid_entries.len() >= 3);
        let entry = &grid_entries[0];
        let outputs = [vec![run_cell(experiment, entry, 0, &cfg())]];
        let sweep_len = match &outputs[0][0] {
            CellOutput::Cluster(points) => {
                assert!(
                    points.iter().any(|p| p.replicas == 3),
                    "the sweep must reach R=3 replication"
                );
                assert!(
                    points.iter().any(|p| p.fanout == 16),
                    "the scatter axis must reach K=16"
                );
                assert!(
                    points
                        .iter()
                        .any(|p| p.failed_shard >= 0 && p.recover_at_us > 0.0),
                    "the sweep must include a kill-then-recover point"
                );
                points.len()
            }
            other => panic!("expected a cluster sweep, got {other:?}"),
        };
        let fig = merge(experiment, &outputs[..1]);
        assert_eq!(fig.series.len(), FAILOVER_METRICS.len());
        for metric in FAILOVER_METRICS {
            let series = fig
                .series_named(&format!("{} {metric}", entry.label))
                .unwrap_or_else(|| panic!("missing series for {} {metric}", entry.label));
            assert_eq!(series.points.len(), sweep_len);
        }
        assert_eq!(
            platforms_of(&fig, FAILOVER_SCATTER_P99),
            vec![entry.label.to_string()]
        );
    }

    #[test]
    fn merge_preserves_canonical_entry_order() {
        let experiment = ExperimentId::Fig05Ffmpeg;
        let grid_entries = entries(experiment);
        let outputs: Vec<Vec<CellOutput>> = grid_entries
            .iter()
            .map(|entry| {
                (0..2)
                    .map(|trial| run_cell(experiment, entry, trial, &cfg()))
                    .collect()
            })
            .collect();
        let fig = merge(experiment, &outputs);
        let xs: Vec<&str> = fig.series[0].points.iter().map(|p| p.x.as_str()).collect();
        let expected: Vec<&str> = grid_entries.iter().map(|entry| entry.label).collect();
        assert_eq!(xs, expected);
    }
}
