//! # harness
//!
//! The cross-platform isolation benchmark harness — the paper's primary
//! artifact. It wires the workloads to the platform models and regenerates
//! every figure of the evaluation section (Figs. 5–18), producing labelled
//! data series, markdown/CSV reports, and machine-checkable versions of
//! the paper's findings.
//!
//! ```
//! use harness::{ExperimentId, RunConfig};
//!
//! let cfg = RunConfig::quick(42);
//! let fig = harness::figures::run(ExperimentId::Fig11Iperf, &cfg);
//! assert_eq!(fig.experiment, ExperimentId::Fig11Iperf);
//! assert!(!fig.series.is_empty());
//! println!("{}", harness::report::to_markdown(&fig));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod experiment;
pub mod figures;
pub mod findings;
pub mod report;

pub use config::RunConfig;
pub use experiment::{DataPoint, ExperimentId, FigureData, Series};
pub use findings::{check_findings, FindingCheck};
