//! # harness
//!
//! The cross-platform isolation benchmark harness — the paper's primary
//! artifact. It wires the workloads to the platform models and regenerates
//! every figure of the evaluation section (Figs. 5–18), producing labelled
//! data series, markdown/CSV reports, and machine-checkable versions of
//! the paper's findings.
//!
//! ```
//! use harness::{ExperimentId, RunConfig};
//!
//! let cfg = RunConfig::quick(42);
//! let fig = harness::figures::run(ExperimentId::Fig11Iperf, &cfg);
//! assert_eq!(fig.experiment, ExperimentId::Fig11Iperf);
//! assert!(!fig.series.is_empty());
//! println!("{}", harness::report::to_markdown(&fig));
//! ```
//!
//! The same grid runs in parallel through the executor, bit-identically
//! for any worker count:
//!
//! ```
//! use harness::{Executor, ExperimentId, RunConfig, RunPlan};
//!
//! let plan = RunPlan::new(RunConfig::quick(42))
//!     .with_shard("fig11")
//!     .with_workers(2);
//! let report = Executor::new(plan).run();
//! let fig = report.figure(ExperimentId::Fig11Iperf).unwrap();
//! assert_eq!(*fig, harness::figures::run(ExperimentId::Fig11Iperf, &RunConfig::quick(42)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod config;
pub mod executor;
pub mod experiment;
pub mod figures;
pub mod findings;
pub mod grid;
pub mod obs;
pub mod report;

pub use config::RunConfig;
pub use executor::{Executor, RunPlan, RunReport};
pub use experiment::{DataPoint, ExperimentId, FigureData, Series};
pub use findings::{check_findings, check_findings_on, FindingCheck};
