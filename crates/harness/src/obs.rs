//! Traced bench runs: the glue between the deterministic recorder in
//! [`simcore::obs`] and the bench binaries' `--trace` flag.
//!
//! [`traced_run`] drives one representative sweep point of the selected
//! workload with a span recorder attached and returns both export
//! artifacts: the Chrome trace-event JSON (`TRACE_<target>.json`, for
//! `chrome://tracing` / Perfetto) and the windowed-metrics timeline
//! (`BENCH_trace.json`, schema `isolation-bench/obs/v1`). Everything is
//! derived from the root seed — the recorder's sampling seed included —
//! so the artifacts are byte-identical across runs, executor worker
//! counts and cluster core-lane counts.

use platforms::PlatformId;
use simcore::error::SimError;
use simcore::obs::{ObsConfig, Recorder};
use simcore::rng;
use workloads::cluster::{ClusterBenchmark, ClusterSetting};
use workloads::loadgen::LoadgenBenchmark;
use workloads::pipeline::{PipelineBenchmark, PipelineSetting, BASELINE_HIT_RATE};
use workloads::tenancy::TenancyBenchmark;
use workloads::{LoadBackend, SlotPolicy};

/// Span sample rate of the bench binaries' traced runs: high enough
/// that every span kind shows up in a quick sweep, low enough that the
/// ring retains the whole window without overwrites.
pub const TRACE_SAMPLE_RATE: f64 = 0.25;

/// The artifacts of one traced sweep point.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (load in `chrome://tracing` / Perfetto).
    pub chrome: String,
    /// Timeline artifact (schema `isolation-bench/obs/v1`).
    pub timeline: String,
    /// Spans accepted by the recorder, overwritten ones included.
    pub spans_accepted: u64,
}

/// Builds the recorder a traced `target` run uses: sampling seed derived
/// statelessly from the root seed and target label, at
/// [`TRACE_SAMPLE_RATE`].
///
/// # Errors
///
/// Never fails for the constants used here; propagates
/// [`SimError::InvalidConfig`] defensively.
pub fn recorder_for(target: &str, seed: u64) -> Result<Recorder, SimError> {
    Recorder::try_new(ObsConfig::new(
        rng::derive_seed(seed, "obs", target, 0),
        TRACE_SAMPLE_RATE,
    ))
}

/// Runs one traced quick-or-full sweep point of `target` (`"pipeline"`,
/// `"cluster"`, `"tenancy"` or `"loadgen"`) on the Docker platform model
/// and exports both artifacts.
///
/// The pipeline target traces the depth-4 baseline chain (admission
/// wait, per-stage in/out phases, cache hits and misses, short-circuits,
/// slot service); the cluster target traces the 16-shard
/// rebalance-under-churn point (per-shard routing, hand-offs at the
/// reshard boundary, admission and service); the tenancy target traces
/// the victim/bursty-aggressor co-location under DRR at an 0.8
/// aggressor fraction (one lane per tenant); the loadgen target traces
/// the open-loop sweep's 0.8-fraction point. Cluster timelines carry no
/// event-core counter block: those counters are wheel-topology-local and
/// would break byte-identity across core-lane counts.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an unknown target or a
/// degenerate benchmark configuration.
pub fn traced_run(target: &str, quick: bool, seed: u64) -> Result<TraceArtifacts, SimError> {
    let platform = PlatformId::Docker.build();
    let mut run_rng = rng::derive(seed, "trace", target, 0);
    let recorder = recorder_for(target, seed)?;
    let recorder = match target {
        "pipeline" => {
            let bench = if quick {
                PipelineBenchmark::quick(LoadBackend::Memcached)
            } else {
                PipelineBenchmark::new(LoadBackend::Memcached)
            };
            let setting = PipelineSetting::new(4, BASELINE_HIT_RATE);
            let (_, recorder) =
                bench.run_setting_traced(&platform, &setting, &mut run_rng, recorder)?;
            recorder
        }
        "cluster" => {
            let bench = if quick {
                ClusterBenchmark::quick(LoadBackend::Memcached)
            } else {
                ClusterBenchmark::new(LoadBackend::Memcached)
            };
            let setting = ClusterSetting::rebalance(16);
            let (_, recorder) =
                bench.run_setting_traced(&platform, &setting, &mut run_rng, recorder)?;
            recorder
        }
        "tenancy" => {
            let bench = if quick {
                TenancyBenchmark::quick(LoadBackend::Memcached)
            } else {
                TenancyBenchmark::new(LoadBackend::Memcached)
            };
            let mut aggressor = bench.aggressor.clone();
            aggressor.offered_fraction = 0.8;
            let tenants = [bench.victim.clone(), aggressor];
            let (_, recorder) = bench.run_colocated_traced(
                &platform,
                &tenants,
                SlotPolicy::WeightedDrr,
                &mut run_rng,
                recorder,
            )?;
            recorder
        }
        "loadgen" => {
            let bench = if quick {
                LoadgenBenchmark::quick(LoadBackend::Memcached)
            } else {
                LoadgenBenchmark::new(LoadBackend::Memcached)
            };
            let (_, recorder) = bench.run_point_traced(&platform, 0.8, &mut run_rng, recorder)?;
            recorder
        }
        other => {
            return Err(SimError::InvalidConfig(format!(
                "no traced run for target {other:?} (expected \"pipeline\", \"cluster\", \"tenancy\" or \"loadgen\")"
            )))
        }
    };
    Ok(TraceArtifacts {
        chrome: recorder.chrome_trace_json(target),
        timeline: recorder.timeline_json(target, seed),
        spans_accepted: recorder.spans_accepted(),
    })
}

/// The written-to-disk outcome of one bench binary's `--trace` pass.
#[derive(Debug, Clone)]
pub struct TraceEmit {
    /// Path of the Chrome trace-event artifact (`TRACE_<target>.json`).
    pub chrome_path: String,
    /// Path of the timeline artifact (`BENCH_trace_<target>.json`).
    pub timeline_path: String,
    /// Spans accepted by the recorder, overwritten ones included.
    pub spans_accepted: u64,
    /// A non-finite token found in the timeline, if any — the caller
    /// turns this into a bench failure.
    pub non_finite: Option<&'static str>,
}

/// The shared `--trace` pass of the bench binaries: runs the traced
/// sweep point of `target` and writes `TRACE_<target>.json` (Chrome
/// trace events) and `BENCH_trace_<target>.json` (the windowed-metrics
/// timeline) into the working directory.
///
/// # Panics
///
/// Panics if the traced run fails or either artifact cannot be written —
/// a bench binary asked to trace must not silently skip it.
pub fn emit_trace_artifacts(target: &str, quick: bool, seed: u64) -> TraceEmit {
    let trace = traced_run(target, quick, seed)
        .unwrap_or_else(|e| panic!("traced {target} run failed: {e:?}"));
    let chrome_path = format!("TRACE_{target}.json");
    let timeline_path = format!("BENCH_trace_{target}.json");
    std::fs::write(&chrome_path, &trace.chrome)
        .unwrap_or_else(|e| panic!("cannot write {chrome_path}: {e}"));
    std::fs::write(&timeline_path, &trace.timeline)
        .unwrap_or_else(|e| panic!("cannot write {timeline_path}: {e}"));
    TraceEmit {
        chrome_path,
        timeline_path,
        spans_accepted: trace.spans_accepted,
        non_finite: crate::report::find_non_finite(&trace.timeline),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_runs_are_reproducible_and_cover_every_target() {
        for target in ["pipeline", "cluster", "tenancy", "loadgen"] {
            let a = traced_run(target, true, 2021).unwrap();
            let b = traced_run(target, true, 2021).unwrap();
            assert_eq!(a.chrome, b.chrome, "{target}");
            assert_eq!(a.timeline, b.timeline, "{target}");
            assert!(a.spans_accepted > 0, "{target}");
            assert!(a
                .timeline
                .contains("\"schema\": \"isolation-bench/obs/v1\""));
            assert!(a.chrome.contains("\"traceEvents\""));
        }
    }

    #[test]
    fn unknown_targets_are_rejected() {
        assert!(traced_run("no-such", true, 1).is_err());
    }
}
