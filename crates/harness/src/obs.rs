//! Traced bench runs: the glue between the deterministic recorder in
//! [`simcore::obs`] and the bench binaries' `--trace` flag.
//!
//! [`traced_run`] drives one representative sweep point of the selected
//! workload with a span recorder attached and returns both export
//! artifacts: the Chrome trace-event JSON (`TRACE_<target>.json`, for
//! `chrome://tracing` / Perfetto) and the windowed-metrics timeline
//! (`BENCH_trace.json`, schema `isolation-bench/obs/v1`). Everything is
//! derived from the root seed — the recorder's sampling seed included —
//! so the artifacts are byte-identical across runs, executor worker
//! counts and cluster core-lane counts.

use platforms::PlatformId;
use simcore::error::SimError;
use simcore::obs::{ObsConfig, Recorder};
use simcore::rng;
use workloads::cluster::{ClusterBenchmark, ClusterSetting};
use workloads::pipeline::{PipelineBenchmark, PipelineSetting, BASELINE_HIT_RATE};
use workloads::LoadBackend;

/// Span sample rate of the bench binaries' traced runs: high enough
/// that every span kind shows up in a quick sweep, low enough that the
/// ring retains the whole window without overwrites.
pub const TRACE_SAMPLE_RATE: f64 = 0.25;

/// The artifacts of one traced sweep point.
#[derive(Debug, Clone)]
pub struct TraceArtifacts {
    /// Chrome trace-event JSON (load in `chrome://tracing` / Perfetto).
    pub chrome: String,
    /// Timeline artifact (schema `isolation-bench/obs/v1`).
    pub timeline: String,
    /// Spans accepted by the recorder, overwritten ones included.
    pub spans_accepted: u64,
}

/// Builds the recorder a traced `target` run uses: sampling seed derived
/// statelessly from the root seed and target label, at
/// [`TRACE_SAMPLE_RATE`].
///
/// # Errors
///
/// Never fails for the constants used here; propagates
/// [`SimError::InvalidConfig`] defensively.
pub fn recorder_for(target: &str, seed: u64) -> Result<Recorder, SimError> {
    Recorder::try_new(ObsConfig::new(
        rng::derive_seed(seed, "obs", target, 0),
        TRACE_SAMPLE_RATE,
    ))
}

/// Runs one traced quick-or-full sweep point of `target` (`"pipeline"`
/// or `"cluster"`) on the Docker platform model and exports both
/// artifacts.
///
/// The pipeline target traces the depth-4 baseline chain (admission
/// wait, per-stage in/out phases, cache hits and misses, short-circuits,
/// slot service); the cluster target traces the 16-shard
/// rebalance-under-churn point (per-shard routing, hand-offs at the
/// reshard boundary, admission and service). Cluster timelines carry no
/// event-core counter block: those counters are wheel-topology-local and
/// would break byte-identity across core-lane counts.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for an unknown target or a
/// degenerate benchmark configuration.
pub fn traced_run(target: &str, quick: bool, seed: u64) -> Result<TraceArtifacts, SimError> {
    let platform = PlatformId::Docker.build();
    let mut run_rng = rng::derive(seed, "trace", target, 0);
    let recorder = recorder_for(target, seed)?;
    let recorder = match target {
        "pipeline" => {
            let bench = if quick {
                PipelineBenchmark::quick(LoadBackend::Memcached)
            } else {
                PipelineBenchmark::new(LoadBackend::Memcached)
            };
            let setting = PipelineSetting::new(4, BASELINE_HIT_RATE);
            let (_, recorder) =
                bench.run_setting_traced(&platform, &setting, &mut run_rng, recorder)?;
            recorder
        }
        "cluster" => {
            let bench = if quick {
                ClusterBenchmark::quick(LoadBackend::Memcached)
            } else {
                ClusterBenchmark::new(LoadBackend::Memcached)
            };
            let setting = ClusterSetting::rebalance(16);
            let (_, recorder) =
                bench.run_setting_traced(&platform, &setting, &mut run_rng, recorder)?;
            recorder
        }
        other => {
            return Err(SimError::InvalidConfig(format!(
                "no traced run for target {other:?} (expected \"pipeline\" or \"cluster\")"
            )))
        }
    };
    Ok(TraceArtifacts {
        chrome: recorder.chrome_trace_json(target),
        timeline: recorder.timeline_json(target, seed),
        spans_accepted: recorder.spans_accepted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traced_runs_are_reproducible_and_cover_both_targets() {
        for target in ["pipeline", "cluster"] {
            let a = traced_run(target, true, 2021).unwrap();
            let b = traced_run(target, true, 2021).unwrap();
            assert_eq!(a.chrome, b.chrome, "{target}");
            assert_eq!(a.timeline, b.timeline, "{target}");
            assert!(a.spans_accepted > 0, "{target}");
            assert!(a
                .timeline
                .contains("\"schema\": \"isolation-bench/obs/v1\""));
            assert!(a.chrome.contains("\"traceEvents\""));
        }
    }

    #[test]
    fn unknown_targets_are_rejected() {
        assert!(traced_run("no-such", true, 1).is_err());
    }
}
