//! Rendering figure data as markdown tables and CSV.

use std::fmt::Write as _;

use crate::experiment::FigureData;

/// Renders a figure as a GitHub-flavoured markdown table (one row per x
/// value, one mean/std column pair per series).
pub fn to_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}", fig.title);
    let _ = writeln!(out);
    let mut header = String::from("| x |");
    let mut rule = String::from("|---|");
    for s in &fig.series {
        let _ = write!(header, " {} (mean) | {} (std) |", s.label, s.label);
        rule.push_str("---|---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let xs: Vec<String> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x.clone()).collect())
        .unwrap_or_default();
    for x in xs {
        let mut row = format!("| {x} |");
        for s in &fig.series {
            match s.points.iter().find(|p| p.x == x) {
                Some(p) => {
                    let _ = write!(row, " {:.2} | {:.2} |", p.mean, p.std_dev);
                }
                None => row.push_str(" - | - |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders a figure as CSV (`series,x,x_value,mean,std_dev`).
pub fn to_csv(fig: &FigureData) -> String {
    let mut out = String::from("series,x,x_value,mean,std_dev\n");
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                s.label.replace(',', ";"),
                p.x.replace(',', ";"),
                p.x_value,
                p.mean,
                p.std_dev
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{DataPoint, ExperimentId, Series};

    fn sample_fig() -> FigureData {
        let mut fig = FigureData::new(ExperimentId::Fig11Iperf);
        let mut s = Series::new("throughput");
        s.points.push(DataPoint::categorical("native", 37.28, 0.2));
        s.points.push(DataPoint::categorical("gvisor", 5.1, 0.4));
        fig.series.push(s);
        fig
    }

    #[test]
    fn markdown_contains_title_rows_and_values() {
        let md = to_markdown(&sample_fig());
        assert!(md.contains("### Fig. 11"));
        assert!(md.contains("| native | 37.28 | 0.20 |"));
        assert!(md.contains("| gvisor | 5.10 | 0.40 |"));
    }

    #[test]
    fn csv_has_header_and_one_line_per_point() {
        let csv = to_csv(&sample_fig());
        let lines: Vec<_> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,"));
        assert!(lines[1].contains("native"));
    }
}
