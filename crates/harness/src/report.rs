//! Rendering figure data as markdown tables and CSV, plus the executor's
//! wall-clock summary table and the machine-readable full-grid bench
//! report (`BENCH_full_grid.json`).

use std::fmt::Write as _;

use crate::executor::RunReport;
use crate::experiment::FigureData;

/// Renders a figure as a GitHub-flavoured markdown table (one row per x
/// value, one mean/std column pair per series).
pub fn to_markdown(fig: &FigureData) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "### {}", fig.title);
    let _ = writeln!(out);
    let mut header = String::from("| x |");
    let mut rule = String::from("|---|");
    for s in &fig.series {
        let _ = write!(header, " {} (mean) | {} (std) |", s.label, s.label);
        rule.push_str("---|---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    let xs: Vec<String> = fig
        .series
        .first()
        .map(|s| s.points.iter().map(|p| p.x.clone()).collect())
        .unwrap_or_default();
    for x in xs {
        let mut row = format!("| {x} |");
        for s in &fig.series {
            match s.points.iter().find(|p| p.x == x) {
                Some(p) => {
                    let _ = write!(row, " {:.2} | {:.2} |", p.mean, p.std_dev);
                }
                None => row.push_str(" - | - |"),
            }
        }
        let _ = writeln!(out, "{row}");
    }
    out
}

/// Renders a figure as CSV (`series,x,x_value,mean,std_dev`).
pub fn to_csv(fig: &FigureData) -> String {
    let mut out = String::from("series,x,x_value,mean,std_dev\n");
    for s in &fig.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                s.label.replace(',', ";"),
                p.x.replace(',', ";"),
                p.x_value,
                p.mean,
                p.std_dev
            );
        }
    }
    out
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders an executor run's per-experiment wall-clock summary as a
/// markdown table.
///
/// `cell time` is the time spent inside the experiment's cells summed
/// across workers; `merge` is the single-threaded canonical fold of cell
/// outputs into figures; the headline total is the run's elapsed wall
/// clock.
pub fn timing_table(report: &RunReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### Wall-clock summary ({} workers, {:.0} ms wall, {:.0} ms cell time, {:.2} ms merge)",
        report.workers,
        ms(report.wall),
        ms(report.total_cell_time()),
        ms(report.merge),
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "| experiment | cells | cell time (ms) |");
    let _ = writeln!(out, "|---|---|---|");
    for timing in &report.timings {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1} |",
            timing.experiment.slug(),
            timing.cells,
            ms(timing.cell_time),
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Opens a bench-report JSON object with the header fields every report
/// shares: schema identifier, mode, seed, worker counts and wall clocks.
fn json_report_header(
    schema: &str,
    mode: &str,
    seed: u64,
    serial: &RunReport,
    parallel: &RunReport,
) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": \"{}\",", json_escape(schema));
    let _ = writeln!(out, "  \"mode\": \"{}\",", json_escape(mode));
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"serial_workers\": {},", serial.workers);
    let _ = writeln!(out, "  \"parallel_workers\": {},", parallel.workers);
    let _ = writeln!(out, "  \"serial_wall_ms\": {:.3},", ms(serial.wall));
    let _ = writeln!(out, "  \"parallel_wall_ms\": {:.3},", ms(parallel.wall));
    out
}

/// Renders the machine-readable full-grid bench report comparing a serial
/// (1-worker) run against an N-worker run of the same plan.
///
/// This is the payload of `BENCH_full_grid.json`: per-experiment cell
/// counts and wall-clock (cell-time) numbers plus run totals, emitted
/// without any serialization dependency so CI can parse and archive it.
pub fn full_grid_json(mode: &str, seed: u64, serial: &RunReport, parallel: &RunReport) -> String {
    let mut out = json_report_header("isolation-bench/full-grid/v1", mode, seed, serial, parallel);
    let _ = writeln!(out, "  \"serial_merge_ms\": {:.3},", ms(serial.merge));
    let _ = writeln!(out, "  \"parallel_merge_ms\": {:.3},", ms(parallel.merge));
    let speedup = if parallel.wall.as_secs_f64() > 0.0 {
        serial.wall.as_secs_f64() / parallel.wall.as_secs_f64()
    } else {
        0.0
    };
    let _ = writeln!(out, "  \"speedup\": {speedup:.3},");
    let _ = writeln!(
        out,
        "  \"experiment_count\": {},",
        crate::experiment::ExperimentId::all().len()
    );
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, timing) in serial.timings.iter().enumerate() {
        let parallel_timing = parallel
            .timings
            .iter()
            .find(|t| t.experiment == timing.experiment);
        let points: usize = serial
            .figure(timing.experiment)
            .map(|fig| fig.series.iter().map(|s| s.points.len()).sum())
            .unwrap_or(0);
        let _ = write!(
            out,
            "    {{\"slug\": \"{}\", \"cells\": {}, \"points\": {}, \"serial_ms\": {:.3}, \"parallel_ms\": {:.3}}}",
            json_escape(timing.experiment.slug()),
            timing.cells,
            points,
            ms(timing.cell_time),
            parallel_timing.map(|t| ms(t.cell_time)).unwrap_or(0.0),
        );
        let _ = writeln!(
            out,
            "{}",
            if i + 1 < serial.timings.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Scans hand-rolled JSON for non-finite number tokens (`NaN`, `inf`,
/// `-inf`), which `{}`-formatted `f64`s produce and which are not valid
/// JSON. Returns the offending token when one is found.
///
/// The bench binaries gate their emitted reports on this, so CI fails
/// loudly the moment an experiment leaks a non-finite statistic.
pub fn find_non_finite(json: &str) -> Option<&'static str> {
    for token in ["NaN", "inf"] {
        // `inf` must match as a bare token, not as a substring of a quoted
        // label (e.g. "infra"); scan outside string literals only.
        let mut in_string = false;
        let mut escaped = false;
        let bytes = json.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_string = false;
                }
                continue;
            }
            if b == b'"' {
                in_string = true;
                continue;
            }
            if json[i..].starts_with(token) {
                return Some(token);
            }
        }
    }
    None
}

/// Derives the hockey-stick view of a load-curve figure: one series per
/// platform with **achieved throughput on the x axis** and the p99
/// sojourn time as the value, so the knee of the curve (where latency
/// departs from the near-flat region) is directly visible. The derived
/// figure renders through [`to_markdown`]/[`to_csv`] like any other.
pub fn hockey_stick(fig: &FigureData) -> FigureData {
    let platforms = crate::grid::platforms_of(fig, crate::grid::LOAD_P50);
    let mut out = FigureData::new(fig.experiment);
    out.title = format!("{} — p99 vs achieved throughput", fig.title);
    for platform in platforms {
        let achieved = fig
            .series_named(&format!("{platform} {}", crate::grid::LOAD_ACHIEVED))
            .expect("achieved series exists for every load platform");
        let p99 = fig
            .series_named(&format!("{platform} {}", crate::grid::LOAD_P99))
            .expect("p99 series exists for every load platform");
        let mut series = crate::experiment::Series::new(&format!("{platform} p99 (us)"));
        for (a, p) in achieved.points.iter().zip(&p99.points) {
            series.points.push(crate::experiment::DataPoint {
                x: format!("{:.0}", a.mean),
                x_value: a.mean,
                mean: p.mean,
                std_dev: p.std_dev,
            });
        }
        out.series.push(series);
    }
    out
}

/// The figure-level payload of one load-curve experiment: per-platform
/// offered-load sweeps with percentile latencies and achieved throughput,
/// reconstructed from the merged figure series.
fn load_experiment_json(out: &mut String, fig: &FigureData) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"slug\": \"{}\",", fig.experiment.slug());
    let platforms = crate::grid::platforms_of(fig, crate::grid::LOAD_P50);
    let _ = writeln!(out, "      \"platforms\": [");
    for (pi, platform) in platforms.iter().enumerate() {
        let series = |metric: &str| fig.series_named(&format!("{platform} {metric}"));
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"label\": \"{}\",", json_escape(platform));
        let _ = writeln!(out, "          \"points\": [");
        let p50 = series(crate::grid::LOAD_P50).expect("p50 series exists by construction");
        for (i, point) in p50.points.iter().enumerate() {
            // Panic (rather than emit a plausible 0.0) on a missing series
            // or point: a malformed figure must fail the bench run loudly.
            let metric_mean = |metric: &str| {
                series(metric)
                    .unwrap_or_else(|| panic!("{} series missing for {platform}", metric))
                    .points[i]
                    .mean
            };
            let _ = write!(
                out,
                "            {{\"fraction\": {:.2}, \"p50_us\": {:.3}, \"p95_us\": {:.3}, \"p99_us\": {:.3}, \"achieved_per_sec\": {:.3}}}",
                point.x_value,
                point.mean,
                metric_mean(crate::grid::LOAD_P95),
                metric_mean(crate::grid::LOAD_P99),
                metric_mean(crate::grid::LOAD_ACHIEVED),
            );
            let _ = writeln!(out, "{}", if i + 1 < p50.points.len() { "," } else { "" });
        }
        let _ = writeln!(out, "          ]");
        let _ = write!(out, "        }}");
        let _ = writeln!(out, "{}", if pi + 1 < platforms.len() { "," } else { "" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
}

/// Renders the machine-readable load-curve bench report
/// (`BENCH_load_curves.json`): the open-loop throughput-vs-latency sweeps
/// of both backends, from a serial (1-worker) and an N-worker run of the
/// same plan, plus whether the two produced identical figure data.
pub fn load_curves_json(mode: &str, seed: u64, serial: &RunReport, parallel: &RunReport) -> String {
    let load_figs = |report: &RunReport| {
        [
            crate::experiment::ExperimentId::LoadMemcached,
            crate::experiment::ExperimentId::LoadMysql,
        ]
        .iter()
        .filter_map(|e| report.figure(*e).cloned())
        .collect::<Vec<_>>()
    };
    let serial_figs = load_figs(serial);
    let parallel_figs = load_figs(parallel);
    let identical = serial_figs == parallel_figs;

    let mut out = json_report_header(
        "isolation-bench/load-curves/v1",
        mode,
        seed,
        serial,
        parallel,
    );
    let _ = writeln!(out, "  \"identical\": {identical},");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, fig) in serial_figs.iter().enumerate() {
        load_experiment_json(&mut out, fig);
        let _ = writeln!(out, "{}", if i + 1 < serial_figs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// The figure-level payload of one tenant-isolation experiment:
/// per-platform aggressor sweeps with the victim's and aggressor's
/// percentile/SLO/drop series plus the isolation diagnostics,
/// reconstructed from the merged figure series.
fn tenant_experiment_json(out: &mut String, fig: &FigureData) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"slug\": \"{}\",", fig.experiment.slug());
    let platforms = crate::grid::platforms_of(fig, crate::grid::TENANT_VICTIM_P99);
    let _ = writeln!(out, "      \"platforms\": [");
    for (pi, platform) in platforms.iter().enumerate() {
        let series = |metric: &str| fig.series_named(&format!("{platform} {metric}"));
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"label\": \"{}\",", json_escape(platform));
        let _ = writeln!(out, "          \"points\": [");
        let anchor = series(crate::grid::TENANT_VICTIM_P99)
            .expect("victim p99 series exists by construction");
        for (i, point) in anchor.points.iter().enumerate() {
            // Panic (rather than emit a plausible 0.0) on a missing series
            // or point: a malformed figure must fail the bench run loudly.
            let metric_mean = |metric: &str| {
                series(metric)
                    .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                    .points[i]
                    .mean
            };
            let _ = write!(
                out,
                "            {{\"aggressor_fraction\": {:.2}, \
                 \"victim_p50_us\": {:.3}, \"victim_p95_us\": {:.3}, \"victim_p99_us\": {:.3}, \
                 \"victim_achieved_per_sec\": {:.3}, \"victim_drop_rate\": {:.6}, \
                 \"victim_slo_violation\": {:.6}, \"victim_solo_p99_us\": {:.3}, \
                 \"victim_fifo_p99_us\": {:.3}, \"isolation_index\": {:.4}, \
                 \"aggressor_p50_us\": {:.3}, \"aggressor_p95_us\": {:.3}, \
                 \"aggressor_p99_us\": {:.3}, \"aggressor_achieved_per_sec\": {:.3}, \
                 \"aggressor_drop_rate\": {:.6}}}",
                point.x_value,
                metric_mean(crate::grid::TENANT_VICTIM_P50),
                metric_mean(crate::grid::TENANT_VICTIM_P95),
                point.mean,
                metric_mean(crate::grid::TENANT_VICTIM_ACHIEVED),
                metric_mean(crate::grid::TENANT_VICTIM_DROP_RATE),
                metric_mean(crate::grid::TENANT_VICTIM_SLO_VIOLATION),
                metric_mean(crate::grid::TENANT_VICTIM_SOLO_P99),
                metric_mean(crate::grid::TENANT_VICTIM_FIFO_P99),
                metric_mean(crate::grid::TENANT_ISOLATION_INDEX),
                metric_mean(crate::grid::TENANT_AGGRESSOR_P50),
                metric_mean(crate::grid::TENANT_AGGRESSOR_P95),
                metric_mean(crate::grid::TENANT_AGGRESSOR_P99),
                metric_mean(crate::grid::TENANT_AGGRESSOR_ACHIEVED),
                metric_mean(crate::grid::TENANT_AGGRESSOR_DROP_RATE),
            );
            let _ = writeln!(
                out,
                "{}",
                if i + 1 < anchor.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "          ]");
        let _ = write!(out, "        }}");
        let _ = writeln!(out, "{}", if pi + 1 < platforms.len() { "," } else { "" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
}

/// Renders the machine-readable tenant-isolation bench report
/// (`BENCH_tenant_isolation.json`): the victim-vs-aggressor co-location
/// sweeps of both backends, from a serial (1-worker) and an N-worker run
/// of the same plan, plus whether the two produced identical figure data.
pub fn tenant_isolation_json(
    mode: &str,
    seed: u64,
    serial: &RunReport,
    parallel: &RunReport,
) -> String {
    let tenant_figs = |report: &RunReport| {
        [
            crate::experiment::ExperimentId::TenantIsolationMemcached,
            crate::experiment::ExperimentId::TenantIsolationMysql,
        ]
        .iter()
        .filter_map(|e| report.figure(*e).cloned())
        .collect::<Vec<_>>()
    };
    let serial_figs = tenant_figs(serial);
    let parallel_figs = tenant_figs(parallel);
    let identical = serial_figs == parallel_figs;

    let mut out = json_report_header(
        "isolation-bench/tenant-isolation/v1",
        mode,
        seed,
        serial,
        parallel,
    );
    let _ = writeln!(out, "  \"identical\": {identical},");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, fig) in serial_figs.iter().enumerate() {
        tenant_experiment_json(&mut out, fig);
        let _ = writeln!(out, "{}", if i + 1 < serial_figs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// The figure-level payload of one middleware-pipeline experiment:
/// per-platform sweep points (chain depth × cache hit rate) with sojourn
/// percentiles, the per-request stage tax, and the short-circuit /
/// cache-hit / drop fractions, reconstructed from the merged figure
/// series.
fn pipeline_experiment_json(out: &mut String, fig: &FigureData) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"slug\": \"{}\",", fig.experiment.slug());
    let platforms = crate::grid::platforms_of(fig, crate::grid::PIPELINE_STAGE_TAX);
    let _ = writeln!(out, "      \"platforms\": [");
    for (pi, platform) in platforms.iter().enumerate() {
        let series = |metric: &str| fig.series_named(&format!("{platform} {metric}"));
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"label\": \"{}\",", json_escape(platform));
        let _ = writeln!(out, "          \"points\": [");
        let anchor = series(crate::grid::PIPELINE_P50).expect("p50 series exists by construction");
        for (i, point) in anchor.points.iter().enumerate() {
            // Panic (rather than emit a plausible 0.0) on a missing series
            // or point: a malformed figure must fail the bench run loudly.
            let metric_mean = |metric: &str| {
                series(metric)
                    .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                    .points[i]
                    .mean
            };
            let _ = write!(
                out,
                "            {{\"setting\": \"{}\", \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"stage_tax_us\": {:.3}, \"short_circuit_fraction\": {:.6}, \
                 \"cache_hit_fraction\": {:.6}, \"drop_fraction\": {:.6}}}",
                json_escape(&point.x),
                point.mean,
                metric_mean(crate::grid::PIPELINE_P99),
                metric_mean(crate::grid::PIPELINE_STAGE_TAX),
                metric_mean(crate::grid::PIPELINE_SHORT_CIRCUIT),
                metric_mean(crate::grid::PIPELINE_CACHE_HIT),
                metric_mean(crate::grid::PIPELINE_DROP_RATE),
            );
            let _ = writeln!(
                out,
                "{}",
                if i + 1 < anchor.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "          ]");
        let _ = write!(out, "        }}");
        let _ = writeln!(out, "{}", if pi + 1 < platforms.len() { "," } else { "" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
}

/// Renders the machine-readable middleware-pipeline bench report
/// (`BENCH_pipeline.json`): the depth × cache-hit-rate sweeps of both
/// backends, from a serial (1-worker) and an N-worker run of the same
/// plan, plus whether the two produced identical figure data.
pub fn pipeline_json(mode: &str, seed: u64, serial: &RunReport, parallel: &RunReport) -> String {
    let pipeline_figs = |report: &RunReport| {
        [
            crate::experiment::ExperimentId::PipelineMemcached,
            crate::experiment::ExperimentId::PipelineMysql,
        ]
        .iter()
        .filter_map(|e| report.figure(*e).cloned())
        .collect::<Vec<_>>()
    };
    let serial_figs = pipeline_figs(serial);
    let parallel_figs = pipeline_figs(parallel);
    let identical = serial_figs == parallel_figs;

    let mut out = json_report_header("isolation-bench/pipeline/v1", mode, seed, serial, parallel);
    let _ = writeln!(out, "  \"identical\": {identical},");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, fig) in serial_figs.iter().enumerate() {
        pipeline_experiment_json(&mut out, fig);
        let _ = writeln!(out, "{}", if i + 1 < serial_figs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// The figure-level payload of one sharded-cluster experiment:
/// per-platform sweep points (shard count × Zipf skew × routing policy)
/// with cluster-wide sojourn percentiles, the hottest shard's tail, the
/// steady-phase imbalance, and the achieved/drop behaviour,
/// reconstructed from the merged figure series.
fn cluster_experiment_json(out: &mut String, fig: &FigureData) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"slug\": \"{}\",", fig.experiment.slug());
    let platforms = crate::grid::platforms_of(fig, crate::grid::CLUSTER_HOT_P99);
    let _ = writeln!(out, "      \"platforms\": [");
    for (pi, platform) in platforms.iter().enumerate() {
        let series = |metric: &str| fig.series_named(&format!("{platform} {metric}"));
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"label\": \"{}\",", json_escape(platform));
        let _ = writeln!(out, "          \"points\": [");
        let anchor = series(crate::grid::CLUSTER_P50).expect("p50 series exists by construction");
        for (i, point) in anchor.points.iter().enumerate() {
            // Panic (rather than emit a plausible 0.0) on a missing series
            // or point: a malformed figure must fail the bench run loudly.
            let metric_mean = |metric: &str| {
                series(metric)
                    .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                    .points[i]
                    .mean
            };
            let _ = write!(
                out,
                "            {{\"setting\": \"{}\", \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"hot_shard_p99_us\": {:.3}, \"imbalance\": {:.4}, \
                 \"achieved_per_sec\": {:.3}, \"drop_fraction\": {:.6}}}",
                json_escape(&point.x),
                point.mean,
                metric_mean(crate::grid::CLUSTER_P99),
                metric_mean(crate::grid::CLUSTER_HOT_P99),
                metric_mean(crate::grid::CLUSTER_IMBALANCE),
                metric_mean(crate::grid::CLUSTER_ACHIEVED),
                metric_mean(crate::grid::CLUSTER_DROP_RATE),
            );
            let _ = writeln!(
                out,
                "{}",
                if i + 1 < anchor.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "          ]");
        let _ = write!(out, "        }}");
        let _ = writeln!(out, "{}", if pi + 1 < platforms.len() { "," } else { "" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
}

/// One point of the cluster bench's shard-core scaling curve: the same
/// sweep replayed with the shards multiplexed onto a different number of
/// event-core lanes, with its wall clock, event throughput, and whether
/// its points matched the 1-core reference exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardCoreScaling {
    /// Event-core lanes the shards were multiplexed onto.
    pub cores: usize,
    /// Wall clock of the sweep at this lane count, in milliseconds.
    pub wall_ms: f64,
    /// Simulation events processed per wall-clock second.
    pub events_per_sec: f64,
    /// Whether every sweep point matched the 1-core run bit-for-bit.
    pub identical: bool,
}

/// Renders the machine-readable sharded-cluster bench report
/// (`BENCH_cluster.json`): the shard-count × skew × routing sweeps of
/// both backends, from a serial (1-worker) and an N-worker run of the
/// same plan, whether the two produced identical figure data, and the
/// shard-core scaling curve attesting lane-count invariance.
pub fn cluster_json(
    mode: &str,
    seed: u64,
    serial: &RunReport,
    parallel: &RunReport,
    scaling: &[ShardCoreScaling],
) -> String {
    let cluster_figs = |report: &RunReport| {
        [
            crate::experiment::ExperimentId::ClusterMemcached,
            crate::experiment::ExperimentId::ClusterMysql,
        ]
        .iter()
        .filter_map(|e| report.figure(*e).cloned())
        .collect::<Vec<_>>()
    };
    let serial_figs = cluster_figs(serial);
    let parallel_figs = cluster_figs(parallel);
    let identical = serial_figs == parallel_figs;

    let mut out = json_report_header("isolation-bench/cluster/v1", mode, seed, serial, parallel);
    let _ = writeln!(out, "  \"identical\": {identical},");
    let _ = writeln!(out, "  \"shard_core_scaling\": [");
    for (i, point) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cores\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.1}, \"identical\": {}}}",
            point.cores, point.wall_ms, point.events_per_sec, point.identical,
        );
        let _ = writeln!(out, "{}", if i + 1 < scaling.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, fig) in serial_figs.iter().enumerate() {
        cluster_experiment_json(&mut out, fig);
        let _ = writeln!(out, "{}", if i + 1 < serial_figs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// The figure-level payload of one replication/failover experiment:
/// per-platform sweep points (replication factor × write quorum ×
/// scatter fan-out × fault scenario) with sojourn percentiles, the
/// scatter-gather tail, sloppy-quorum hand-offs, the failure instant and
/// the failure-phase drop rates, reconstructed from the merged figure
/// series.
fn failover_experiment_json(out: &mut String, fig: &FigureData) {
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"slug\": \"{}\",", fig.experiment.slug());
    let platforms = crate::grid::platforms_of(fig, crate::grid::FAILOVER_SCATTER_P99);
    let _ = writeln!(out, "      \"platforms\": [");
    for (pi, platform) in platforms.iter().enumerate() {
        let series = |metric: &str| fig.series_named(&format!("{platform} {metric}"));
        let _ = writeln!(out, "        {{");
        let _ = writeln!(out, "          \"label\": \"{}\",", json_escape(platform));
        let _ = writeln!(out, "          \"points\": [");
        let anchor = series(crate::grid::CLUSTER_P50).expect("p50 series exists by construction");
        for (i, point) in anchor.points.iter().enumerate() {
            // Panic (rather than emit a plausible 0.0) on a missing series
            // or point: a malformed figure must fail the bench run loudly.
            let metric_mean = |metric: &str| {
                series(metric)
                    .unwrap_or_else(|| panic!("{metric} series missing for {platform}"))
                    .points[i]
                    .mean
            };
            let _ = write!(
                out,
                "            {{\"setting\": \"{}\", \"p50_us\": {:.3}, \"p99_us\": {:.3}, \
                 \"scatter_p99_us\": {:.3}, \"drop_fraction\": {:.6}, \"handoffs\": {:.3}, \
                 \"fail_at_us\": {:.3}, \"pre_fail_drop_rate\": {:.6}, \
                 \"fail_window_drop_rate\": {:.6}, \"post_recover_drop_rate\": {:.6}}}",
                json_escape(&point.x),
                point.mean,
                metric_mean(crate::grid::CLUSTER_P99),
                metric_mean(crate::grid::FAILOVER_SCATTER_P99),
                metric_mean(crate::grid::CLUSTER_DROP_RATE),
                metric_mean(crate::grid::FAILOVER_HANDOFFS),
                metric_mean(crate::grid::FAILOVER_FAIL_AT),
                metric_mean(crate::grid::FAILOVER_PRE_DROP),
                metric_mean(crate::grid::FAILOVER_WINDOW_DROP),
                metric_mean(crate::grid::FAILOVER_POST_DROP),
            );
            let _ = writeln!(
                out,
                "{}",
                if i + 1 < anchor.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "          ]");
        let _ = write!(out, "        }}");
        let _ = writeln!(out, "{}", if pi + 1 < platforms.len() { "," } else { "" });
    }
    let _ = writeln!(out, "      ]");
    let _ = write!(out, "    }}");
}

/// The determinism and physics attestations the failover bench computes
/// before emitting `BENCH_cluster_failover.json`; each one also gates the
/// binary's exit status, so a `false` here can only appear in a report
/// from a run that failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverAttestation {
    /// The R=1 quorum sweep replayed PR 7's plain single-shard routing
    /// bit-for-bit.
    pub r1_matches_plain: bool,
    /// The platform-averaged scatter p99 was monotone non-decreasing in
    /// the fan-out K on every backend.
    pub scatter_p99_monotone: bool,
    /// Every kill-then-recover point's post-recovery drop rate returned
    /// to within the pre-failure band.
    pub spike_subsides: bool,
}

/// Renders the machine-readable replication/failover bench report
/// (`BENCH_cluster_failover.json`): the R/W-quorum × fan-out ×
/// fault-scenario sweeps of both backends, from a serial (1-worker) and
/// an N-worker run of the same plan, whether the two produced identical
/// figure data, the shard-core scaling curve attesting lane-count
/// invariance, and the failover attestations.
pub fn cluster_failover_json(
    mode: &str,
    seed: u64,
    serial: &RunReport,
    parallel: &RunReport,
    scaling: &[ShardCoreScaling],
    attest: &FailoverAttestation,
) -> String {
    let failover_figs = |report: &RunReport| {
        [
            crate::experiment::ExperimentId::ClusterFailoverMemcached,
            crate::experiment::ExperimentId::ClusterFailoverMysql,
        ]
        .iter()
        .filter_map(|e| report.figure(*e).cloned())
        .collect::<Vec<_>>()
    };
    let serial_figs = failover_figs(serial);
    let parallel_figs = failover_figs(parallel);
    let identical = serial_figs == parallel_figs;

    let mut out = json_report_header(
        "isolation-bench/cluster-failover/v1",
        mode,
        seed,
        serial,
        parallel,
    );
    let _ = writeln!(out, "  \"identical\": {identical},");
    let _ = writeln!(out, "  \"r1_matches_plain\": {},", attest.r1_matches_plain);
    let _ = writeln!(
        out,
        "  \"scatter_p99_monotone\": {},",
        attest.scatter_p99_monotone
    );
    let _ = writeln!(out, "  \"spike_subsides\": {},", attest.spike_subsides);
    let _ = writeln!(out, "  \"shard_core_scaling\": [");
    for (i, point) in scaling.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cores\": {}, \"wall_ms\": {:.3}, \"events_per_sec\": {:.1}, \"identical\": {}}}",
            point.cores, point.wall_ms, point.events_per_sec, point.identical,
        );
        let _ = writeln!(out, "{}", if i + 1 < scaling.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, fig) in serial_figs.iter().enumerate() {
        failover_experiment_json(&mut out, fig);
        let _ = writeln!(out, "{}", if i + 1 < serial_figs.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RunConfig;
    use crate::executor::{Executor, RunPlan};
    use crate::experiment::{DataPoint, ExperimentId, Series};

    fn sample_fig() -> FigureData {
        let mut fig = FigureData::new(ExperimentId::Fig11Iperf);
        let mut s = Series::new("throughput");
        s.points.push(DataPoint::categorical("native", 37.28, 0.2));
        s.points.push(DataPoint::categorical("gvisor", 5.1, 0.4));
        fig.series.push(s);
        fig
    }

    #[test]
    fn markdown_contains_title_rows_and_values() {
        let md = to_markdown(&sample_fig());
        assert!(md.contains("### Fig. 11"));
        assert!(md.contains("| native | 37.28 | 0.20 |"));
        assert!(md.contains("| gvisor | 5.10 | 0.40 |"));
    }

    #[test]
    fn csv_has_header_and_one_line_per_point() {
        let csv = to_csv(&sample_fig());
        let lines: Vec<_> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("series,"));
        assert!(lines[1].contains("native"));
    }

    fn tiny_reports() -> (RunReport, RunReport) {
        let cfg = RunConfig {
            seed: 7,
            runs: 2,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(RunPlan::new(cfg).with_shard("fig08").with_workers(1)).run();
        let parallel = Executor::new(RunPlan::new(cfg).with_shard("fig08").with_workers(2)).run();
        (serial, parallel)
    }

    #[test]
    fn timing_table_lists_every_experiment() {
        let (serial, _) = tiny_reports();
        let table = timing_table(&serial);
        assert!(table.contains("### Wall-clock summary (1 workers"));
        assert!(table.contains("ms merge)"));
        assert!(table.contains("| fig08_stream | 20 |"));
    }

    #[test]
    fn full_grid_json_is_complete_and_escaped() {
        let (serial, parallel) = tiny_reports();
        let json = full_grid_json("quick", 7, &serial, &parallel);
        assert!(json.contains("\"schema\": \"isolation-bench/full-grid/v1\""));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("\"serial_merge_ms\": "));
        assert!(json.contains("\"parallel_merge_ms\": "));
        assert!(json.contains("\"slug\": \"fig08_stream\""));
        assert!(json.contains("\"cells\": 20"));
        assert!(json.contains("\"points\": 10"));
        assert_eq!(json.matches("\"slug\"").count(), serial.timings.len());
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }

    #[test]
    fn non_finite_detector_ignores_strings_but_catches_values() {
        assert_eq!(find_non_finite("{\"x\": 1.5}"), None);
        assert_eq!(find_non_finite("{\"label\": \"NaN-proof infra\"}"), None);
        assert_eq!(find_non_finite("{\"x\": NaN}"), Some("NaN"));
        assert_eq!(find_non_finite("{\"x\": inf}"), Some("inf"));
        assert_eq!(find_non_finite("{\"x\": -inf}"), Some("inf"));
        assert_eq!(
            find_non_finite(&format!("{{\"x\": {}}}", f64::NAN)),
            Some("NaN")
        );
    }

    #[test]
    fn load_curves_json_has_both_experiments_and_is_finite() {
        let cfg = RunConfig {
            seed: 7,
            runs: 2,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(RunPlan::new(cfg).with_shard("load_").with_workers(1)).run();
        let parallel = Executor::new(RunPlan::new(cfg).with_shard("load_").with_workers(2)).run();
        let json = load_curves_json("quick", 7, &serial, &parallel);
        assert!(json.contains("\"schema\": \"isolation-bench/load-curves/v1\""));
        assert!(json.contains("\"slug\": \"load_memcached\""));
        assert!(json.contains("\"slug\": \"load_mysql\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"label\": \"native\""));
        assert!(json.contains("\"p99_us\""));
        assert_eq!(find_non_finite(&json), None, "emitted JSON must be finite");
    }

    #[test]
    fn hockey_stick_puts_achieved_throughput_on_the_x_axis() {
        let cfg = RunConfig {
            seed: 7,
            runs: 1,
            startups: 8,
            quick: true,
        };
        let fig = crate::figures::run(ExperimentId::LoadMemcached, &cfg);
        let stick = hockey_stick(&fig);
        assert!(stick.title.contains("p99 vs achieved throughput"));
        assert_eq!(
            stick.series.len(),
            fig.series.len() / crate::grid::LOAD_METRICS.len(),
            "one hockey-stick series per platform"
        );
        for series in &stick.series {
            assert!(series.label.ends_with("p99 (us)"));
            let achieved = crate::experiment::FigureData {
                experiment: fig.experiment,
                title: String::new(),
                series: fig.series.clone(),
            };
            let platform = series.label.trim_end_matches(" p99 (us)");
            let source = achieved
                .series_named(&format!("{platform} {}", crate::grid::LOAD_ACHIEVED))
                .unwrap();
            for (point, src) in series.points.iter().zip(&source.points) {
                assert_eq!(point.x_value, src.mean, "x must be achieved throughput");
                assert!(point.mean > 0.0);
            }
            // The x axis (achieved throughput) grows along the sweep.
            for pair in series.points.windows(2) {
                assert!(pair[1].x_value > pair[0].x_value);
            }
        }
        // The derived figure exports through the standard CSV path.
        let csv = to_csv(&stick);
        assert!(csv.starts_with("series,x,x_value,mean,std_dev"));
        assert_eq!(
            csv.trim().lines().count(),
            1 + stick.series.len() * stick.series[0].points.len()
        );
    }

    #[test]
    fn tenant_isolation_json_has_both_experiments_and_is_finite() {
        let cfg = RunConfig {
            seed: 7,
            runs: 1,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(RunPlan::new(cfg).with_shard("tenant_").with_workers(1)).run();
        let parallel = Executor::new(RunPlan::new(cfg).with_shard("tenant_").with_workers(2)).run();
        let json = tenant_isolation_json("quick", 7, &serial, &parallel);
        assert!(json.contains("\"schema\": \"isolation-bench/tenant-isolation/v1\""));
        assert!(json.contains("\"slug\": \"tenant_isolation_memcached\""));
        assert!(json.contains("\"slug\": \"tenant_isolation_mysql\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"label\": \"native\""));
        assert!(json.contains("\"isolation_index\""));
        assert!(json.contains("\"victim_fifo_p99_us\""));
        assert!(json.contains("\"aggressor_drop_rate\""));
        assert_eq!(find_non_finite(&json), None, "emitted JSON must be finite");
    }

    #[test]
    fn pipeline_json_has_both_experiments_and_is_finite() {
        let cfg = RunConfig {
            seed: 7,
            runs: 1,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(RunPlan::new(cfg).with_shard("pipeline").with_workers(1)).run();
        let parallel =
            Executor::new(RunPlan::new(cfg).with_shard("pipeline").with_workers(2)).run();
        let json = pipeline_json("quick", 7, &serial, &parallel);
        assert!(json.contains("\"schema\": \"isolation-bench/pipeline/v1\""));
        assert!(json.contains("\"slug\": \"pipeline_memcached\""));
        assert!(json.contains("\"slug\": \"pipeline_mysql\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"label\": \"native\""));
        assert!(json.contains("\"setting\": \"d1 h0.90\""));
        assert!(json.contains("\"setting\": \"d4 miss-storm\""));
        assert!(json.contains("\"stage_tax_us\""));
        assert!(json.contains("\"short_circuit_fraction\""));
        assert_eq!(find_non_finite(&json), None, "emitted JSON must be finite");
    }

    #[test]
    fn cluster_json_has_both_experiments_and_is_finite() {
        let cfg = RunConfig {
            seed: 7,
            runs: 1,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(RunPlan::new(cfg).with_shard("cluster_m").with_workers(1)).run();
        let parallel =
            Executor::new(RunPlan::new(cfg).with_shard("cluster_m").with_workers(2)).run();
        let scaling = [
            ShardCoreScaling {
                cores: 1,
                wall_ms: 10.0,
                events_per_sec: 1e6,
                identical: true,
            },
            ShardCoreScaling {
                cores: 4,
                wall_ms: 9.5,
                events_per_sec: 1.1e6,
                identical: true,
            },
        ];
        let json = cluster_json("quick", 7, &serial, &parallel, &scaling);
        assert!(json.contains("\"schema\": \"isolation-bench/cluster/v1\""));
        assert!(json.contains("\"shard_core_scaling\": ["));
        assert!(json.contains("{\"cores\": 4, \"wall_ms\": 9.500, \"events_per_sec\": 1100000.0, \"identical\": true}"));
        assert!(json.contains("\"slug\": \"cluster_memcached\""));
        assert!(json.contains("\"slug\": \"cluster_mysql\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"label\": \"native\""));
        assert!(json.contains("\"setting\": \"s256\""));
        assert!(json.contains("\"setting\": \"s16 rebal\""));
        assert!(json.contains("\"hot_shard_p99_us\""));
        assert!(json.contains("\"imbalance\""));
        assert_eq!(find_non_finite(&json), None, "emitted JSON must be finite");
    }

    #[test]
    fn cluster_failover_json_has_both_experiments_and_is_finite() {
        let cfg = RunConfig {
            seed: 7,
            runs: 1,
            startups: 8,
            quick: true,
        };
        let serial = Executor::new(
            RunPlan::new(cfg)
                .with_shard("cluster_failover")
                .with_workers(1),
        )
        .run();
        let parallel = Executor::new(
            RunPlan::new(cfg)
                .with_shard("cluster_failover")
                .with_workers(2),
        )
        .run();
        let scaling = [ShardCoreScaling {
            cores: 8,
            wall_ms: 12.25,
            events_per_sec: 2e6,
            identical: true,
        }];
        let attest = FailoverAttestation {
            r1_matches_plain: true,
            scatter_p99_monotone: true,
            spike_subsides: true,
        };
        let json = cluster_failover_json("quick", 7, &serial, &parallel, &scaling, &attest);
        assert!(json.contains("\"schema\": \"isolation-bench/cluster-failover/v1\""));
        assert!(json.contains("\"slug\": \"cluster_failover_memcached\""));
        assert!(json.contains("\"slug\": \"cluster_failover_mysql\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"r1_matches_plain\": true"));
        assert!(json.contains("\"scatter_p99_monotone\": true"));
        assert!(json.contains("\"spike_subsides\": true"));
        assert!(json.contains(
            "{\"cores\": 8, \"wall_ms\": 12.250, \"events_per_sec\": 2000000.0, \"identical\": true}"
        ));
        assert!(json.contains("\"label\": \"native\""));
        assert!(json.contains("\"setting\": \"r1\""));
        assert!(json.contains("\"setting\": \"r3 k16\""));
        assert!(json.contains("\"setting\": \"r2 failrec\""));
        assert!(json.contains("\"scatter_p99_us\""));
        assert!(json.contains("\"handoffs\""));
        assert!(json.contains("\"fail_at_us\""));
        assert!(json.contains("\"post_recover_drop_rate\""));
        // Fault settings carry a real failure instant; fault-free ones the
        // -1 sentinel.
        assert!(json.contains("\"fail_at_us\": -1.000"));
        assert!(!json.contains("\"fail_at_us\": 0.000"));
        assert_eq!(find_non_finite(&json), None, "emitted JSON must be finite");
    }

    #[test]
    fn full_grid_json_reports_the_experiment_count() {
        let (serial, parallel) = tiny_reports();
        let json = full_grid_json("quick", 7, &serial, &parallel);
        assert!(json.contains(&format!(
            "\"experiment_count\": {}",
            ExperimentId::all().len()
        )));
    }

    #[test]
    fn experiment_missing_from_the_parallel_report_gets_zero_time() {
        let (serial, _) = tiny_reports();
        let cfg = RunConfig {
            seed: 7,
            runs: 2,
            startups: 8,
            quick: true,
        };
        let other = Executor::new(RunPlan::new(cfg).with_shard("fig05").with_workers(1)).run();
        let json = full_grid_json("quick", 7, &serial, &other);
        assert!(json.contains("\"parallel_ms\": 0.000"));
    }
}
