//! # kvstore
//!
//! A Memcached-like in-memory key-value store.
//!
//! The paper benchmarks Memcached with YCSB "workload a" (50/50 reads and
//! updates) on every isolation platform. The store here is the workload's
//! server side: a sharded hash map with per-shard LRU eviction and a small
//! text protocol, so the YCSB driver in the `workloads` crate exercises a
//! real data structure (hashing, eviction, contention across shards)
//! rather than a stub.
//!
//! ```
//! use kvstore::{Store, StoreConfig};
//!
//! let store = Store::new(StoreConfig::default());
//! store.set(b"user:1", b"alice".to_vec());
//! assert_eq!(store.get(b"user:1").as_deref(), Some(&b"alice"[..]));
//! assert!(store.delete(b"user:1"));
//! assert!(store.get(b"user:1").is_none());
//! ```

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod protocol;
pub mod shard;
pub mod store;

pub use protocol::{Command, ParseError, Response};
pub use shard::{Shard, ShardStats};
pub use store::{Store, StoreConfig, StoreStats};
