//! A minimal Memcached-style text protocol.
//!
//! Only the three verbs the YCSB driver needs are implemented (`get`,
//! `set`, `delete`), plus `stats`. The parser exists so the benchmark
//! exercises a realistic request-handling path (parse → dispatch →
//! serialize) rather than calling the store directly.

use std::fmt;

use crate::store::Store;

/// A parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `get <key>`
    Get {
        /// Key to read.
        key: Vec<u8>,
    },
    /// `set <key> <bytes>` followed by the value.
    Set {
        /// Key to write.
        key: Vec<u8>,
        /// Value to store.
        value: Vec<u8>,
    },
    /// `delete <key>`
    Delete {
        /// Key to remove.
        key: Vec<u8>,
    },
    /// `stats`
    Stats,
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Value found.
    Value(Vec<u8>),
    /// Key not found.
    NotFound,
    /// Mutation stored.
    Stored,
    /// Key deleted.
    Deleted,
    /// Stats summary line.
    Stats(String),
}

/// Errors produced when parsing a request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line was empty.
    Empty,
    /// The verb is not one of `get`, `set`, `delete`, `stats`.
    UnknownVerb(String),
    /// The verb was recognized but its arguments are malformed.
    BadArguments(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty request"),
            ParseError::UnknownVerb(v) => write!(f, "unknown verb: {v}"),
            ParseError::BadArguments(msg) => write!(f, "bad arguments: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Command {
    /// Parses a request. `set` requests carry their value on the line after
    /// the header, mirroring the memcached text protocol.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] when the request is empty, the verb is
    /// unknown, or the arguments do not match the verb.
    pub fn parse(request: &str) -> Result<Command, ParseError> {
        let mut lines = request.lines();
        let header = lines.next().ok_or(ParseError::Empty)?.trim();
        if header.is_empty() {
            return Err(ParseError::Empty);
        }
        let mut parts = header.split_whitespace();
        let verb = parts.next().ok_or(ParseError::Empty)?;
        match verb {
            "get" => {
                let key = parts
                    .next()
                    .ok_or(ParseError::BadArguments("get needs a key"))?;
                Ok(Command::Get {
                    key: key.as_bytes().to_vec(),
                })
            }
            "delete" => {
                let key = parts
                    .next()
                    .ok_or(ParseError::BadArguments("delete needs a key"))?;
                Ok(Command::Delete {
                    key: key.as_bytes().to_vec(),
                })
            }
            "set" => {
                let key = parts
                    .next()
                    .ok_or(ParseError::BadArguments("set needs a key"))?;
                let len: usize = parts
                    .next()
                    .ok_or(ParseError::BadArguments("set needs a byte count"))?
                    .parse()
                    .map_err(|_| ParseError::BadArguments("byte count must be a number"))?;
                let value = lines.next().unwrap_or("").as_bytes().to_vec();
                if value.len() != len {
                    return Err(ParseError::BadArguments("value length mismatch"));
                }
                Ok(Command::Set {
                    key: key.as_bytes().to_vec(),
                    value,
                })
            }
            "stats" => Ok(Command::Stats),
            other => Err(ParseError::UnknownVerb(other.to_string())),
        }
    }

    /// Executes the command against a store.
    pub fn execute(self, store: &Store) -> Response {
        match self {
            Command::Get { key } => match store.get(&key) {
                Some(v) => Response::Value(v),
                None => Response::NotFound,
            },
            Command::Set { key, value } => {
                store.set(&key, value);
                Response::Stored
            }
            Command::Delete { key } => {
                if store.delete(&key) {
                    Response::Deleted
                } else {
                    Response::NotFound
                }
            }
            Command::Stats => {
                let s = store.stats();
                Response::Stats(format!(
                    "entries={} bytes={} gets={} hits={} sets={} evictions={}",
                    s.entries, s.bytes, s.gets, s.hits, s.sets, s.evictions
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;

    #[test]
    fn parse_and_execute_roundtrip() {
        let store = Store::new(StoreConfig::default());
        let set = Command::parse("set user:1 5\nalice").unwrap();
        assert_eq!(set.execute(&store), Response::Stored);
        let get = Command::parse("get user:1").unwrap();
        assert_eq!(get.execute(&store), Response::Value(b"alice".to_vec()));
        let del = Command::parse("delete user:1").unwrap();
        assert_eq!(del.execute(&store), Response::Deleted);
        assert_eq!(
            Command::parse("get user:1").unwrap().execute(&store),
            Response::NotFound
        );
    }

    #[test]
    fn parse_rejects_malformed_requests() {
        assert_eq!(Command::parse(""), Err(ParseError::Empty));
        assert!(matches!(
            Command::parse("frobnicate x"),
            Err(ParseError::UnknownVerb(_))
        ));
        assert!(matches!(
            Command::parse("get"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            Command::parse("set k notanumber\nv"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            Command::parse("set k 10\nshort"),
            Err(ParseError::BadArguments(_))
        ));
    }

    #[test]
    fn stats_command_reports_counters() {
        let store = Store::new(StoreConfig::default());
        store.set(b"a", b"1".to_vec());
        store.get(b"a");
        match Command::Stats.execute(&store) {
            Response::Stats(s) => {
                assert!(s.contains("entries=1"));
                assert!(s.contains("hits=1"));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn parse_error_display_is_informative() {
        let err = Command::parse("bogus").unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }
}
