//! A single store shard: hash map plus LRU eviction.

use std::collections::{HashMap, VecDeque};

/// One shard of the store. Shards are independently locked by the parent
/// [`crate::Store`], so the shard itself is a plain single-threaded
/// structure.
#[derive(Debug, Default)]
pub struct Shard {
    map: HashMap<Vec<u8>, Entry>,
    /// Approximate LRU order: keys are pushed on access; stale entries are
    /// skipped during eviction (the classic "second chance" shortcut used
    /// instead of a doubly linked list to keep the code simple).
    lru: VecDeque<Vec<u8>>,
    /// How many times each key currently appears in `lru`. Keeping the
    /// occurrence count here makes the second-chance membership question
    /// ("does this key appear again later in the queue?") O(1) instead of
    /// an O(n) scan of the queue per eviction candidate, which degraded
    /// quadratically at cluster-scale key counts. Never iterated — only
    /// point lookups — so hasher order cannot leak into behaviour.
    lru_counts: HashMap<Vec<u8>, u32>,
    bytes: usize,
    max_bytes: usize,
    evictions: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    value: Vec<u8>,
    touched: u64,
}

/// A point-in-time snapshot of one shard's occupancy counters, taken in
/// one call (and under the parent's one lock acquisition) instead of
/// three separate getter reads.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Number of live entries.
    pub len: usize,
    /// Bytes of key+value data currently stored.
    pub bytes: usize,
    /// Number of entries evicted so far.
    pub evictions: u64,
}

impl Shard {
    /// Creates a shard bounded to `max_bytes` of value data.
    pub fn new(max_bytes: usize) -> Self {
        Shard {
            map: HashMap::new(),
            lru: VecDeque::new(),
            lru_counts: HashMap::new(),
            bytes: 0,
            max_bytes,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the shard holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Snapshot of the shard's occupancy counters.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            len: self.map.len(),
            bytes: self.bytes,
            evictions: self.evictions,
        }
    }

    /// Looks a key up, refreshing its LRU position.
    pub fn get(&mut self, key: &[u8], tick: u64) -> Option<Vec<u8>> {
        let entry = self.map.get_mut(key)?;
        entry.touched = tick;
        let value = entry.value.clone();
        self.push_lru(key);
        Some(value)
    }

    /// Records an access in the LRU queue and its occurrence count.
    fn push_lru(&mut self, key: &[u8]) {
        self.lru.push_back(key.to_vec());
        *self.lru_counts.entry(key.to_vec()).or_insert(0) += 1;
    }

    /// Inserts or replaces a value; evicts least-recently-used entries if
    /// the shard would exceed its byte budget. Returns `true` if the key
    /// already existed.
    pub fn set(&mut self, key: &[u8], value: Vec<u8>, tick: u64) -> bool {
        let add = key.len() + value.len();
        let existed = if let Some(old) = self.map.get(key) {
            self.bytes -= key.len() + old.value.len();
            true
        } else {
            false
        };
        self.bytes += add;
        self.map.insert(
            key.to_vec(),
            Entry {
                value,
                touched: tick,
            },
        );
        self.push_lru(key);
        self.evict_if_needed(tick);
        existed
    }

    /// Removes a key; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        if let Some(old) = self.map.remove(key) {
            self.bytes -= key.len() + old.value.len();
            true
        } else {
            false
        }
    }

    fn evict_if_needed(&mut self, _tick: u64) {
        while self.bytes > self.max_bytes {
            let Some(candidate) = self.lru.pop_front() else {
                break;
            };
            // Decrement the candidate's queue-occurrence count; what
            // remains is exactly "does it appear again later in the
            // queue", the second-chance question, now answered in O(1).
            let remaining = match self.lru_counts.get_mut(&candidate) {
                Some(count) => {
                    *count -= 1;
                    *count
                }
                None => 0,
            };
            if remaining == 0 {
                self.lru_counts.remove(&candidate);
            }
            if !self.map.contains_key(&candidate) {
                // Key already deleted; drop the stale queue entry.
                continue;
            }
            // If the key appears again later in the queue it was accessed
            // after this queue entry was pushed — give it a second chance.
            if remaining > 0 {
                continue;
            }
            if let Some(old) = self.map.remove(&candidate) {
                self.bytes -= candidate.len() + old.value.len();
                self.evictions += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_delete_roundtrip() {
        let mut s = Shard::new(1 << 20);
        assert!(!s.set(b"k", b"v1".to_vec(), 1));
        assert!(s.set(b"k", b"v2".to_vec(), 2));
        assert_eq!(s.get(b"k", 3), Some(b"v2".to_vec()));
        assert!(s.delete(b"k"));
        assert!(!s.delete(b"k"));
        assert!(s.get(b"k", 4).is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn byte_accounting_tracks_replacements() {
        let mut s = Shard::new(1 << 20);
        s.set(b"key", vec![0u8; 100], 1);
        assert_eq!(s.stats().bytes, 103);
        s.set(b"key", vec![0u8; 10], 2);
        assert_eq!(s.stats().bytes, 13);
        s.delete(b"key");
        assert_eq!(
            s.stats(),
            ShardStats {
                len: 0,
                bytes: 0,
                evictions: 0
            }
        );
    }

    #[test]
    fn eviction_keeps_shard_within_budget() {
        let mut s = Shard::new(1_000);
        for i in 0..100u32 {
            let key = format!("key-{i}");
            s.set(key.as_bytes(), vec![0u8; 50], u64::from(i));
        }
        let stats = s.stats();
        assert!(stats.bytes <= 1_000, "bytes {} exceed budget", stats.bytes);
        assert!(stats.evictions > 0);
        assert!(stats.len < 100);
    }

    /// The pre-optimization eviction loop, kept verbatim as an oracle:
    /// second chance decided by an O(n) scan of the queue.
    fn evict_reference(
        map: &mut HashMap<Vec<u8>, Entry>,
        lru: &mut VecDeque<Vec<u8>>,
        bytes: &mut usize,
        max_bytes: usize,
        evictions: &mut u64,
    ) {
        while *bytes > max_bytes {
            let Some(candidate) = lru.pop_front() else {
                break;
            };
            if !map.contains_key(&candidate) {
                continue;
            }
            if lru.iter().any(|k| k == &candidate) {
                continue;
            }
            if let Some(old) = map.remove(&candidate) {
                *bytes -= candidate.len() + old.value.len();
                *evictions += 1;
            }
        }
    }

    /// A shard driven through the old O(n)-membership eviction path.
    #[derive(Default)]
    struct ReferenceShard {
        map: HashMap<Vec<u8>, Entry>,
        lru: VecDeque<Vec<u8>>,
        bytes: usize,
        max_bytes: usize,
        evictions: u64,
    }

    impl ReferenceShard {
        fn get(&mut self, key: &[u8], tick: u64) -> Option<Vec<u8>> {
            let entry = self.map.get_mut(key)?;
            entry.touched = tick;
            self.lru.push_back(key.to_vec());
            Some(entry.value.clone())
        }

        fn set(&mut self, key: &[u8], value: Vec<u8>, tick: u64) {
            let add = key.len() + value.len();
            if let Some(old) = self.map.get(key) {
                self.bytes -= key.len() + old.value.len();
            }
            self.bytes += add;
            self.map.insert(
                key.to_vec(),
                Entry {
                    value,
                    touched: tick,
                },
            );
            self.lru.push_back(key.to_vec());
            evict_reference(
                &mut self.map,
                &mut self.lru,
                &mut self.bytes,
                self.max_bytes,
                &mut self.evictions,
            );
        }

        fn delete(&mut self, key: &[u8]) -> bool {
            if let Some(old) = self.map.remove(key) {
                self.bytes -= key.len() + old.value.len();
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn o1_second_chance_replays_the_reference_scan_exactly() {
        // The O(1) occurrence-count second chance must make the same
        // evict/skip decision as the old O(n) queue scan on every pop —
        // including after delete + reinsert, where the queue still holds
        // stale occurrences of a live key. Drive both through an
        // identical deterministic op mix and compare observable state.
        let mut fast = Shard::new(600);
        let mut reference = ReferenceShard {
            max_bytes: 600,
            ..Default::default()
        };
        let mut state = 0x9e3779b97f4a7c15u64; // fixed-seed LCG, no ambient entropy
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for tick in 0..4_000u64 {
            let r = next();
            let key = format!("key-{}", r % 23);
            match r % 10 {
                0..=4 => {
                    let value = vec![0u8; 20 + (r % 60) as usize];
                    fast.set(key.as_bytes(), value.clone(), tick);
                    reference.set(key.as_bytes(), value, tick);
                }
                5..=7 => {
                    assert_eq!(
                        fast.get(key.as_bytes(), tick),
                        reference.get(key.as_bytes(), tick),
                        "get({key}) diverged at tick {tick}"
                    );
                }
                _ => {
                    assert_eq!(
                        fast.delete(key.as_bytes()),
                        reference.delete(key.as_bytes()),
                        "delete({key}) diverged at tick {tick}"
                    );
                }
            }
            assert_eq!(fast.stats().bytes, reference.bytes, "bytes at tick {tick}");
            assert_eq!(
                fast.stats().evictions,
                reference.evictions,
                "evictions at tick {tick}"
            );
            assert_eq!(fast.len(), reference.map.len(), "len at tick {tick}");
        }
        assert!(fast.stats().evictions > 0, "op mix never evicted");
    }

    #[test]
    fn recently_used_keys_survive_eviction() {
        let mut s = Shard::new(500);
        s.set(b"hot", vec![0u8; 50], 0);
        for i in 0..50u32 {
            // Keep touching the hot key while inserting cold ones.
            let key = format!("cold-{i}");
            s.set(key.as_bytes(), vec![0u8; 50], u64::from(i) + 1);
            s.get(b"hot", u64::from(i) + 1);
        }
        assert!(s.get(b"hot", 1000).is_some(), "hot key was evicted");
    }
}
