//! The sharded, thread-safe store.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::shard::Shard;

/// Configuration of a [`Store`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of independently locked shards.
    pub shards: usize,
    /// Total memory budget in bytes, split evenly across shards.
    pub memory_limit_bytes: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            shards: 16,
            memory_limit_bytes: 256 << 20,
        }
    }
}

/// Aggregate statistics of a store.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of `get` operations served.
    pub gets: u64,
    /// Number of `get` operations that found the key.
    pub hits: u64,
    /// Number of `set` operations served.
    pub sets: u64,
    /// Number of `delete` operations served.
    pub deletes: u64,
    /// Number of entries evicted across all shards.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: u64,
    /// Bytes of key+value data across all shards.
    pub bytes: u64,
}

/// A Memcached-like sharded key-value store.
///
/// All operations are safe to call concurrently; each key maps to exactly
/// one shard via FNV-1a hashing and only that shard's lock is taken.
#[derive(Debug)]
pub struct Store {
    shards: Vec<Mutex<Shard>>,
    tick: AtomicU64,
    gets: AtomicU64,
    hits: AtomicU64,
    sets: AtomicU64,
    deletes: AtomicU64,
}

impl Store {
    /// Creates a store with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero.
    pub fn new(config: StoreConfig) -> Self {
        assert!(config.shards > 0, "store needs at least one shard");
        let per_shard = (config.memory_limit_bytes / config.shards).max(1024);
        Store {
            shards: (0..config.shards)
                .map(|_| Mutex::new(Shard::new(per_shard)))
                .collect(),
            tick: AtomicU64::new(0),
            gets: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            sets: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, key: &[u8]) -> &Mutex<Shard> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Reads a value.
    pub fn get(&self, key: &[u8]) -> Option<Vec<u8>> {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        self.gets.fetch_add(1, Ordering::Relaxed);
        let result = self.shard_for(key).lock().get(key, tick);
        if result.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Writes a value; returns whether the key already existed.
    pub fn set(&self, key: &[u8], value: Vec<u8>) -> bool {
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        self.sets.fetch_add(1, Ordering::Relaxed);
        self.shard_for(key).lock().set(key, value, tick)
    }

    /// Deletes a key; returns whether it existed.
    pub fn delete(&self, key: &[u8]) -> bool {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.shard_for(key).lock().delete(key)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot of the aggregate statistics.
    pub fn stats(&self) -> StoreStats {
        let mut entries = 0u64;
        let mut bytes = 0u64;
        let mut evictions = 0u64;
        for shard in &self.shards {
            let s = shard.lock().stats();
            entries += s.len as u64;
            bytes += s.bytes as u64;
            evictions += s.evictions;
        }
        StoreStats {
            gets: self.gets.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            sets: self.sets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            evictions,
            entries,
            bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_writers_and_readers_agree() {
        let store = Arc::new(Store::new(StoreConfig::default()));
        let mut handles = Vec::new();
        for t in 0..8 {
            let store = Arc::clone(&store);
            // simlint::allow(D004, reason = "bounded smoke test that the store's sharded locking is race-free under real threads; asserts only thread-order-independent totals")
            handles.push(std::thread::spawn(move || {
                for i in 0..500u32 {
                    let key = format!("t{t}-k{i}");
                    store.set(key.as_bytes(), key.clone().into_bytes());
                }
                for i in 0..500u32 {
                    let key = format!("t{t}-k{i}");
                    assert_eq!(store.get(key.as_bytes()), Some(key.into_bytes()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = store.stats();
        assert_eq!(stats.sets, 8 * 500);
        assert_eq!(stats.gets, 8 * 500);
        assert_eq!(stats.hits, 8 * 500);
        assert_eq!(stats.entries, 8 * 500);
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let store = Store::new(StoreConfig::default());
        store.set(b"a", b"1".to_vec());
        assert!(store.get(b"a").is_some());
        assert!(store.get(b"missing").is_none());
        let stats = store.stats();
        assert_eq!(stats.gets, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.bytes, 2);
    }

    #[test]
    fn memory_limit_applies_across_shards() {
        let store = Store::new(StoreConfig {
            shards: 4,
            memory_limit_bytes: 40_000,
        });
        for i in 0..2_000u32 {
            store.set(format!("key-{i}").as_bytes(), vec![0u8; 100]);
        }
        let stats = store.stats();
        assert!(stats.bytes <= 40_000 + 4 * 1024, "bytes {}", stats.bytes);
        assert!(stats.evictions > 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let _ = Store::new(StoreConfig {
            shards: 0,
            memory_limit_bytes: 1024,
        });
    }

    #[test]
    fn same_key_routes_to_same_shard() {
        let store = Store::new(StoreConfig::default());
        let a = store.shard_for(b"stable-key") as *const _;
        let b = store.shard_for(b"stable-key") as *const _;
        assert_eq!(a, b);
    }
}
