//! Sequential copy bandwidth (tinymembench "bandwidth" mode and STREAM).
//!
//! Figures 7 and 8 report bytes copied per second with regular and SSE2
//! instructions (tinymembench) and the STREAM COPY kernel. Sequential
//! access is bandwidth-bound rather than latency-bound because the
//! hardware prefetchers hide the latency; virtualization still shows up as
//! a mild efficiency loss which the platform models configure.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, SimRng};

use crate::config::MemoryHierarchy;

/// The instruction sequence used by the copy loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CopyMethod {
    /// Plain integer loads/stores (`memcpy`-style, no SIMD).
    Regular,
    /// SSE2 16-byte vector copies.
    Sse2,
    /// The STREAM COPY kernel (`a[i] = b[i]`, 16 bytes moved per
    /// iteration counting both streams).
    StreamCopy,
}

impl CopyMethod {
    /// Fraction of the theoretical DRAM bandwidth a single-threaded copy
    /// loop of this kind achieves on the bare host.
    pub fn efficiency(self) -> f64 {
        match self {
            CopyMethod::Regular => 0.28,
            CopyMethod::Sse2 => 0.42,
            CopyMethod::StreamCopy => 0.38,
        }
    }
}

/// Sequential copy bandwidth model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequentialCopyModel {
    hierarchy: MemoryHierarchy,
    /// Multiplicative efficiency of the platform's memory path
    /// (1.0 = native; hypervisors configure < 1.0).
    pub platform_efficiency: f64,
    /// Relative run-to-run noise.
    pub jitter: f64,
}

impl SequentialCopyModel {
    /// Creates a native-efficiency model over the hierarchy.
    pub fn new(hierarchy: MemoryHierarchy) -> Self {
        SequentialCopyModel {
            hierarchy,
            platform_efficiency: 1.0,
            jitter: 0.015,
        }
    }

    /// Sets the platform efficiency factor.
    pub fn with_platform_efficiency(mut self, eff: f64) -> Self {
        self.platform_efficiency = eff.clamp(0.0, 1.5);
        self
    }

    /// Sets the relative run-to-run noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Mean achievable copy bandwidth for the given method.
    pub fn mean_bandwidth(&self, method: CopyMethod) -> Bandwidth {
        self.hierarchy
            .dram_bandwidth
            .scale(method.efficiency() * self.platform_efficiency)
    }

    /// Samples one measured bandwidth value.
    pub fn sample_bandwidth(&self, method: CopyMethod, rng: &mut SimRng) -> Bandwidth {
        let mean = self.mean_bandwidth(method).bytes_per_sec();
        Bandwidth::from_bytes_per_sec(rng.normal_pos(mean, mean * self.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryHierarchy;

    #[test]
    fn sse2_beats_regular_copies() {
        let m = SequentialCopyModel::new(MemoryHierarchy::epyc2());
        assert!(
            m.mean_bandwidth(CopyMethod::Sse2).bytes_per_sec()
                > m.mean_bandwidth(CopyMethod::Regular).bytes_per_sec()
        );
    }

    #[test]
    fn platform_efficiency_scales_results() {
        let native = SequentialCopyModel::new(MemoryHierarchy::epyc2());
        let fc = SequentialCopyModel::new(MemoryHierarchy::epyc2()).with_platform_efficiency(0.8);
        let ratio = fc.mean_bandwidth(CopyMethod::StreamCopy).bytes_per_sec()
            / native
                .mean_bandwidth(CopyMethod::StreamCopy)
                .bytes_per_sec();
        assert!((ratio - 0.8).abs() < 1e-9);
    }

    #[test]
    fn sampled_bandwidth_is_near_mean() {
        let m = SequentialCopyModel::new(MemoryHierarchy::epyc2());
        let mut rng = SimRng::seed_from(3);
        let mean = m.mean_bandwidth(CopyMethod::Regular).bytes_per_sec();
        for _ in 0..100 {
            let s = m
                .sample_bandwidth(CopyMethod::Regular, &mut rng)
                .bytes_per_sec();
            assert!((s - mean).abs() / mean < 0.1);
        }
    }

    #[test]
    fn bandwidth_is_single_digit_gib_range() {
        // Single-threaded copy bandwidth on the testbed lands in the tens
        // of GiB/s region, consistent with tinymembench output.
        let m = SequentialCopyModel::new(MemoryHierarchy::epyc2());
        let gib = m.mean_bandwidth(CopyMethod::Sse2).mib_per_sec() / 1024.0;
        assert!(gib > 10.0 && gib < 60.0, "bandwidth {gib} GiB/s");
    }
}
