//! Cache and memory hierarchy description.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Nanos};

use crate::tlb::TlbConfig;

/// One level of the data-cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Load-to-use latency of a hit in this level.
    pub latency: Nanos,
}

impl CacheLevel {
    /// Creates a cache level.
    pub fn new(size_bytes: u64, latency: Nanos) -> Self {
        CacheLevel {
            size_bytes,
            latency,
        }
    }
}

/// The full memory hierarchy of the host (per socket).
///
/// # Example
///
/// ```
/// use memsim::MemoryHierarchy;
///
/// let h = MemoryHierarchy::epyc2();
/// assert!(h.l1.size_bytes < h.l2.size_bytes);
/// assert!(h.l2.size_bytes < h.l3.size_bytes);
/// assert!(h.dram_latency > h.l3.latency);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryHierarchy {
    /// L1 data cache (per core).
    pub l1: CacheLevel,
    /// L2 cache (per core).
    pub l2: CacheLevel,
    /// L3 cache visible to one core (per-CCX slice on EPYC2).
    pub l3: CacheLevel,
    /// DRAM random access latency (on top of the cache lookup path).
    pub dram_latency: Nanos,
    /// Peak DRAM bandwidth for a single NUMA node.
    pub dram_bandwidth: Bandwidth,
    /// TLB configuration.
    pub tlb: TlbConfig,
}

impl MemoryHierarchy {
    /// The AMD EPYC2 7542 ("Rome") hierarchy used in the paper's testbed.
    pub fn epyc2() -> Self {
        MemoryHierarchy {
            l1: CacheLevel::new(32 * 1024, Nanos::from_nanos(1)),
            l2: CacheLevel::new(512 * 1024, Nanos::from_nanos(4)),
            l3: CacheLevel::new(16 * 1024 * 1024, Nanos::from_nanos(12)),
            dram_latency: Nanos::from_nanos(95),
            dram_bandwidth: Bandwidth::from_mib_per_sec(85_000.0),
            tlb: TlbConfig::epyc2(),
        }
    }
}

impl Default for MemoryHierarchy {
    fn default() -> Self {
        Self::epyc2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epyc2_levels_are_ordered() {
        let h = MemoryHierarchy::epyc2();
        assert!(h.l1.latency < h.l2.latency);
        assert!(h.l2.latency < h.l3.latency);
        assert!(h.l3.latency < h.dram_latency);
        assert!(h.l1.size_bytes < h.l2.size_bytes);
        assert!(h.l2.size_bytes < h.l3.size_bytes);
    }

    #[test]
    fn default_is_epyc2() {
        assert_eq!(MemoryHierarchy::default(), MemoryHierarchy::epyc2());
    }

    #[test]
    fn bandwidth_is_server_class() {
        let h = MemoryHierarchy::epyc2();
        assert!(h.dram_bandwidth.mib_per_sec() > 50_000.0);
    }
}
