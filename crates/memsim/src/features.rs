//! Direct-mapping and page-sharing features.
//!
//! Finding 3 of the paper: Kata containers avoid the hypervisor memory
//! penalty via the QEMU NVDIMM feature (a memory-mapped virtual device
//! that maps directly between VM and host) and can further benefit from
//! Kernel Samepage Merging (KSM). Both features improve performance but
//! weaken the isolation boundary, which the HAP/security discussion picks
//! up again.

use serde::{Deserialize, Serialize};

use crate::paging::PagingMode;

/// Optional memory features a hypervisor-based platform may enable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DirectMapFeatures {
    /// QEMU NVDIMM / DAX-style direct mapping of guest memory.
    pub nvdimm_direct_map: bool,
    /// Kernel Samepage Merging between guests.
    pub ksm: bool,
    /// Whether the guest supports huge pages (Kata does not, per the
    /// paper).
    pub huge_pages_supported: bool,
}

impl DirectMapFeatures {
    /// No special features (plain hypervisor guest).
    pub fn none() -> Self {
        DirectMapFeatures {
            nvdimm_direct_map: false,
            ksm: false,
            huge_pages_supported: true,
        }
    }

    /// The Kata containers configuration: NVDIMM direct map plus KSM, but
    /// no huge-page support.
    pub fn kata() -> Self {
        DirectMapFeatures {
            nvdimm_direct_map: true,
            ksm: true,
            huge_pages_supported: false,
        }
    }

    /// Applies the features to a paging mode: the NVDIMM direct map
    /// replaces nested paging with a direct mapping.
    pub fn effective_paging(&self, base: PagingMode) -> PagingMode {
        if self.nvdimm_direct_map {
            PagingMode::DirectMap
        } else {
            base
        }
    }

    /// Cache-hit-ratio bonus from KSM page sharing (hot shared pages are
    /// more likely to be resident), expressed as a small additive factor.
    pub fn ksm_hit_bonus(&self) -> f64 {
        if self.ksm {
            0.03
        } else {
            0.0
        }
    }

    /// Whether enabling these features weakens inter-tenant isolation
    /// (used in the security discussion; KSM enables cross-VM side
    /// channels, direct mapping widens the shared surface).
    pub fn weakens_isolation(&self) -> bool {
        self.ksm || self.nvdimm_direct_map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tlb::{PageSize, TlbConfig};

    #[test]
    fn nvdimm_bypasses_nested_paging() {
        let kata = DirectMapFeatures::kata();
        let effective = kata.effective_paging(PagingMode::nested_hardware());
        assert_eq!(effective, PagingMode::DirectMap);
        let tlb = TlbConfig::epyc2();
        assert_eq!(
            effective.walk_latency(&tlb, PageSize::Small4K),
            PagingMode::Native.walk_latency(&tlb, PageSize::Small4K)
        );
    }

    #[test]
    fn plain_guest_keeps_nested_paging() {
        let none = DirectMapFeatures::none();
        assert!(none
            .effective_paging(PagingMode::nested_hardware())
            .is_virtualized());
        assert!(!none.weakens_isolation());
    }

    #[test]
    fn kata_features_weaken_isolation_but_boost_hits() {
        let kata = DirectMapFeatures::kata();
        assert!(kata.weakens_isolation());
        assert!(kata.ksm_hit_bonus() > 0.0);
        assert!(!kata.huge_pages_supported);
    }
}
