//! Random-access latency model (tinymembench "latency" mode, Fig. 6).
//!
//! Tinymembench reports, for buffers of increasing size, the *extra* time a
//! random access needs on top of an L1 hit. The model composes:
//!
//! * the probability of hitting L1/L2/L3/DRAM, derived from the buffer size
//!   relative to the cache capacities;
//! * the probability of a TLB miss and the cost of the resulting page walk
//!   under the platform's [`PagingMode`];
//! * measurement noise, proportional to the platform's inherent jitter.

use serde::{Deserialize, Serialize};
use simcore::{Nanos, SimRng};

use crate::config::MemoryHierarchy;
use crate::paging::PagingMode;
use crate::tlb::PageSize;

/// A model answering "what is the average extra latency of a random access
/// in a buffer of N bytes" for one translation mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomAccessModel {
    hierarchy: MemoryHierarchy,
    paging: PagingMode,
    /// Relative measurement noise (standard deviation as a fraction of the
    /// mean); hypervisor memory paths show visibly larger error bars in
    /// the paper (Firecracker especially).
    pub jitter: f64,
}

impl RandomAccessModel {
    /// Creates a model over the given hierarchy and paging mode.
    pub fn new(hierarchy: MemoryHierarchy, paging: PagingMode) -> Self {
        RandomAccessModel {
            hierarchy,
            paging,
            jitter: 0.02,
        }
    }

    /// Sets the relative measurement noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// The paging mode of this model.
    pub fn paging(&self) -> PagingMode {
        self.paging
    }

    /// Expected extra latency (on top of an L1 hit) of one random access
    /// within a buffer of `buffer_bytes`, using `page`-sized mappings.
    pub fn mean_extra_latency(&self, buffer_bytes: u64, page: PageSize) -> Nanos {
        let h = &self.hierarchy;
        let b = buffer_bytes as f64;

        // Probability that a random access falls outside each cache level.
        let p_past_l1 = past(b, h.l1.size_bytes);
        let p_past_l2 = past(b, h.l2.size_bytes);
        let p_past_l3 = past(b, h.l3.size_bytes);

        // Extra latency contributed by each level beyond L1.
        let l2_extra = (h.l2.latency - h.l1.latency).as_secs_f64();
        let l3_extra = (h.l3.latency - h.l1.latency).as_secs_f64();
        let dram_extra = (h.dram_latency - h.l1.latency).as_secs_f64();

        let cache_component = (p_past_l1 - p_past_l2) * l2_extra
            + (p_past_l2 - p_past_l3) * l3_extra
            + p_past_l3 * dram_extra;

        // TLB component: L1-TLB misses that hit the L2 TLB, plus full
        // misses that need a (possibly nested) page walk.
        let l1_miss = h.tlb.l1_miss_ratio(buffer_bytes, page);
        let full_miss = h.tlb.full_miss_ratio(buffer_bytes, page);
        let stlb_hit = (l1_miss - full_miss).max(0.0);
        let walk = self.paging.walk_latency(&h.tlb, page).as_secs_f64();
        let tlb_component = stlb_hit * h.tlb.l2_hit_latency.as_secs_f64() + full_miss * walk;

        Nanos::from_secs_f64(cache_component + tlb_component)
    }

    /// Samples a measured latency for one benchmark run (mean plus noise).
    pub fn sample_extra_latency(
        &self,
        buffer_bytes: u64,
        page: PageSize,
        rng: &mut SimRng,
    ) -> Nanos {
        let mean = self.mean_extra_latency(buffer_bytes, page).as_secs_f64();
        Nanos::from_secs_f64(rng.normal_pos(mean, mean * self.jitter))
    }

    /// The buffer sizes the paper sweeps: 2^16 through 2^26 bytes.
    pub fn paper_buffer_sizes() -> Vec<u64> {
        (16..=26).map(|e| 1u64 << e).collect()
    }
}

/// Probability that a random access within a buffer of `b` bytes falls
/// outside a cache of `capacity` bytes.
fn past(b: f64, capacity: u64) -> f64 {
    let c = capacity as f64;
    if b <= c {
        0.0
    } else {
        1.0 - c / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemoryHierarchy;

    fn native_model() -> RandomAccessModel {
        RandomAccessModel::new(MemoryHierarchy::epyc2(), PagingMode::Native)
    }

    #[test]
    fn latency_grows_with_buffer_size() {
        let m = native_model();
        let mut last = Nanos::ZERO;
        for size in RandomAccessModel::paper_buffer_sizes() {
            let lat = m.mean_extra_latency(size, PageSize::Small4K);
            assert!(lat >= last, "latency decreased at {size}");
            last = lat;
        }
        assert!(last.as_nanos() > 20, "64 MiB buffer latency {last}");
    }

    #[test]
    fn tiny_buffer_has_negligible_extra_latency() {
        let m = native_model();
        let lat = m.mean_extra_latency(16 * 1024, PageSize::Small4K);
        assert!(lat.as_nanos() <= 2, "16 KiB buffer latency {lat}");
    }

    #[test]
    fn huge_pages_reduce_large_buffer_latency() {
        let m = native_model();
        let small = m.mean_extra_latency(1 << 26, PageSize::Small4K);
        let huge = m.mean_extra_latency(1 << 26, PageSize::Huge2M);
        let reduction = 1.0 - huge.as_secs_f64() / small.as_secs_f64();
        assert!(
            reduction > 0.15 && reduction < 0.6,
            "huge-page reduction was {reduction:.2}"
        );
    }

    #[test]
    fn nested_paging_is_slower_than_native() {
        let native = native_model();
        let nested =
            RandomAccessModel::new(MemoryHierarchy::epyc2(), PagingMode::nested_hardware());
        let vm_mem = RandomAccessModel::new(
            MemoryHierarchy::epyc2(),
            PagingMode::nested_with_vmm_overhead(Nanos::from_nanos(80)),
        );
        let size = 1 << 26;
        let a = native.mean_extra_latency(size, PageSize::Small4K);
        let b = nested.mean_extra_latency(size, PageSize::Small4K);
        let c = vm_mem.mean_extra_latency(size, PageSize::Small4K);
        assert!(b > a);
        assert!(c > b);
    }

    #[test]
    fn sampling_tracks_the_mean() {
        let m = native_model().with_jitter(0.05);
        let mut rng = SimRng::seed_from(7);
        let size = 1 << 24;
        let mean = m.mean_extra_latency(size, PageSize::Small4K).as_secs_f64();
        let n = 500;
        let avg: f64 = (0..n)
            .map(|_| {
                m.sample_extra_latency(size, PageSize::Small4K, &mut rng)
                    .as_secs_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((avg - mean).abs() / mean < 0.05);
    }

    #[test]
    fn paper_sweep_has_eleven_points() {
        assert_eq!(RandomAccessModel::paper_buffer_sizes().len(), 11);
        assert_eq!(RandomAccessModel::paper_buffer_sizes()[0], 65536);
    }
}
