//! # memsim
//!
//! Memory-hierarchy simulation used by the tinymembench and STREAM
//! experiments (Figs. 6–8 of the paper) and, indirectly, by every workload
//! whose cost model includes memory accesses (Memcached, MySQL).
//!
//! The model reproduces the mechanisms the paper names as the sources of
//! memory overhead:
//!
//! * growing random-access latency with buffer size, caused by an
//!   increasing proportion of TLB and cache misses ([`latency`]);
//! * the extra cost of nested (EPT) page walks and of the `vm-memory`
//!   software translation layer used by Firecracker and Cloud Hypervisor
//!   ([`paging`]);
//! * the ~30 % latency reduction from huge pages on large buffers
//!   ([`tlb`]);
//! * sequential copy bandwidth with regular and SSE2 instructions
//!   ([`bandwidth`]);
//! * direct-mapping features (QEMU NVDIMM, KSM) that let Kata bypass the
//!   virtualization penalty ([`features`]).

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bandwidth;
pub mod config;
pub mod features;
pub mod latency;
pub mod paging;
pub mod tlb;

pub use bandwidth::{CopyMethod, SequentialCopyModel};
pub use config::{CacheLevel, MemoryHierarchy};
pub use features::DirectMapFeatures;
pub use latency::RandomAccessModel;
pub use paging::PagingMode;
pub use tlb::{PageSize, TlbConfig};
