//! Address-translation modes and their page-walk costs.
//!
//! The paper singles out two virtualization-induced memory effects:
//!
//! * hypervisors pay for *nested* page walks (guest-virtual → guest-physical
//!   → host-physical), which roughly squares the number of memory
//!   references per walk;
//! * Firecracker and Cloud Hypervisor additionally route guest-physical
//!   address handling through the `vm-memory` Rust crate, which the paper
//!   identifies as the likely cause of their elevated access latencies
//!   (Finding 4).

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use crate::tlb::{PageSize, TlbConfig};

/// How guest addresses reach host physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PagingMode {
    /// Native translation: one 4-level walk on a TLB miss.
    Native,
    /// Hardware nested paging (EPT/NPT): each guest walk level itself
    /// requires a nested walk, plus an optional software overhead applied
    /// per TLB-missing access by the VMM's memory layer (`vm-memory`).
    Nested {
        /// Additional per-miss software overhead in nanoseconds
        /// contributed by the VMM's guest-memory abstraction.
        vmm_software_overhead: Nanos,
    },
    /// Direct mapping between guest and host (QEMU NVDIMM / DAX-style):
    /// behaves like native translation; used by Kata to avoid the
    /// virtualization penalty (Finding 3).
    DirectMap,
}

impl PagingMode {
    /// Nested paging without extra VMM software overhead (QEMU/KVM).
    pub fn nested_hardware() -> Self {
        PagingMode::Nested {
            vmm_software_overhead: Nanos::ZERO,
        }
    }

    /// Nested paging with a `vm-memory`-style software layer (Firecracker,
    /// Cloud Hypervisor). The per-miss overhead is the calibration knob.
    pub fn nested_with_vmm_overhead(overhead: Nanos) -> Self {
        PagingMode::Nested {
            vmm_software_overhead: overhead,
        }
    }

    /// Latency of servicing one TLB miss under this mode.
    pub fn walk_latency(&self, tlb: &TlbConfig, page: PageSize) -> Nanos {
        let levels = TlbConfig::walk_levels(page);
        match *self {
            PagingMode::Native | PagingMode::DirectMap => tlb.native_walk_latency(page),
            PagingMode::Nested {
                vmm_software_overhead,
            } => {
                // A two-dimensional walk references up to
                // levels * (levels + 1) + levels entries, but the paging
                // structure caches absorb most of them; the measured
                // penalty of an EPT walk over a native walk is modest, so
                // the model charges 1.25x the native walk plus whatever
                // software overhead the VMM's guest-memory layer adds.
                let hardware = tlb.walk_step_latency * levels * 5 / 4;
                hardware + vmm_software_overhead
            }
        }
    }

    /// Whether the mode involves a hypervisor-controlled second stage.
    pub fn is_virtualized(&self) -> bool {
        matches!(self, PagingMode::Nested { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_walks_cost_more_than_native() {
        let tlb = TlbConfig::epyc2();
        let native = PagingMode::Native.walk_latency(&tlb, PageSize::Small4K);
        let nested = PagingMode::nested_hardware().walk_latency(&tlb, PageSize::Small4K);
        assert!(nested > native, "nested {nested} vs native {native}");
    }

    #[test]
    fn vmm_software_overhead_adds_on_top() {
        let tlb = TlbConfig::epyc2();
        let plain = PagingMode::nested_hardware().walk_latency(&tlb, PageSize::Small4K);
        let fc = PagingMode::nested_with_vmm_overhead(Nanos::from_nanos(60))
            .walk_latency(&tlb, PageSize::Small4K);
        assert_eq!(fc, plain + Nanos::from_nanos(60));
    }

    #[test]
    fn direct_map_behaves_like_native() {
        let tlb = TlbConfig::epyc2();
        assert_eq!(
            PagingMode::DirectMap.walk_latency(&tlb, PageSize::Huge2M),
            PagingMode::Native.walk_latency(&tlb, PageSize::Huge2M)
        );
        assert!(!PagingMode::DirectMap.is_virtualized());
        assert!(PagingMode::nested_hardware().is_virtualized());
    }
}
