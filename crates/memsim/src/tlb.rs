//! TLB model and page sizes.
//!
//! The latency growth in Fig. 6 comes from "an increasing proportion of
//! accesses that miss the TLB cache"; the huge-page result in Section 3.2
//! (≈30 % lower access latency for large buffers) comes from the much
//! larger reach of a TLB entry covering 2 MiB instead of 4 KiB.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// The page size backing a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PageSize {
    /// Regular 4 KiB pages.
    Small4K,
    /// 2 MiB huge pages.
    Huge2M,
}

impl PageSize {
    /// Page size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            PageSize::Small4K => 4 * 1024,
            PageSize::Huge2M => 2 * 1024 * 1024,
        }
    }
}

/// Two-level TLB configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// L1 data TLB entries (4 KiB pages).
    pub l1_entries: u64,
    /// L2 (unified) TLB entries.
    pub l2_entries: u64,
    /// Entries available for huge pages in the L1 TLB.
    pub l1_huge_entries: u64,
    /// Latency of an L2 TLB hit (on top of an L1 TLB miss).
    pub l2_hit_latency: Nanos,
    /// Cost of one level of a hardware page-table walk (one memory
    /// reference that typically hits the page-walk caches / L2).
    pub walk_step_latency: Nanos,
}

impl TlbConfig {
    /// AMD EPYC2 ("Rome") TLB configuration.
    pub fn epyc2() -> Self {
        TlbConfig {
            l1_entries: 64,
            l2_entries: 2048,
            l1_huge_entries: 64,
            l2_hit_latency: Nanos::from_nanos(7),
            walk_step_latency: Nanos::from_nanos(20),
        }
    }

    /// Bytes of address space covered ("reach") by the L2 TLB at the given
    /// page size.
    pub fn l2_reach(&self, page: PageSize) -> u64 {
        self.l2_entries * page.bytes()
    }

    /// Bytes covered by the L1 TLB at the given page size.
    pub fn l1_reach(&self, page: PageSize) -> u64 {
        match page {
            PageSize::Small4K => self.l1_entries * page.bytes(),
            PageSize::Huge2M => self.l1_huge_entries * page.bytes(),
        }
    }

    /// Probability that a uniformly random access over `buffer_bytes`
    /// misses the L1 TLB.
    pub fn l1_miss_ratio(&self, buffer_bytes: u64, page: PageSize) -> f64 {
        miss_ratio(buffer_bytes, self.l1_reach(page))
    }

    /// Probability that a uniformly random access misses both TLB levels
    /// and needs a page-table walk.
    pub fn full_miss_ratio(&self, buffer_bytes: u64, page: PageSize) -> f64 {
        miss_ratio(buffer_bytes, self.l2_reach(page))
    }

    /// Number of memory references needed for one page-table walk of a
    /// `levels`-level table (4 for 4 KiB pages, 3 for 2 MiB pages).
    pub fn walk_levels(page: PageSize) -> u64 {
        match page {
            PageSize::Small4K => 4,
            PageSize::Huge2M => 3,
        }
    }

    /// Latency of one native page-table walk.
    pub fn native_walk_latency(&self, page: PageSize) -> Nanos {
        self.walk_step_latency * Self::walk_levels(page)
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::epyc2()
    }
}

/// Fraction of random accesses over `buffer` bytes that fall outside a
/// structure covering `reach` bytes.
fn miss_ratio(buffer: u64, reach: u64) -> f64 {
    if buffer == 0 {
        return 0.0;
    }
    if reach >= buffer {
        0.0
    } else {
        1.0 - reach as f64 / buffer as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reach_scales_with_page_size() {
        let tlb = TlbConfig::epyc2();
        assert!(tlb.l2_reach(PageSize::Huge2M) > tlb.l2_reach(PageSize::Small4K));
        assert_eq!(tlb.l2_reach(PageSize::Small4K), 2048 * 4096);
    }

    #[test]
    fn small_buffers_never_miss() {
        let tlb = TlbConfig::epyc2();
        assert_eq!(tlb.full_miss_ratio(1 << 16, PageSize::Small4K), 0.0);
        assert_eq!(tlb.l1_miss_ratio(64 * 1024, PageSize::Small4K), 0.0);
    }

    #[test]
    fn large_buffers_miss_often_with_small_pages() {
        let tlb = TlbConfig::epyc2();
        let miss_small = tlb.full_miss_ratio(1 << 26, PageSize::Small4K);
        let miss_huge = tlb.full_miss_ratio(1 << 26, PageSize::Huge2M);
        assert!(miss_small > 0.8, "small-page miss ratio {miss_small}");
        assert_eq!(miss_huge, 0.0, "64 MiB fits the huge-page TLB reach");
    }

    #[test]
    fn miss_ratio_is_monotonic_in_buffer_size() {
        let tlb = TlbConfig::epyc2();
        let mut last = 0.0;
        for exp in 16..=26 {
            let r = tlb.full_miss_ratio(1u64 << exp, PageSize::Small4K);
            assert!(r >= last, "ratio decreased at 2^{exp}");
            last = r;
        }
    }

    #[test]
    fn huge_pages_walk_fewer_levels() {
        assert!(
            TlbConfig::walk_levels(PageSize::Huge2M) < TlbConfig::walk_levels(PageSize::Small4K)
        );
        let tlb = TlbConfig::epyc2();
        assert!(
            tlb.native_walk_latency(PageSize::Huge2M) < tlb.native_walk_latency(PageSize::Small4K)
        );
    }
}
