//! Network data-path components.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// One component on the path between a guest socket and the host NIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NetComponent {
    /// The host kernel TCP/IP stack and NIC driver (always present; also
    /// the only component for native execution).
    HostStack,
    /// A Linux bridge plus veth pair (Docker, LXC, and the host side of
    /// Kata's network).
    Bridge,
    /// A TAP device feeding a VMM.
    Tap,
    /// A virtio-net queue serviced by vhost-net (QEMU's setup).
    VirtioNetVhost,
    /// A virtio-net queue serviced in the VMM process itself
    /// (Firecracker).
    VirtioNetVmm {
        /// Efficiency of the VMM's virtio implementation (1.0 = as good as
        /// vhost-net); the paper finds the newer VMMs less efficient.
        efficiency: f64,
    },
    /// A full Linux guest network stack inside the VM.
    GuestLinuxStack,
    /// OSv's library-OS network stack: socket calls are plain function
    /// calls, freeing guest CPU for packet processing. `throughput_bonus`
    /// captures how much of that freed CPU translates into goodput for the
    /// given hypervisor (large under QEMU, small under Firecracker).
    OsvGuestStack {
        /// Multiplicative throughput gain relative to a Linux guest.
        throughput_bonus: f64,
    },
    /// gVisor's user-space Netstack inside the Sentry.
    Netstack,
}

impl NetComponent {
    /// Multiplicative throughput efficiency of this component (relative to
    /// the traffic the layer above it could deliver).
    pub fn throughput_efficiency(self) -> f64 {
        match self {
            NetComponent::HostStack => 0.932,
            NetComponent::Bridge => 0.902,
            NetComponent::Tap => 0.96,
            NetComponent::VirtioNetVhost => 0.81,
            NetComponent::VirtioNetVmm { efficiency } => 0.81 * efficiency.clamp(0.05, 1.2),
            NetComponent::GuestLinuxStack => 1.0,
            NetComponent::OsvGuestStack { throughput_bonus } => throughput_bonus.clamp(0.5, 1.5),
            NetComponent::Netstack => 0.15,
        }
    }

    /// Latency this component adds to one request/response round trip.
    pub fn round_trip_latency(self) -> Nanos {
        match self {
            NetComponent::HostStack => Nanos::from_micros(26),
            NetComponent::Bridge => Nanos::from_micros(4),
            NetComponent::Tap => Nanos::from_micros(9),
            NetComponent::VirtioNetVhost => Nanos::from_micros(16),
            NetComponent::VirtioNetVmm { efficiency } => {
                Nanos::from_micros_f64(16.0 / efficiency.clamp(0.05, 1.2))
            }
            NetComponent::GuestLinuxStack => Nanos::from_micros(24),
            NetComponent::OsvGuestStack { .. } => Nanos::from_micros(16),
            NetComponent::Netstack => Nanos::from_micros(190),
        }
    }

    /// Host kernel functions exercised per batch of segments.
    pub fn host_functions(self) -> &'static [&'static str] {
        match self {
            NetComponent::HostStack => &[
                "sock_sendmsg",
                "sock_recvmsg",
                "tcp_sendmsg",
                "tcp_recvmsg",
                "tcp_write_xmit",
                "tcp_transmit_skb",
                "tcp_rcv_established",
                "tcp_ack",
                "ip_queue_xmit",
                "ip_output",
                "ip_finish_output2",
                "ip_rcv",
                "ip_local_deliver",
                "dev_queue_xmit",
                "dev_hard_start_xmit",
                "__netif_receive_skb_core",
                "net_rx_action",
                "napi_gro_receive",
                "alloc_skb",
                "consume_skb",
                "mlx5e_xmit",
            ],
            NetComponent::Bridge => &[
                "br_handle_frame",
                "br_forward",
                "br_dev_xmit",
                "br_nf_pre_routing",
                "nf_hook_slow",
                "ipt_do_table",
            ],
            NetComponent::Tap => &[
                "tun_net_xmit",
                "tun_get_user",
                "tun_put_user",
                "tun_chr_read_iter",
                "tun_chr_write_iter",
            ],
            NetComponent::VirtioNetVhost => &[
                "vhost_worker",
                "handle_tx_kick",
                "handle_rx_kick",
                "vhost_signal",
                "eventfd_signal",
                "irqfd_wakeup",
            ],
            NetComponent::VirtioNetVmm { .. } => &[
                "tun_chr_read_iter",
                "tun_chr_write_iter",
                "eventfd_signal",
                "ioeventfd_write",
                "irqfd_wakeup",
            ],
            NetComponent::GuestLinuxStack | NetComponent::OsvGuestStack { .. } => &[],
            NetComponent::Netstack => &[
                "tun_get_user",
                "tun_put_user",
                "sock_sendmsg",
                "sock_recvmsg",
                "seccomp_run_filters",
            ],
        }
    }

    /// Short label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            NetComponent::HostStack => "host-stack",
            NetComponent::Bridge => "bridge",
            NetComponent::Tap => "tap",
            NetComponent::VirtioNetVhost => "virtio-net(vhost)",
            NetComponent::VirtioNetVmm { .. } => "virtio-net(vmm)",
            NetComponent::GuestLinuxStack => "guest-linux",
            NetComponent::OsvGuestStack { .. } => "osv-stack",
            NetComponent::Netstack => "netstack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskern::kernel_fn::KernelFunctionRegistry;

    fn all() -> Vec<NetComponent> {
        vec![
            NetComponent::HostStack,
            NetComponent::Bridge,
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::VirtioNetVmm { efficiency: 0.9 },
            NetComponent::GuestLinuxStack,
            NetComponent::OsvGuestStack {
                throughput_bonus: 1.26,
            },
            NetComponent::Netstack,
        ]
    }

    #[test]
    fn netstack_is_by_far_the_least_efficient() {
        for c in all() {
            if !matches!(c, NetComponent::Netstack) {
                assert!(c.throughput_efficiency() > NetComponent::Netstack.throughput_efficiency());
            }
        }
        assert!(NetComponent::Netstack.round_trip_latency().as_micros_f64() > 100.0);
    }

    #[test]
    fn vhost_beats_vmm_serviced_virtio() {
        let vhost = NetComponent::VirtioNetVhost.throughput_efficiency();
        let fc = NetComponent::VirtioNetVmm { efficiency: 0.9 }.throughput_efficiency();
        let chv = NetComponent::VirtioNetVmm { efficiency: 0.75 }.throughput_efficiency();
        assert!(vhost > fc);
        assert!(fc > chv);
    }

    #[test]
    fn osv_stack_can_exceed_unity_bonus() {
        let osv = NetComponent::OsvGuestStack {
            throughput_bonus: 1.26,
        };
        assert!(osv.throughput_efficiency() > 1.0);
        // The bonus is clamped to a sane range.
        let absurd = NetComponent::OsvGuestStack {
            throughput_bonus: 10.0,
        };
        assert!(absurd.throughput_efficiency() <= 1.5);
    }

    #[test]
    fn all_host_functions_are_registered() {
        let reg = KernelFunctionRegistry::standard();
        for c in all() {
            for f in c.host_functions() {
                assert!(reg.contains(f), "{c:?} references unknown {f}");
            }
        }
    }

    #[test]
    fn guest_stacks_touch_no_host_functions() {
        assert!(NetComponent::GuestLinuxStack.host_functions().is_empty());
        assert!(NetComponent::OsvGuestStack {
            throughput_bonus: 1.0
        }
        .host_functions()
        .is_empty());
    }
}
