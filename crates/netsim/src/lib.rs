//! # netsim
//!
//! Network-path simulation behind the iperf3 (Fig. 11) and netperf
//! (Fig. 12) experiments and the network component of the Memcached and
//! MySQL benchmarks.
//!
//! A platform's network data path is a [`NetworkPath`]: an ordered list of
//! [`NetComponent`]s between the workload's socket and the host NIC. Each
//! component contributes a throughput efficiency, request/response latency,
//! and the host kernel functions it exercises. The paper's observations
//! reproduce directly from the composition:
//!
//! * namespacing (bridge + veth) costs ~9–10 % of throughput;
//! * TAP + virtio-net costs ~25 % and more for the less mature VMMs;
//! * OSv's in-kernel-library stack leaves more CPU for packet processing
//!   and nearly reaches native throughput under QEMU;
//! * gVisor's user-space Netstack is an extreme outlier in both throughput
//!   and 90th-percentile latency.

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod component;
pub mod path;

pub use component::NetComponent;
pub use path::{NetworkOutcome, NetworkPath};
