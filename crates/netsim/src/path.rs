//! Composition of network components into a platform's data path.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Nanos, SimRng};

use oskern::ftrace::FtraceSession;
use oskern::host::HostConfig;
use oskern::syscall::SyscallClass;

use crate::component::NetComponent;

/// The measured outcome of one network benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkOutcome {
    /// Achieved streaming throughput.
    pub throughput: Bandwidth,
    /// Mean request/response round-trip latency.
    pub mean_rtt: Nanos,
    /// 90th-percentile request/response latency (what Fig. 12 reports).
    pub p90_rtt: Nanos,
}

/// A platform's network path from guest socket to host NIC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkPath {
    components: Vec<NetComponent>,
    nic: Bandwidth,
    wire_latency: Nanos,
    /// Relative run-to-run throughput noise.
    pub jitter: f64,
    /// Ratio between the p90 and the mean round-trip latency.
    pub tail_factor: f64,
}

impl NetworkPath {
    /// Creates a path over the testbed NIC with the given components.
    ///
    /// The [`NetComponent::HostStack`] component is always implied and
    /// does not need to be listed.
    pub fn new(components: Vec<NetComponent>) -> Self {
        let host = HostConfig::epyc2_testbed();
        NetworkPath {
            components,
            nic: host.nic_bandwidth,
            wire_latency: host.nic_latency,
            jitter: 0.02,
            tail_factor: 1.18,
        }
    }

    /// Overrides the NIC line rate.
    pub fn with_nic(mut self, nic: Bandwidth) -> Self {
        self.nic = nic;
        self
    }

    /// Sets the run-to-run noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Sets the p90/mean tail factor (gVisor's tail is much longer).
    pub fn with_tail_factor(mut self, factor: f64) -> Self {
        self.tail_factor = factor.max(1.0);
        self
    }

    /// The components of this path (excluding the implied host stack).
    pub fn components(&self) -> &[NetComponent] {
        &self.components
    }

    /// Mean achievable streaming throughput.
    pub fn mean_throughput(&self) -> Bandwidth {
        let mut efficiency = NetComponent::HostStack.throughput_efficiency();
        for c in &self.components {
            efficiency *= c.throughput_efficiency();
        }
        self.nic.scale(efficiency.min(1.0))
    }

    /// Mean request/response round-trip latency.
    pub fn mean_rtt(&self) -> Nanos {
        let mut rtt = NetComponent::HostStack.round_trip_latency() + self.wire_latency * 2;
        for c in &self.components {
            rtt += c.round_trip_latency();
        }
        rtt
    }

    /// Returns the path whose throughput is the bottleneck of `paths`
    /// (used for Kata, whose performance the paper pins to the weakest of
    /// its bridge and QEMU legs), with latencies added across the legs.
    pub fn bottleneck_of(paths: Vec<NetworkPath>) -> NetworkPath {
        assert!(
            !paths.is_empty(),
            "bottleneck_of requires at least one path"
        );
        let min_idx = paths
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.mean_throughput()
                    .bytes_per_sec()
                    .partial_cmp(&b.mean_throughput().bytes_per_sec())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut combined = paths[min_idx].clone();
        // Latency accumulates across all legs even though throughput is
        // set by the slowest one.
        let mut extra_components = Vec::new();
        for (i, p) in paths.iter().enumerate() {
            if i != min_idx {
                extra_components.extend(p.components.iter().copied());
            }
        }
        // Extra legs contribute latency but must not further reduce
        // throughput; model them with zero-cost placeholders by keeping
        // only their latency contribution via `extra_rtt`.
        let extra_rtt: Nanos = extra_components
            .iter()
            .map(|c| c.round_trip_latency())
            .sum();
        combined.wire_latency += extra_rtt / 2;
        combined
    }

    /// Simulates one iperf3-style streaming run.
    pub fn run_stream(&self, rng: &mut SimRng) -> NetworkOutcome {
        let mean_tp = self.mean_throughput().bytes_per_sec();
        let throughput =
            Bandwidth::from_bytes_per_sec(rng.normal_pos(mean_tp, mean_tp * self.jitter));
        self.outcome_with_throughput(throughput, rng)
    }

    /// Simulates one netperf-style request/response run.
    pub fn run_request_response(&self, rng: &mut SimRng) -> NetworkOutcome {
        self.outcome_with_throughput(self.mean_throughput(), rng)
    }

    fn outcome_with_throughput(&self, throughput: Bandwidth, rng: &mut SimRng) -> NetworkOutcome {
        let mean_rtt = self.mean_rtt().as_secs_f64();
        let rtt = rng.normal_pos(mean_rtt, mean_rtt * self.jitter);
        NetworkOutcome {
            throughput,
            mean_rtt: Nanos::from_secs_f64(rtt),
            p90_rtt: Nanos::from_secs_f64(rtt * self.tail_factor),
        }
    }

    /// Records the host kernel functions a streaming run touches.
    pub fn trace_stream(&self, session: &mut FtraceSession, segments: u64) {
        session.invoke_all(NetComponent::HostStack.host_functions(), segments);
        session.invoke_all(SyscallClass::NetSend.host_functions(), segments);
        session.invoke_all(SyscallClass::NetReceive.host_functions(), segments);
        for c in &self.components {
            session.invoke_all(c.host_functions(), segments);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gbit(path: &NetworkPath) -> f64 {
        path.mean_throughput().gbit_per_sec()
    }

    #[test]
    fn native_throughput_matches_paper() {
        let native = NetworkPath::new(vec![]);
        let t = gbit(&native);
        assert!((t - 37.28).abs() < 0.5, "native {t} Gbit/s");
    }

    #[test]
    fn bridge_costs_about_ten_percent() {
        let native = gbit(&NetworkPath::new(vec![]));
        let docker = gbit(&NetworkPath::new(vec![NetComponent::Bridge]));
        let penalty = 1.0 - docker / native;
        assert!((0.07..0.13).contains(&penalty), "bridge penalty {penalty}");
    }

    #[test]
    fn tap_virtio_costs_about_a_quarter() {
        let native = gbit(&NetworkPath::new(vec![]));
        let qemu = gbit(&NetworkPath::new(vec![
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::GuestLinuxStack,
        ]));
        let penalty = 1.0 - qemu / native;
        assert!(
            (0.18..0.32).contains(&penalty),
            "hypervisor penalty {penalty}"
        );
    }

    #[test]
    fn osv_under_qemu_is_nearly_native() {
        let native = gbit(&NetworkPath::new(vec![]));
        let osv = gbit(&NetworkPath::new(vec![
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::OsvGuestStack {
                throughput_bonus: 1.26,
            },
        ]));
        assert!(osv > native * 0.94, "osv {osv} vs native {native}");
        assert!(osv < native, "osv must not exceed native");
    }

    #[test]
    fn netstack_is_an_extreme_outlier() {
        let gvisor = gbit(&NetworkPath::new(vec![
            NetComponent::Bridge,
            NetComponent::Netstack,
        ]));
        assert!(gvisor < 8.0, "gvisor {gvisor} Gbit/s");
    }

    #[test]
    fn rtt_ordering_matches_figure_12() {
        let native = NetworkPath::new(vec![]).mean_rtt();
        let docker = NetworkPath::new(vec![NetComponent::Bridge]).mean_rtt();
        let qemu = NetworkPath::new(vec![
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::GuestLinuxStack,
        ])
        .mean_rtt();
        let osv = NetworkPath::new(vec![
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::OsvGuestStack {
                throughput_bonus: 1.26,
            },
        ])
        .mean_rtt();
        let gvisor = NetworkPath::new(vec![NetComponent::Bridge, NetComponent::Netstack])
            .with_tail_factor(1.6)
            .mean_rtt();
        assert!(native < docker);
        assert!(docker < qemu);
        assert!(
            osv < qemu,
            "osv should have slightly lower latency than hypervisors"
        );
        assert!(
            gvisor.as_micros_f64() > qemu.as_micros_f64() * 2.0,
            "gvisor RTT {gvisor} vs qemu {qemu}"
        );
    }

    #[test]
    fn bottleneck_of_picks_slowest_leg_and_adds_latency() {
        let bridge_leg = NetworkPath::new(vec![NetComponent::Bridge]);
        let qemu_leg = NetworkPath::new(vec![
            NetComponent::Tap,
            NetComponent::VirtioNetVhost,
            NetComponent::GuestLinuxStack,
        ]);
        let qemu_tp = gbit(&qemu_leg);
        let kata = NetworkPath::bottleneck_of(vec![bridge_leg.clone(), qemu_leg]);
        assert!((gbit(&kata) - qemu_tp).abs() < 1e-9);
        assert!(kata.mean_rtt() > bridge_leg.mean_rtt());
    }

    #[test]
    fn runs_are_reproducible_with_same_seed() {
        let path = NetworkPath::new(vec![NetComponent::Bridge]);
        let a = path.run_stream(&mut SimRng::seed_from(5));
        let b = path.run_stream(&mut SimRng::seed_from(5));
        assert_eq!(a.throughput, b.throughput);
        assert!(a.p90_rtt >= a.mean_rtt);
    }

    #[test]
    fn trace_includes_component_functions() {
        let path = NetworkPath::new(vec![NetComponent::Bridge, NetComponent::Netstack]);
        let mut session = FtraceSession::start();
        path.trace_stream(&mut session, 100);
        let trace = session.finish();
        assert!(trace.touched("br_handle_frame"));
        assert!(trace.touched("tcp_sendmsg"));
        assert!(trace.touched("seccomp_run_filters"));
    }

    #[test]
    #[should_panic(expected = "at least one path")]
    fn bottleneck_of_empty_panics() {
        let _ = NetworkPath::bottleneck_of(vec![]);
    }
}
