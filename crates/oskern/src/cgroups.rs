//! Control groups — the resource-constraint half of container isolation.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use crate::ftrace::FtraceSession;

/// The cgroup hierarchy version in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CgroupVersion {
    /// Legacy per-controller hierarchies.
    V1,
    /// The unified hierarchy (required for unprivileged LXC containers).
    V2,
}

/// A cgroup controller a platform attaches its confined context to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CgroupController {
    /// CPU bandwidth and shares.
    Cpu,
    /// CPU accounting.
    Cpuacct,
    /// Memory limits and accounting.
    Memory,
    /// Block I/O throttling.
    Blkio,
    /// Process number limits.
    Pids,
    /// Device access control.
    Devices,
    /// Freezer.
    Freezer,
}

impl CgroupController {
    /// All controllers.
    pub fn all() -> &'static [CgroupController] {
        &[
            CgroupController::Cpu,
            CgroupController::Cpuacct,
            CgroupController::Memory,
            CgroupController::Blkio,
            CgroupController::Pids,
            CgroupController::Devices,
            CgroupController::Freezer,
        ]
    }
}

/// The cgroup configuration of a confined context.
///
/// # Example
///
/// ```
/// use oskern::cgroups::{CgroupConfig, CgroupVersion};
///
/// let cfg = CgroupConfig::container_default(CgroupVersion::V1);
/// assert!(cfg.controllers().len() >= 5);
/// assert!(cfg.setup_cost().as_micros_f64() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgroupConfig {
    version: CgroupVersion,
    controllers: Vec<CgroupController>,
    /// Per-operation accounting overhead factor applied to memory
    /// allocations (memcg charge/uncharge), as a fraction (0.01 = 1 %).
    pub memcg_overhead: f64,
    /// Optional CPU quota as a fraction of total host CPU (1.0 = no limit).
    pub cpu_quota: f64,
    /// Optional memory limit in bytes (`u64::MAX` = unlimited).
    pub memory_limit_bytes: u64,
}

impl CgroupConfig {
    /// No cgroup confinement (native execution, or a plain hypervisor
    /// process without a container runtime in front).
    pub fn none() -> Self {
        CgroupConfig {
            version: CgroupVersion::V1,
            controllers: Vec::new(),
            memcg_overhead: 0.0,
            cpu_quota: 1.0,
            memory_limit_bytes: u64::MAX,
        }
    }

    /// The default controller set a container runtime attaches.
    pub fn container_default(version: CgroupVersion) -> Self {
        CgroupConfig {
            version,
            controllers: vec![
                CgroupController::Cpu,
                CgroupController::Cpuacct,
                CgroupController::Memory,
                CgroupController::Blkio,
                CgroupController::Pids,
                CgroupController::Devices,
            ],
            memcg_overhead: 0.008,
            cpu_quota: 1.0,
            memory_limit_bytes: u64::MAX,
        }
    }

    /// The cgroup version in use.
    pub fn version(&self) -> CgroupVersion {
        self.version
    }

    /// Attached controllers.
    pub fn controllers(&self) -> &[CgroupController] {
        &self.controllers
    }

    /// Whether any controllers are attached.
    pub fn is_confined(&self) -> bool {
        !self.controllers.is_empty()
    }

    /// Latency of creating the cgroup and attaching the task to every
    /// controller (writes into the cgroup filesystem).
    pub fn setup_cost(&self) -> Nanos {
        let per_controller = match self.version {
            CgroupVersion::V1 => Nanos::from_micros(180),
            CgroupVersion::V2 => Nanos::from_micros(120),
        };
        per_controller * self.controllers.len() as u64
    }

    /// Records the host kernel functions touched during setup.
    pub fn trace_setup(&self, session: &mut FtraceSession) {
        if self.controllers.is_empty() {
            return;
        }
        session.invoke_all(
            &[
                "cgroup_mkdir",
                "cgroup_procs_write",
                "cgroup_attach_task",
                "cgroup_migrate_execute",
                "css_set_move_task",
                "cgroup_file_write",
                "cgroup_kn_lock_live",
            ],
            self.controllers.len() as u64,
        );
    }

    /// Records the steady-state accounting functions charged while a
    /// memory-heavy workload runs under this cgroup.
    pub fn trace_runtime_accounting(&self, session: &mut FtraceSession, allocations: u64) {
        if self.controllers.contains(&CgroupController::Memory) && allocations > 0 {
            session.invoke_all(
                &[
                    "mem_cgroup_charge",
                    "try_charge_memcg",
                    "mem_cgroup_uncharge",
                ],
                allocations,
            );
        }
        if self.controllers.contains(&CgroupController::Cpuacct) && allocations > 0 {
            session.invoke("cpuacct_charge", allocations);
        }
    }
}

impl Default for CgroupConfig {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_unconfined_and_free() {
        let cfg = CgroupConfig::none();
        assert!(!cfg.is_confined());
        assert_eq!(cfg.setup_cost(), Nanos::ZERO);
    }

    #[test]
    fn container_default_attaches_core_controllers() {
        let cfg = CgroupConfig::container_default(CgroupVersion::V1);
        assert!(cfg.is_confined());
        assert!(cfg.controllers().contains(&CgroupController::Memory));
        assert!(cfg.controllers().contains(&CgroupController::Cpu));
    }

    #[test]
    fn v2_setup_is_cheaper_than_v1() {
        let v1 = CgroupConfig::container_default(CgroupVersion::V1);
        let v2 = CgroupConfig::container_default(CgroupVersion::V2);
        assert!(v2.setup_cost() < v1.setup_cost());
    }

    #[test]
    fn runtime_accounting_only_when_memory_controller_attached() {
        let mut session = FtraceSession::start();
        CgroupConfig::none().trace_runtime_accounting(&mut session, 100);
        assert_eq!(session.trace().distinct_functions(), 0);

        let mut session = FtraceSession::start();
        CgroupConfig::container_default(CgroupVersion::V1)
            .trace_runtime_accounting(&mut session, 100);
        assert!(session.trace().touched("mem_cgroup_charge"));
    }

    #[test]
    fn setup_trace_records_cgroup_functions() {
        let mut session = FtraceSession::start();
        CgroupConfig::container_default(CgroupVersion::V2).trace_setup(&mut session);
        assert!(session.trace().touched("cgroup_attach_task"));
    }
}
