//! An `ftrace`-like host kernel function tracer.
//!
//! The paper obtains its HAP numbers by running `trace-cmd` (the ftrace
//! front-end) on the host while each platform executes a workload suite,
//! then counting which host kernel functions were invoked. In the
//! simulation every component that would cause host kernel work reports the
//! functions it touches to an [`FtraceSession`]; the resulting
//! [`KernelTrace`] is what the `hap` crate scores.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::kernel_fn::{KernelFunctionRegistry, KernelSubsystem};

/// A recorded trace: per-function invocation counts.
///
/// # Example
///
/// ```
/// use oskern::ftrace::KernelTrace;
///
/// let mut t = KernelTrace::new();
/// t.hit("tcp_sendmsg", 10);
/// t.hit("tcp_sendmsg", 5);
/// t.hit("schedule", 1);
/// assert_eq!(t.distinct_functions(), 2);
/// assert_eq!(t.total_invocations(), 16);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelTrace {
    counts: BTreeMap<String, u64>,
}

impl KernelTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        KernelTrace::default()
    }

    /// Records `count` invocations of `function`.
    pub fn hit(&mut self, function: &str, count: u64) {
        if count == 0 {
            return;
        }
        *self.counts.entry(function.to_string()).or_insert(0) += count;
    }

    /// Merges another trace into this one.
    pub fn merge(&mut self, other: &KernelTrace) {
        for (name, count) in &other.counts {
            *self.counts.entry(name.clone()).or_insert(0) += count;
        }
    }

    /// Number of distinct functions hit — the core HAP quantity.
    pub fn distinct_functions(&self) -> usize {
        self.counts.len()
    }

    /// Total number of invocations across all functions.
    pub fn total_invocations(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Invocation count for one function (0 if never hit).
    pub fn count(&self, function: &str) -> u64 {
        self.counts.get(function).copied().unwrap_or(0)
    }

    /// Whether the given function was hit at least once.
    pub fn touched(&self, function: &str) -> bool {
        self.count(function) > 0
    }

    /// Iterates over `(function, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Splits the distinct-function count per kernel subsystem using the
    /// given registry; unknown symbols are ignored.
    pub fn distinct_by_subsystem(
        &self,
        registry: &KernelFunctionRegistry,
    ) -> BTreeMap<KernelSubsystem, usize> {
        let mut out = BTreeMap::new();
        for name in self.counts.keys() {
            if let Some(f) = registry.get(name) {
                *out.entry(f.subsystem).or_insert(0) += 1;
            }
        }
        out
    }
}

/// A live tracing session components report into.
///
/// A session validates function names against the registry (in debug
/// builds) so platform models cannot silently typo a symbol and thereby
/// underreport their attack profile.
#[derive(Debug)]
pub struct FtraceSession {
    registry: KernelFunctionRegistry,
    trace: KernelTrace,
    enabled: bool,
}

impl FtraceSession {
    /// Starts a new tracing session against the standard registry.
    pub fn start() -> Self {
        FtraceSession {
            registry: KernelFunctionRegistry::standard(),
            trace: KernelTrace::new(),
            enabled: true,
        }
    }

    /// Starts a session that ignores all reported hits (tracing disabled).
    pub fn disabled() -> Self {
        FtraceSession {
            registry: KernelFunctionRegistry::standard(),
            trace: KernelTrace::new(),
            enabled: false,
        }
    }

    /// Whether hits are currently recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records `count` invocations of `function`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `function` is not in the standard
    /// registry; this catches typos in platform models early.
    pub fn invoke(&mut self, function: &str, count: u64) {
        debug_assert!(
            self.registry.contains(function),
            "unknown kernel function reported to ftrace: {function}"
        );
        if self.enabled {
            self.trace.hit(function, count);
        }
    }

    /// Records one invocation of each function in the slice.
    pub fn invoke_all(&mut self, functions: &[&str], count: u64) {
        for f in functions {
            self.invoke(f, count);
        }
    }

    /// Stops the session and returns the collected trace.
    pub fn finish(self) -> KernelTrace {
        self.trace
    }

    /// Read-only view of the trace collected so far.
    pub fn trace(&self) -> &KernelTrace {
        &self.trace
    }

    /// The registry the session validates against.
    pub fn registry(&self) -> &KernelFunctionRegistry {
        &self.registry
    }
}

impl Default for FtraceSession {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_accumulate_and_merge() {
        let mut a = KernelTrace::new();
        a.hit("schedule", 3);
        a.hit("vfs_read", 2);
        let mut b = KernelTrace::new();
        b.hit("schedule", 1);
        b.hit("tcp_sendmsg", 7);
        a.merge(&b);
        assert_eq!(a.count("schedule"), 4);
        assert_eq!(a.count("tcp_sendmsg"), 7);
        assert_eq!(a.distinct_functions(), 3);
        assert_eq!(a.total_invocations(), 13);
    }

    #[test]
    fn zero_count_hits_are_ignored() {
        let mut t = KernelTrace::new();
        t.hit("schedule", 0);
        assert_eq!(t.distinct_functions(), 0);
        assert!(!t.touched("schedule"));
    }

    #[test]
    fn session_collects_and_finishes() {
        let mut s = FtraceSession::start();
        s.invoke("kvm_vcpu_ioctl", 100);
        s.invoke_all(&["tcp_sendmsg", "tcp_recvmsg"], 5);
        let trace = s.finish();
        assert_eq!(trace.count("kvm_vcpu_ioctl"), 100);
        assert_eq!(trace.distinct_functions(), 3);
    }

    #[test]
    fn disabled_session_records_nothing() {
        let mut s = FtraceSession::disabled();
        assert!(!s.is_enabled());
        s.invoke("schedule", 10);
        assert_eq!(s.trace().distinct_functions(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown kernel function")]
    fn unknown_function_panics_in_debug() {
        let mut s = FtraceSession::start();
        s.invoke("totally_made_up_symbol", 1);
    }

    #[test]
    fn subsystem_breakdown_uses_registry() {
        let mut s = FtraceSession::start();
        s.invoke("tcp_sendmsg", 1);
        s.invoke("tcp_recvmsg", 1);
        s.invoke("schedule", 1);
        let trace = s.finish();
        let reg = KernelFunctionRegistry::standard();
        let by_sub = trace.distinct_by_subsystem(&reg);
        assert_eq!(by_sub.get(&KernelSubsystem::Network), Some(&2));
        assert_eq!(by_sub.get(&KernelSubsystem::Scheduling), Some(&1));
    }
}
