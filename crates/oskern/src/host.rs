//! Description of the host testbed machine.
//!
//! All experiments in the paper ran on a dual-socket AMD EPYC2 7542 (32
//! cores / 64 threads per socket), 256 GiB of RAM, a dedicated fast NVMe
//! SSD, and Ubuntu Server 20.04. Every cost model in the workspace reads
//! its hardware constants from a [`HostConfig`] so that the calibration is
//! explicit and a different testbed can be described without touching the
//! models.

use serde::{Deserialize, Serialize};
use simcore::{Bandwidth, Nanos};

/// The host machine the isolation platforms run on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostConfig {
    /// Number of CPU sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware threads per core (SMT).
    pub threads_per_core: usize,
    /// Total RAM in bytes.
    pub memory_bytes: u64,
    /// Base clock frequency in GHz (used to convert cycles to time).
    pub base_clock_ghz: f64,
    /// Peak DRAM bandwidth per socket.
    pub dram_bandwidth: Bandwidth,
    /// DRAM random-access latency (row miss, local socket).
    pub dram_latency: Nanos,
    /// NVMe sequential bandwidth.
    pub nvme_bandwidth: Bandwidth,
    /// NVMe 4 KiB random-read latency.
    pub nvme_read_latency: Nanos,
    /// NVMe sustainable 4 KiB IOPS.
    pub nvme_iops: u64,
    /// NIC line rate (the iperf3 peer is directly attached).
    pub nic_bandwidth: Bandwidth,
    /// One-way wire latency to the directly connected load generator.
    pub nic_latency: Nanos,
}

impl HostConfig {
    /// The paper's testbed: dual-socket AMD EPYC2 7542, 256 GiB RAM, fast
    /// NVMe, a NIC able to sustain ~37 Gbit/s of TCP goodput.
    pub fn epyc2_testbed() -> Self {
        HostConfig {
            sockets: 2,
            cores_per_socket: 32,
            threads_per_core: 2,
            memory_bytes: 256 * (1 << 30),
            base_clock_ghz: 2.9,
            dram_bandwidth: Bandwidth::from_mib_per_sec(85_000.0),
            dram_latency: Nanos::from_nanos(95),
            nvme_bandwidth: Bandwidth::from_mib_per_sec(3_200.0),
            nvme_read_latency: Nanos::from_micros(85),
            nvme_iops: 600_000,
            nic_bandwidth: Bandwidth::from_gbit_per_sec(40.0),
            nic_latency: Nanos::from_micros(18),
        }
    }

    /// Total hardware threads across the machine.
    pub fn total_threads(&self) -> usize {
        self.sockets * self.cores_per_socket * self.threads_per_core
    }

    /// Total physical cores across the machine.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Time for one CPU cycle.
    pub fn cycle_time(&self) -> Nanos {
        Nanos::from_secs_f64(1.0 / (self.base_clock_ghz * 1e9))
    }

    /// Converts a cycle count into time on this host.
    pub fn cycles_to_time(&self, cycles: u64) -> Nanos {
        Nanos::from_secs_f64(cycles as f64 / (self.base_clock_ghz * 1e9))
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        Self::epyc2_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_matches_paper_description() {
        let h = HostConfig::epyc2_testbed();
        assert_eq!(h.total_cores(), 64);
        assert_eq!(h.total_threads(), 128);
        assert_eq!(h.memory_bytes, 256 * (1 << 30));
        assert!(h.nic_bandwidth.gbit_per_sec() >= 37.0);
    }

    #[test]
    fn cycle_conversion_is_consistent() {
        let h = HostConfig::epyc2_testbed();
        let t = h.cycles_to_time(2_900_000_000);
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!(h.cycle_time().as_nanos() <= 1);
    }

    #[test]
    fn default_is_the_testbed() {
        assert_eq!(HostConfig::default(), HostConfig::epyc2_testbed());
    }
}
