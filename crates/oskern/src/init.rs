//! Init systems and their boot phases.
//!
//! The start-up experiments (Figs. 13–15) measure the end-to-end time from
//! process creation to termination. A large part of the differences between
//! platforms comes from the init system: Docker's `tini` is tiny, LXC boots
//! a full `systemd`, Kata's guest runs systemd just to start the
//! `kata-agent`, and the hypervisor measurements use an init patched to
//! exit immediately.

use serde::{Deserialize, Serialize};
use simcore::{Nanos, SimRng};

/// One phase of an init sequence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootPhase {
    /// Name of the phase (for reports and traces).
    pub name: String,
    /// Mean duration of the phase.
    pub mean: Nanos,
    /// Standard deviation of the phase duration.
    pub std_dev: Nanos,
}

impl BootPhase {
    /// Creates a phase with the given mean and standard deviation.
    pub fn new(name: &str, mean: Nanos, std_dev: Nanos) -> Self {
        BootPhase {
            name: name.to_string(),
            mean,
            std_dev,
        }
    }

    /// Samples a duration for this phase.
    pub fn sample(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_secs_f64(rng.normal_pos(self.mean.as_secs_f64(), self.std_dev.as_secs_f64()))
    }
}

/// The init system running as PID 1 inside the isolated context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitSystem {
    /// Docker's default minimal init (`tini`): reap zombies, exec the
    /// entrypoint, nothing else.
    Tini,
    /// A full `systemd` boot (LXC default).
    Systemd,
    /// systemd trimmed to only start the kata-agent (Kata's Clear Linux
    /// mini-OS guest).
    KataMiniOs,
    /// An init patched to terminate immediately after starting — the
    /// measurement harness used for hypervisors and LXC in the paper.
    PatchedImmediateExit,
    /// No init at all: OSv jumps straight into the application (or exits
    /// immediately when invoked without a program).
    OsvRuntime,
}

impl InitSystem {
    /// The boot phases executed by this init system, in order.
    pub fn phases(self) -> Vec<BootPhase> {
        match self {
            InitSystem::Tini => vec![
                BootPhase::new("tini-start", Nanos::from_millis(2), Nanos::from_micros(300)),
                BootPhase::new(
                    "entrypoint-exec",
                    Nanos::from_millis(3),
                    Nanos::from_micros(500),
                ),
            ],
            InitSystem::Systemd => vec![
                BootPhase::new(
                    "systemd-init",
                    Nanos::from_millis(120),
                    Nanos::from_millis(15),
                ),
                BootPhase::new(
                    "unit-graph",
                    Nanos::from_millis(260),
                    Nanos::from_millis(30),
                ),
                BootPhase::new(
                    "basic-target",
                    Nanos::from_millis(180),
                    Nanos::from_millis(25),
                ),
                BootPhase::new(
                    "multi-user-target",
                    Nanos::from_millis(90),
                    Nanos::from_millis(15),
                ),
            ],
            InitSystem::KataMiniOs => vec![
                BootPhase::new(
                    "systemd-init",
                    Nanos::from_millis(35),
                    Nanos::from_millis(6),
                ),
                BootPhase::new(
                    "kata-agent-start",
                    Nanos::from_millis(55),
                    Nanos::from_millis(8),
                ),
                BootPhase::new("ttrpc-ready", Nanos::from_millis(18), Nanos::from_millis(4)),
            ],
            InitSystem::PatchedImmediateExit => vec![BootPhase::new(
                "patched-init-exit",
                Nanos::from_millis(1),
                Nanos::from_micros(200),
            )],
            InitSystem::OsvRuntime => vec![BootPhase::new(
                "osv-app-start",
                Nanos::from_millis(2),
                Nanos::from_micros(400),
            )],
        }
    }

    /// Samples the total init duration.
    pub fn sample_total(self, rng: &mut SimRng) -> Nanos {
        self.phases().iter().map(|p| p.sample(rng)).sum()
    }

    /// Mean total init duration.
    pub fn mean_total(self) -> Nanos {
        self.phases().iter().map(|p| p.mean).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systemd_is_much_slower_than_tini() {
        let systemd = InitSystem::Systemd.mean_total();
        let tini = InitSystem::Tini.mean_total();
        assert!(
            systemd.as_millis_f64() > 10.0 * tini.as_millis_f64(),
            "systemd {systemd} vs tini {tini}"
        );
        assert!(systemd.as_millis_f64() > 500.0);
    }

    #[test]
    fn patched_init_is_nearly_free() {
        assert!(
            InitSystem::PatchedImmediateExit
                .mean_total()
                .as_millis_f64()
                < 2.0
        );
    }

    #[test]
    fn kata_mini_os_faster_than_full_systemd() {
        assert!(InitSystem::KataMiniOs.mean_total() < InitSystem::Systemd.mean_total());
    }

    #[test]
    fn sampling_is_reproducible_and_positive() {
        let mut a = SimRng::seed_from(11);
        let mut b = SimRng::seed_from(11);
        for init in [
            InitSystem::Tini,
            InitSystem::Systemd,
            InitSystem::KataMiniOs,
            InitSystem::PatchedImmediateExit,
            InitSystem::OsvRuntime,
        ] {
            let x = init.sample_total(&mut a);
            let y = init.sample_total(&mut b);
            assert_eq!(x, y);
            assert!(x > Nanos::ZERO);
        }
    }

    #[test]
    fn phases_are_nonempty_and_named() {
        for init in [
            InitSystem::Tini,
            InitSystem::Systemd,
            InitSystem::KataMiniOs,
            InitSystem::PatchedImmediateExit,
            InitSystem::OsvRuntime,
        ] {
            let phases = init.phases();
            assert!(!phases.is_empty());
            for p in &phases {
                assert!(!p.name.is_empty());
            }
        }
    }
}
