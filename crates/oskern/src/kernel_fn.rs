//! Registry of host kernel functions.
//!
//! The HAP experiment (Fig. 18) traces which host kernel functions a
//! platform invokes while running a workload suite. This module provides a
//! canonical registry of function names drawn from the subsystems that the
//! isolation platforms exercise: syscall entry, scheduling, memory
//! management, VFS, the block layer, networking, KVM, namespaces, cgroups,
//! signal delivery and timekeeping.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The kernel subsystem a function belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelSubsystem {
    /// Syscall entry/exit and architecture glue.
    Entry,
    /// Process and thread scheduling (CFS).
    Scheduling,
    /// Memory management: page faults, mmap, page allocation, TLB.
    MemoryManagement,
    /// Virtual file system layer.
    Vfs,
    /// Block layer and NVMe driver.
    Block,
    /// Network stack: sockets, TCP/IP, bridges, TAP.
    Network,
    /// KVM and hardware virtualization support.
    Kvm,
    /// Namespaces (the container visibility mechanism).
    Namespaces,
    /// Control groups (the container resource mechanism).
    Cgroups,
    /// Signal delivery.
    Signals,
    /// Timers and timekeeping.
    Time,
    /// Inter-process communication (pipes, unix sockets, vsock).
    Ipc,
    /// Security hooks: seccomp, LSM, capabilities.
    Security,
}

impl KernelSubsystem {
    /// All subsystems, in a stable order.
    pub fn all() -> &'static [KernelSubsystem] {
        &[
            KernelSubsystem::Entry,
            KernelSubsystem::Scheduling,
            KernelSubsystem::MemoryManagement,
            KernelSubsystem::Vfs,
            KernelSubsystem::Block,
            KernelSubsystem::Network,
            KernelSubsystem::Kvm,
            KernelSubsystem::Namespaces,
            KernelSubsystem::Cgroups,
            KernelSubsystem::Signals,
            KernelSubsystem::Time,
            KernelSubsystem::Ipc,
            KernelSubsystem::Security,
        ]
    }

    /// Short human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            KernelSubsystem::Entry => "entry",
            KernelSubsystem::Scheduling => "sched",
            KernelSubsystem::MemoryManagement => "mm",
            KernelSubsystem::Vfs => "vfs",
            KernelSubsystem::Block => "block",
            KernelSubsystem::Network => "net",
            KernelSubsystem::Kvm => "kvm",
            KernelSubsystem::Namespaces => "ns",
            KernelSubsystem::Cgroups => "cgroup",
            KernelSubsystem::Signals => "signal",
            KernelSubsystem::Time => "time",
            KernelSubsystem::Ipc => "ipc",
            KernelSubsystem::Security => "security",
        }
    }
}

/// A host kernel function known to the registry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KernelFunction {
    /// The function symbol name (e.g. `do_sys_openat2`).
    pub name: &'static str,
    /// The subsystem the function belongs to.
    pub subsystem: KernelSubsystem,
}

macro_rules! kfuncs {
    ($($subsystem:ident => [$($name:literal),* $(,)?]),* $(,)?) => {
        &[
            $($(KernelFunction { name: $name, subsystem: KernelSubsystem::$subsystem },)*)*
        ]
    };
}

/// The canonical list of host kernel functions the simulation can report.
///
/// The set is a representative subset of the symbols a real
/// `trace-cmd record -p function` session observes while running the
/// paper's workload suite on Linux 5.x; it is large enough that the HAP
/// ordering between platforms is driven by which *subsystems* each platform
/// architecture touches.
pub static KERNEL_FUNCTIONS: &[KernelFunction] = kfuncs![
    Entry => [
        "entry_SYSCALL_64", "do_syscall_64", "syscall_exit_to_user_mode",
        "exit_to_user_mode_prepare", "syscall_trace_enter", "ret_from_fork",
        "x64_sys_call", "common_interrupt", "asm_exc_page_fault",
    ],
    Scheduling => [
        "schedule", "__schedule", "pick_next_task_fair", "enqueue_task_fair",
        "dequeue_task_fair", "update_curr", "put_prev_entity", "set_next_entity",
        "check_preempt_wakeup", "try_to_wake_up", "wake_up_process",
        "select_task_rq_fair", "load_balance", "newidle_balance",
        "update_load_avg", "task_tick_fair", "scheduler_tick", "sched_clock",
        "finish_task_switch", "context_switch", "prepare_task_switch",
        "do_futex", "futex_wait", "futex_wake", "hrtick_update",
        "sched_setaffinity", "yield_task_fair", "cpuacct_charge",
    ],
    MemoryManagement => [
        "handle_mm_fault", "__handle_mm_fault", "do_user_addr_fault",
        "do_anonymous_page", "do_fault", "filemap_map_pages",
        "alloc_pages_vma", "__alloc_pages", "get_page_from_freelist",
        "free_unref_page", "lru_cache_add", "page_add_new_anon_rmap",
        "do_mmap", "mmap_region", "vm_mmap_pgoff", "do_brk_flags",
        "do_munmap", "unmap_region", "zap_pte_range", "tlb_flush_mmu",
        "flush_tlb_mm_range", "native_flush_tlb_one_user",
        "change_protection", "mprotect_fixup", "do_madvise",
        "khugepaged_scan_mm_slot", "hugetlb_fault", "do_huge_pmd_anonymous_page",
        "ksm_scan_thread", "try_to_merge_with_ksm_page",
        "copy_page_range", "wp_page_copy", "page_fault_oops",
        "shmem_getpage_gfp", "vma_link", "find_vma",
    ],
    Vfs => [
        "do_sys_openat2", "path_openat", "link_path_walk", "lookup_fast",
        "vfs_read", "vfs_write", "ksys_read", "ksys_write", "new_sync_read",
        "new_sync_write", "generic_file_read_iter", "generic_file_write_iter",
        "filemap_read", "generic_perform_write", "vfs_fsync_range",
        "do_iter_readv_writev", "iterate_dir", "vfs_statx", "do_faccessat",
        "do_sys_ftruncate", "do_fallocate", "vfs_fallocate",
        "do_filp_open", "terminate_walk", "dput", "mntput_no_expire",
        "fput", "filp_close", "do_dentry_open", "generic_file_llseek",
        "pipe_read", "pipe_write", "eventfd_write", "eventfd_read",
        "ep_poll", "do_epoll_wait", "do_epoll_ctl", "io_submit_one",
        "aio_read", "aio_write", "io_getevents", "iomap_dio_rw",
        "ovl_open", "ovl_read_iter", "ovl_write_iter", "ovl_lookup",
        "fuse_simple_request", "fuse_file_read_iter", "fuse_file_write_iter",
        "fuse_do_getattr", "v9fs_vfs_lookup", "v9fs_file_read_iter",
        "v9fs_file_write_iter", "p9_client_rpc", "p9_client_read",
        "p9_client_write", "zpl_read", "zpl_write", "zfs_read", "zfs_write",
    ],
    Block => [
        "submit_bio", "submit_bio_noacct", "blk_mq_submit_bio",
        "blk_mq_dispatch_rq_list", "blk_mq_run_hw_queue", "blk_mq_end_request",
        "nvme_queue_rq", "nvme_irq", "nvme_complete_rq", "nvme_setup_cmd",
        "blk_account_io_start", "blk_account_io_done", "bio_alloc_bioset",
        "bio_endio", "blkdev_direct_IO", "blkdev_read_iter", "blkdev_write_iter",
        "loop_queue_rq", "lo_rw_aio", "do_blockdev_direct_IO",
        "sbitmap_get", "blk_mq_get_tag", "elv_rb_add", "dd_insert_requests",
    ],
    Network => [
        "sock_sendmsg", "sock_recvmsg", "__sys_sendto", "__sys_recvfrom",
        "__sys_sendmsg", "__sys_recvmsg", "tcp_sendmsg", "tcp_sendmsg_locked",
        "tcp_recvmsg", "tcp_write_xmit", "tcp_transmit_skb", "tcp_v4_rcv",
        "tcp_rcv_established", "tcp_ack", "tcp_clean_rtx_queue",
        "ip_queue_xmit", "ip_output", "ip_finish_output2", "ip_rcv",
        "ip_local_deliver", "__netif_receive_skb_core", "netif_receive_skb",
        "dev_queue_xmit", "__dev_queue_xmit", "dev_hard_start_xmit",
        "net_rx_action", "napi_complete_done", "napi_gro_receive",
        "br_handle_frame", "br_forward", "br_dev_xmit", "br_nf_pre_routing",
        "tun_net_xmit", "tun_get_user", "tun_put_user", "tun_chr_read_iter",
        "tun_chr_write_iter", "tap_handle_frame",
        "vhost_worker", "handle_tx_kick", "handle_rx_kick", "vhost_signal",
        "skb_copy_datagram_iter", "__skb_clone", "kfree_skb", "consume_skb",
        "alloc_skb", "__napi_alloc_skb", "sk_stream_alloc_skb",
        "inet_sendmsg", "inet_recvmsg", "sock_def_readable", "sk_wait_data",
        "nf_hook_slow", "ipt_do_table", "netlink_sendmsg", "netlink_recvmsg",
        "unix_stream_sendmsg", "unix_stream_recvmsg",
        "vsock_stream_sendmsg", "vsock_stream_recvmsg", "virtio_transport_send_pkt",
        "e1000_xmit_frame", "mlx5e_xmit",
    ],
    Kvm => [
        "kvm_arch_vcpu_ioctl_run", "vcpu_enter_guest", "vmx_vcpu_run",
        "vcpu_run", "kvm_vcpu_ioctl", "kvm_dev_ioctl", "kvm_vm_ioctl",
        "kvm_arch_vm_ioctl", "kvm_vm_ioctl_create_vcpu",
        "kvm_mmu_page_fault", "kvm_tdp_page_fault", "direct_page_fault",
        "kvm_set_memory_region", "kvm_vm_ioctl_set_memory_region",
        "__kvm_set_memory_region", "kvm_emulate_io", "kvm_fast_pio",
        "handle_ept_violation", "handle_ept_misconfig", "handle_io",
        "kvm_emulate_cpuid", "kvm_emulate_hypercall", "kvm_apic_send_ipi",
        "kvm_lapic_reg_write", "kvm_set_msr_common", "kvm_get_msr_common",
        "vmx_handle_exit", "vmx_flush_tlb_current", "kvm_mmu_load",
        "kvm_irq_delivery_to_apic", "ioapic_write_indirect",
        "kvm_vcpu_kick", "kvm_vcpu_block", "kvm_vcpu_halt",
        "kvm_page_track_write", "mmu_try_to_unsync_pages",
        "kvm_mmu_notifier_invalidate_range_start", "kvm_unmap_gfn_range",
        "eventfd_signal", "irqfd_wakeup", "ioeventfd_write",
    ],
    Namespaces => [
        "copy_namespaces", "create_new_namespaces", "unshare_nsproxy_namespaces",
        "copy_pid_ns", "copy_net_ns", "copy_utsname", "copy_ipcs",
        "copy_mnt_ns", "create_user_ns", "switch_task_namespaces",
        "setns", "pidns_get", "mntns_install", "netns_get", "proc_ns_file",
        "alloc_pid", "free_pid", "pid_nr_ns",
    ],
    Cgroups => [
        "cgroup_attach_task", "cgroup_migrate_execute", "cgroup_procs_write",
        "cgroup_mkdir", "cgroup_rmdir", "css_set_move_task",
        "mem_cgroup_charge", "mem_cgroup_try_charge_pages", "try_charge_memcg",
        "mem_cgroup_uncharge", "cpu_cgroup_attach", "tg_set_cfs_bandwidth",
        "throttle_cfs_rq", "unthrottle_cfs_rq", "blkcg_print_stat",
        "cgroup_file_write", "cgroup_kn_lock_live",
    ],
    Signals => [
        "do_signal", "get_signal", "send_signal_locked", "__send_signal_locked",
        "do_send_sig_info", "kill_pid_info", "signal_wake_up_state",
        "restore_sigcontext", "setup_rt_frame", "ptrace_stop", "ptrace_notify",
        "ptrace_request", "ptrace_attach", "ptrace_check_attach",
    ],
    Time => [
        "hrtimer_start_range_ns", "hrtimer_interrupt", "hrtimer_wakeup",
        "do_nanosleep", "hrtimer_nanosleep", "ktime_get", "ktime_get_ts64",
        "clock_gettime", "posix_ktime_get_ts", "tick_sched_timer",
        "update_wall_time", "timekeeping_update", "read_tsc",
        "do_timer_settime", "timerfd_read", "timerfd_settime",
    ],
    Ipc => [
        "pipe_wait_readable", "do_pipe2", "unix_dgram_sendmsg",
        "unix_dgram_recvmsg", "shmem_file_setup", "ksys_shmget", "do_shmat",
        "mq_timedsend", "mq_timedreceive", "do_msgsnd", "do_msgrcv",
        "semctl_main", "do_semtimedop",
    ],
    Security => [
        "security_file_open", "security_file_permission", "security_mmap_file",
        "security_socket_sendmsg", "security_socket_recvmsg",
        "security_task_kill", "security_capable", "cap_capable",
        "seccomp_filter", "__seccomp_filter", "seccomp_run_filters",
        "apparmor_file_permission", "apparmor_socket_sendmsg",
        "audit_filter_syscall", "ns_capable",
    ],
];

/// A registry indexing [`KERNEL_FUNCTIONS`] by name and by subsystem.
///
/// # Example
///
/// ```
/// use oskern::kernel_fn::{KernelFunctionRegistry, KernelSubsystem};
///
/// let reg = KernelFunctionRegistry::standard();
/// assert!(reg.contains("tcp_sendmsg"));
/// assert!(reg.functions_in(KernelSubsystem::Kvm).len() > 20);
/// ```
#[derive(Debug, Clone)]
pub struct KernelFunctionRegistry {
    by_name: BTreeMap<&'static str, KernelFunction>,
}

impl KernelFunctionRegistry {
    /// Builds the standard registry from [`KERNEL_FUNCTIONS`].
    pub fn standard() -> Self {
        let mut by_name = BTreeMap::new();
        for f in KERNEL_FUNCTIONS {
            by_name.insert(f.name, f.clone());
        }
        KernelFunctionRegistry { by_name }
    }

    /// Number of functions known to the registry.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Whether the registry is empty (never true for the standard registry).
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Whether a function with the given symbol name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// Looks up a function by symbol name.
    pub fn get(&self, name: &str) -> Option<&KernelFunction> {
        self.by_name.get(name)
    }

    /// Returns every function in the given subsystem.
    pub fn functions_in(&self, subsystem: KernelSubsystem) -> Vec<&KernelFunction> {
        self.by_name
            .values()
            .filter(|f| f.subsystem == subsystem)
            .collect()
    }

    /// Iterates over all registered functions in name order.
    pub fn iter(&self) -> impl Iterator<Item = &KernelFunction> {
        self.by_name.values()
    }
}

impl Default for KernelFunctionRegistry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicate_names() {
        let reg = KernelFunctionRegistry::standard();
        assert_eq!(reg.len(), KERNEL_FUNCTIONS.len(), "duplicate symbol names");
    }

    #[test]
    fn registry_is_reasonably_large() {
        let reg = KernelFunctionRegistry::standard();
        assert!(reg.len() >= 250, "only {} functions registered", reg.len());
    }

    #[test]
    fn every_subsystem_is_populated() {
        let reg = KernelFunctionRegistry::standard();
        for sub in KernelSubsystem::all() {
            assert!(
                !reg.functions_in(*sub).is_empty(),
                "subsystem {sub:?} has no functions"
            );
        }
    }

    #[test]
    fn lookup_by_name_returns_right_subsystem() {
        let reg = KernelFunctionRegistry::standard();
        assert_eq!(
            reg.get("kvm_arch_vcpu_ioctl_run").unwrap().subsystem,
            KernelSubsystem::Kvm
        );
        assert_eq!(
            reg.get("tcp_sendmsg").unwrap().subsystem,
            KernelSubsystem::Network
        );
        assert!(reg.get("not_a_kernel_function").is_none());
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            KernelSubsystem::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), KernelSubsystem::all().len());
    }
}
