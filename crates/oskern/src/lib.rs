//! # oskern
//!
//! A behavioural model of the *host* Linux kernel as seen by the isolation
//! platforms studied in the paper.
//!
//! The crate does not execute real kernel code; it models the pieces of the
//! kernel whose behaviour the paper's experiments depend on:
//!
//! * [`kernel_fn`] — a registry of host kernel functions grouped by
//!   subsystem. The Horizontal Attack Profile (HAP) metric counts how many
//!   of these functions a platform touches while running a workload.
//! * [`ftrace`] — an `ftrace`/`trace-cmd`-like tracer that components call
//!   into whenever they would cause the host kernel to execute a function.
//! * [`syscall`] — the syscall classes issued by guests and the host kernel
//!   functions / dispatch costs behind each class.
//! * [`namespaces`] and [`cgroups`] — the container isolation primitives
//!   (clone flags, cgroup controllers) with their setup costs.
//! * [`sched`] — thread scheduling models: the host CFS scheduler, and the
//!   custom schedulers used by OSv and gVisor which the paper identifies as
//!   a source of overhead for multi-threaded workloads.
//! * [`pagecache`] — the host/guest page-cache model behind the fio caching
//!   pitfall discussed in Section 3.3 of the paper.
//! * [`init`] — init systems (tini, systemd, patched immediate-exit init)
//!   whose boot phases dominate the start-up time experiments.
//! * [`host`] — the description of the testbed machine (dual-socket AMD
//!   EPYC2 7542, 256 GiB RAM, NVMe, fast NIC).

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cgroups;
pub mod ftrace;
pub mod host;
pub mod init;
pub mod kernel_fn;
pub mod namespaces;
pub mod pagecache;
pub mod sched;
pub mod syscall;

pub use cgroups::{CgroupConfig, CgroupController, CgroupVersion};
pub use ftrace::{FtraceSession, KernelTrace};
pub use host::HostConfig;
pub use init::{BootPhase, InitSystem};
pub use kernel_fn::{KernelFunction, KernelFunctionRegistry, KernelSubsystem};
pub use namespaces::{NamespaceKind, NamespaceSet};
pub use pagecache::PageCache;
pub use sched::{CfsScheduler, OsvScheduler, SchedulerModel, SentryScheduler, ThreadScheduler};
pub use syscall::{SyscallClass, SyscallCost, SyscallTable};
