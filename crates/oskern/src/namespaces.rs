//! Linux namespaces — the visibility-reduction half of container isolation.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use crate::ftrace::FtraceSession;

/// A kind of Linux namespace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum NamespaceKind {
    /// Mount namespace (`CLONE_NEWNS`).
    Mount,
    /// PID namespace (`CLONE_NEWPID`).
    Pid,
    /// Network namespace (`CLONE_NEWNET`).
    Net,
    /// IPC namespace (`CLONE_NEWIPC`).
    Ipc,
    /// UTS namespace (`CLONE_NEWUTS`).
    Uts,
    /// User namespace (`CLONE_NEWUSER`).
    User,
    /// Cgroup namespace (`CLONE_NEWCGROUP`).
    Cgroup,
}

impl NamespaceKind {
    /// All namespace kinds.
    pub fn all() -> &'static [NamespaceKind] {
        &[
            NamespaceKind::Mount,
            NamespaceKind::Pid,
            NamespaceKind::Net,
            NamespaceKind::Ipc,
            NamespaceKind::Uts,
            NamespaceKind::User,
            NamespaceKind::Cgroup,
        ]
    }

    /// Typical setup latency for creating one namespace of this kind.
    ///
    /// Network namespaces are by far the most expensive because creating
    /// one instantiates a fresh loopback device and sysctl state.
    pub fn setup_cost(self) -> Nanos {
        match self {
            NamespaceKind::Mount => Nanos::from_micros(120),
            NamespaceKind::Pid => Nanos::from_micros(60),
            NamespaceKind::Net => Nanos::from_millis(2),
            NamespaceKind::Ipc => Nanos::from_micros(40),
            NamespaceKind::Uts => Nanos::from_micros(10),
            NamespaceKind::User => Nanos::from_micros(80),
            NamespaceKind::Cgroup => Nanos::from_micros(30),
        }
    }

    /// Host kernel functions touched when creating this namespace.
    pub fn host_functions(self) -> &'static [&'static str] {
        match self {
            NamespaceKind::Mount => &["copy_namespaces", "create_new_namespaces", "copy_mnt_ns"],
            NamespaceKind::Pid => &["copy_namespaces", "copy_pid_ns", "alloc_pid", "pid_nr_ns"],
            NamespaceKind::Net => &["copy_namespaces", "copy_net_ns", "netns_get"],
            NamespaceKind::Ipc => &["copy_namespaces", "copy_ipcs"],
            NamespaceKind::Uts => &["copy_namespaces", "copy_utsname"],
            NamespaceKind::User => &["copy_namespaces", "create_user_ns", "ns_capable"],
            NamespaceKind::Cgroup => &["copy_namespaces", "switch_task_namespaces"],
        }
    }
}

/// A set of namespaces a platform creates for its confined context.
///
/// # Example
///
/// ```
/// use oskern::namespaces::NamespaceSet;
///
/// let set = NamespaceSet::container_default();
/// assert_eq!(set.len(), 6);
/// assert!(set.setup_cost().as_micros_f64() > 1_000.0); // dominated by netns
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NamespaceSet {
    kinds: Vec<NamespaceKind>,
}

impl NamespaceSet {
    /// An empty namespace set (native execution).
    pub fn none() -> Self {
        NamespaceSet { kinds: Vec::new() }
    }

    /// The default set Docker/runc creates: mount, pid, net, ipc, uts,
    /// cgroup (user namespaces are still opt-in for Docker).
    pub fn container_default() -> Self {
        NamespaceSet {
            kinds: vec![
                NamespaceKind::Mount,
                NamespaceKind::Pid,
                NamespaceKind::Net,
                NamespaceKind::Ipc,
                NamespaceKind::Uts,
                NamespaceKind::Cgroup,
            ],
        }
    }

    /// LXC unprivileged containers additionally create a user namespace.
    pub fn lxc_unprivileged() -> Self {
        let mut set = Self::container_default();
        set.kinds.push(NamespaceKind::User);
        set
    }

    /// The reduced set the gVisor Sentry confines itself with (mount, pid,
    /// net, user).
    pub fn sentry() -> Self {
        NamespaceSet {
            kinds: vec![
                NamespaceKind::Mount,
                NamespaceKind::Pid,
                NamespaceKind::Net,
                NamespaceKind::User,
            ],
        }
    }

    /// Builds a custom set from the given kinds.
    pub fn from_kinds(kinds: Vec<NamespaceKind>) -> Self {
        NamespaceSet { kinds }
    }

    /// Number of namespaces in the set.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// Whether the set contains the given kind.
    pub fn contains(&self, kind: NamespaceKind) -> bool {
        self.kinds.contains(&kind)
    }

    /// Iterates over the namespace kinds in the set.
    pub fn iter(&self) -> impl Iterator<Item = &NamespaceKind> {
        self.kinds.iter()
    }

    /// Total setup latency of creating every namespace in the set.
    pub fn setup_cost(&self) -> Nanos {
        self.kinds.iter().map(|k| k.setup_cost()).sum()
    }

    /// Records the host kernel functions touched when setting up the set.
    pub fn trace_setup(&self, session: &mut FtraceSession) {
        for kind in &self.kinds {
            session.invoke_all(kind.host_functions(), 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_fn::KernelFunctionRegistry;

    #[test]
    fn default_container_set_has_expected_members() {
        let set = NamespaceSet::container_default();
        assert!(set.contains(NamespaceKind::Net));
        assert!(set.contains(NamespaceKind::Pid));
        assert!(!set.contains(NamespaceKind::User));
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn lxc_unprivileged_adds_user_namespace() {
        let set = NamespaceSet::lxc_unprivileged();
        assert!(set.contains(NamespaceKind::User));
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn setup_cost_dominated_by_network_namespace() {
        let net_only = NamespaceSet::from_kinds(vec![NamespaceKind::Net]);
        let rest = NamespaceSet::from_kinds(vec![
            NamespaceKind::Mount,
            NamespaceKind::Pid,
            NamespaceKind::Ipc,
            NamespaceKind::Uts,
        ]);
        assert!(net_only.setup_cost() > rest.setup_cost());
    }

    #[test]
    fn empty_set_costs_nothing() {
        assert_eq!(NamespaceSet::none().setup_cost(), Nanos::ZERO);
        assert!(NamespaceSet::none().is_empty());
    }

    #[test]
    fn all_host_functions_are_registered() {
        let reg = KernelFunctionRegistry::standard();
        for kind in NamespaceKind::all() {
            for f in kind.host_functions() {
                assert!(reg.contains(f), "{kind:?} references unknown {f}");
            }
        }
    }

    #[test]
    fn trace_setup_records_functions() {
        let mut session = FtraceSession::start();
        NamespaceSet::container_default().trace_setup(&mut session);
        let trace = session.finish();
        assert!(trace.touched("copy_net_ns"));
        assert!(trace.touched("copy_pid_ns"));
    }
}
