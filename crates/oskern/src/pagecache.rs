//! Page-cache model.
//!
//! Section 3.3 of the paper spends considerable space on the difficulty of
//! benchmarking I/O when *two* kernels each maintain a buffer cache: fio's
//! `direct=1` only bypasses the guest cache, and unless the host cache is
//! explicitly dropped before each run, hypervisors appear to beat native
//! I/O. This module models a single page cache; `blocksim` stacks a guest
//! and a host instance to reproduce the effect.

use serde::{Deserialize, Serialize};

/// A single kernel page cache in front of a block device.
///
/// The model is intentionally coarse: it tracks how many bytes of the
/// current working set are resident and answers expected hit ratios for
/// random and sequential access, which is all the fio model needs.
///
/// # Example
///
/// ```
/// use oskern::pagecache::PageCache;
///
/// let mut cache = PageCache::new(8 << 30); // 8 GiB of page cache
/// cache.warm(4 << 30, 4 << 30);            // 4 GiB working set fully warmed
/// assert!(cache.hit_ratio(4 << 30) > 0.99);
/// cache.drop_caches();
/// assert_eq!(cache.hit_ratio(4 << 30), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageCache {
    capacity_bytes: u64,
    resident_bytes: u64,
}

impl PageCache {
    /// Creates an empty page cache with the given capacity.
    pub fn new(capacity_bytes: u64) -> Self {
        PageCache {
            capacity_bytes,
            resident_bytes: 0,
        }
    }

    /// Cache capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes of the working set currently resident.
    pub fn resident(&self) -> u64 {
        self.resident_bytes
    }

    /// Marks `bytes` of a working set of `working_set` bytes as resident
    /// (e.g. after a warm-up read pass or after buffered writes).
    pub fn warm(&mut self, bytes: u64, working_set: u64) {
        let max_resident = self.capacity_bytes.min(working_set);
        self.resident_bytes = (self.resident_bytes + bytes).min(max_resident);
    }

    /// Empties the cache (`echo 3 > /proc/sys/vm/drop_caches`).
    pub fn drop_caches(&mut self) {
        self.resident_bytes = 0;
    }

    /// Expected hit ratio for uniform random access over `working_set`
    /// bytes. Zero when nothing is resident; bounded by both the resident
    /// fraction and the capacity/working-set ratio.
    pub fn hit_ratio(&self, working_set: u64) -> f64 {
        if working_set == 0 {
            return 1.0;
        }
        let resident = self.resident_bytes.min(self.capacity_bytes) as f64;
        (resident / working_set as f64).clamp(0.0, 1.0)
    }

    /// Expected hit ratio when the access pattern is sequential with
    /// kernel readahead: once the file exceeds the cache, readahead still
    /// services most accesses from memory, so the ratio degrades more
    /// gracefully than the random case.
    pub fn sequential_hit_ratio(&self, working_set: u64) -> f64 {
        let random = self.hit_ratio(working_set);
        // Readahead hides part of the misses; empirically ~60 % of what
        // random access would miss is still served from cache.
        random + (1.0 - random) * 0.6 * (self.resident_bytes.min(1) as f64)
    }

    /// Simulates bringing newly read data into the cache, evicting under
    /// pressure (clock-ish: resident bytes never exceed capacity).
    pub fn admit(&mut self, bytes: u64) {
        self.resident_bytes = (self.resident_bytes + bytes).min(self.capacity_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_misses_everything() {
        let cache = PageCache::new(1 << 30);
        assert_eq!(cache.hit_ratio(1 << 30), 0.0);
    }

    #[test]
    fn warm_cache_hits_within_capacity() {
        let mut cache = PageCache::new(1 << 30);
        cache.warm(1 << 30, 1 << 30);
        assert!(cache.hit_ratio(1 << 30) > 0.99);
        // A working set twice the cache can be at most 50 % resident.
        assert!(cache.hit_ratio(2 << 30) <= 0.5 + 1e-9);
    }

    #[test]
    fn drop_caches_resets_residency() {
        let mut cache = PageCache::new(1 << 20);
        cache.warm(1 << 20, 1 << 20);
        assert!(cache.resident() > 0);
        cache.drop_caches();
        assert_eq!(cache.resident(), 0);
        assert_eq!(cache.hit_ratio(1 << 20), 0.0);
    }

    #[test]
    fn admit_never_exceeds_capacity() {
        let mut cache = PageCache::new(4096);
        cache.admit(10_000);
        assert_eq!(cache.resident(), 4096);
    }

    #[test]
    fn zero_working_set_is_always_a_hit() {
        let cache = PageCache::new(1 << 20);
        assert_eq!(cache.hit_ratio(0), 1.0);
    }

    #[test]
    fn sequential_hits_exceed_random_hits_when_warm() {
        let mut cache = PageCache::new(1 << 28);
        cache.warm(1 << 28, 1 << 30);
        assert!(cache.sequential_hit_ratio(1 << 30) >= cache.hit_ratio(1 << 30));
    }
}
