//! Thread scheduling models.
//!
//! The paper attributes two macro-level effects to scheduling:
//!
//! * The ffmpeg re-encode (Fig. 5) is slower on platforms that implement a
//!   *custom* thread scheduler (OSv) instead of reusing a mature one.
//! * The MySQL OLTP curve (Fig. 17) peaks around 50 threads on the
//!   isolation platforms, around 110 threads natively, and is flat-and-low
//!   on the two platforms with custom thread implementations (OSv, gVisor).
//!
//! Scalability is modeled with the Universal Scalability Law (USL):
//! `C(n) = n / (1 + α(n−1) + βn(n−1))` where `α` captures contention
//! (serialization) and `β` captures coherency (crosstalk) costs. The peak
//! concurrency is `√((1−α)/β)`, which is how the calibration targets the
//! paper's observed 50-vs-110-thread peaks.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// Parameters of the Universal Scalability Law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UslParams {
    /// Contention coefficient (fraction of work that is serialized).
    pub alpha: f64,
    /// Coherency coefficient (pairwise crosstalk cost).
    pub beta: f64,
}

impl UslParams {
    /// Relative capacity at `n` concurrent threads (1.0 at `n == 1`).
    pub fn capacity(&self, n: usize) -> f64 {
        let n = n.max(1) as f64;
        n / (1.0 + self.alpha * (n - 1.0) + self.beta * n * (n - 1.0))
    }

    /// The concurrency level at which capacity peaks.
    pub fn peak_concurrency(&self) -> f64 {
        if self.beta <= 0.0 {
            f64::INFINITY
        } else {
            ((1.0 - self.alpha) / self.beta).sqrt()
        }
    }

    /// Combines workload-intrinsic and scheduler-induced parameters by
    /// adding the contention and coherency terms.
    pub fn combine(&self, other: &UslParams) -> UslParams {
        UslParams {
            alpha: (self.alpha + other.alpha).clamp(0.0, 0.99),
            beta: self.beta + other.beta,
        }
    }
}

/// The scheduling model exposed by a platform.
pub trait ThreadScheduler: std::fmt::Debug {
    /// Human-readable name of the scheduler.
    fn name(&self) -> &'static str;

    /// Cost of one context switch (direct cost, excluding cache pollution).
    fn context_switch(&self) -> Nanos;

    /// Parallel efficiency of a CPU-bound, embarrassingly parallel job at
    /// `threads` threads on `cores` cores (1.0 = perfect scaling up to the
    /// core count).
    fn parallel_efficiency(&self, threads: usize, cores: usize) -> f64;

    /// Extra multiplicative penalty applied to workloads dominated by wide
    /// SIMD kernels and frequent thread hand-offs (the ffmpeg case).
    fn simd_heavy_penalty(&self) -> f64;

    /// Scheduler-induced USL parameters added on top of a lock-heavy
    /// workload's intrinsic contention (the OLTP case).
    fn contention_params(&self) -> UslParams;
}

/// A concrete scheduler model selected by a platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerModel {
    /// The host CFS scheduler used directly (native, containers) or inside
    /// a mature guest kernel (hypervisors, Kata).
    Cfs,
    /// CFS inside a guest with vCPU scheduling on top (double scheduling).
    NestedCfs,
    /// OSv's custom scheduler.
    Osv,
    /// gVisor's Sentry task scheduler on top of host threads.
    Sentry,
}

impl SchedulerModel {
    /// Instantiates the scheduler model.
    pub fn build(self) -> Box<dyn ThreadScheduler + Send + Sync> {
        match self {
            SchedulerModel::Cfs => Box::new(CfsScheduler::host()),
            SchedulerModel::NestedCfs => Box::new(CfsScheduler::nested()),
            SchedulerModel::Osv => Box::new(OsvScheduler::default()),
            SchedulerModel::Sentry => Box::new(SentryScheduler::default()),
        }
    }
}

/// The Linux Completely Fair Scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CfsScheduler {
    nested: bool,
}

impl CfsScheduler {
    /// CFS running directly on the host (native and container platforms).
    pub fn host() -> Self {
        CfsScheduler { nested: false }
    }

    /// CFS inside a guest kernel whose vCPUs are themselves scheduled by
    /// the host (all hypervisor-based platforms).
    pub fn nested() -> Self {
        CfsScheduler { nested: true }
    }

    /// Whether this instance models double scheduling.
    pub fn is_nested(&self) -> bool {
        self.nested
    }
}

impl ThreadScheduler for CfsScheduler {
    fn name(&self) -> &'static str {
        if self.nested {
            "cfs-nested"
        } else {
            "cfs"
        }
    }

    fn context_switch(&self) -> Nanos {
        if self.nested {
            // vCPU preemption occasionally turns a context switch into a
            // VM exit, raising the average cost.
            Nanos::from_micros(2)
        } else {
            Nanos::from_nanos(1_300)
        }
    }

    fn parallel_efficiency(&self, threads: usize, cores: usize) -> f64 {
        let threads = threads.max(1) as f64;
        let cores = cores.max(1) as f64;
        let oversubscription = (threads / cores).max(1.0);
        let base = 1.0 / oversubscription;
        // Mild loss per extra thread from migrations and load balancing.
        let balance_loss = 1.0 - 0.0015 * (threads - 1.0).min(64.0);
        let nested_loss = if self.nested { 0.985 } else { 1.0 };
        (base * balance_loss * nested_loss).clamp(0.05, 1.0)
    }

    fn simd_heavy_penalty(&self) -> f64 {
        if self.nested {
            1.02
        } else {
            1.0
        }
    }

    fn contention_params(&self) -> UslParams {
        if self.nested {
            UslParams {
                alpha: 0.010,
                beta: 1.2e-4,
            }
        } else {
            UslParams {
                alpha: 0.004,
                beta: 2.0e-5,
            }
        }
    }
}

/// OSv's custom thread scheduler.
///
/// OSv implements its own lock-free scheduler rather than reusing a mature
/// one. The paper suspects it (plus complex SIMD execution on experimental
/// platforms) as the cause of the large ffmpeg slowdown and the flat,
/// low MySQL curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OsvScheduler {
    /// Multiplicative penalty for SIMD/thread-handoff heavy jobs.
    pub simd_penalty: f64,
}

impl Default for OsvScheduler {
    fn default() -> Self {
        OsvScheduler { simd_penalty: 1.55 }
    }
}

impl ThreadScheduler for OsvScheduler {
    fn name(&self) -> &'static str {
        "osv-custom"
    }

    fn context_switch(&self) -> Nanos {
        // Cheap in isolation (no mode switch) but the scheduler makes poor
        // placement decisions under load; the direct cost stays low.
        Nanos::from_nanos(900)
    }

    fn parallel_efficiency(&self, threads: usize, cores: usize) -> f64 {
        let threads_f = threads.max(1) as f64;
        let cores_f = cores.max(1) as f64;
        let oversubscription = (threads_f / cores_f).max(1.0);
        // Placement and wake-up inefficiencies grow with thread count much
        // faster than under CFS.
        let loss = 1.0 - 0.018 * (threads_f - 1.0).min(40.0);
        (loss / oversubscription).clamp(0.05, 1.0)
    }

    fn simd_heavy_penalty(&self) -> f64 {
        self.simd_penalty
    }

    fn contention_params(&self) -> UslParams {
        UslParams {
            alpha: 0.30,
            beta: 6.0e-4,
        }
    }
}

/// gVisor's Sentry task scheduler.
///
/// The Sentry multiplexes guest tasks onto host threads itself; like OSv it
/// does not reuse a mature kernel scheduler, and the paper groups the two
/// together for the OLTP results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SentryScheduler {
    /// Extra per-switch cost from the Sentry's user-space task switching.
    pub switch_overhead: Nanos,
}

impl Default for SentryScheduler {
    fn default() -> Self {
        SentryScheduler {
            switch_overhead: Nanos::from_micros(3),
        }
    }
}

impl ThreadScheduler for SentryScheduler {
    fn name(&self) -> &'static str {
        "sentry"
    }

    fn context_switch(&self) -> Nanos {
        Nanos::from_nanos(1_300) + self.switch_overhead
    }

    fn parallel_efficiency(&self, threads: usize, cores: usize) -> f64 {
        let threads_f = threads.max(1) as f64;
        let cores_f = cores.max(1) as f64;
        let oversubscription = (threads_f / cores_f).max(1.0);
        let loss = 1.0 - 0.010 * (threads_f - 1.0).min(48.0);
        (loss / oversubscription).clamp(0.05, 1.0)
    }

    fn simd_heavy_penalty(&self) -> f64 {
        // Guest SIMD executes natively under both ptrace and KVM modes;
        // only the thread-handoff portion of the job is penalized, which
        // keeps gVisor's ffmpeg time near the native group (Fig. 5).
        1.05
    }

    fn contention_params(&self) -> UslParams {
        UslParams {
            alpha: 0.24,
            beta: 5.0e-4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usl_has_a_peak_when_beta_positive() {
        let p = UslParams {
            alpha: 0.03,
            beta: 4.0e-4,
        };
        let peak = p.peak_concurrency();
        assert!(peak > 40.0 && peak < 60.0, "peak {peak}");
        assert!(p.capacity(50) > p.capacity(10));
        assert!(p.capacity(50) > p.capacity(160));
    }

    #[test]
    fn usl_without_coherency_never_declines() {
        let p = UslParams {
            alpha: 0.05,
            beta: 0.0,
        };
        assert!(p.peak_concurrency().is_infinite());
        assert!(p.capacity(200) >= p.capacity(100));
    }

    #[test]
    fn combine_adds_terms() {
        let a = UslParams {
            alpha: 0.1,
            beta: 1e-4,
        };
        let b = UslParams {
            alpha: 0.2,
            beta: 2e-4,
        };
        let c = a.combine(&b);
        assert!((c.alpha - 0.3).abs() < 1e-12);
        assert!((c.beta - 3e-4).abs() < 1e-12);
    }

    #[test]
    fn cfs_scales_better_than_osv() {
        let cfs = CfsScheduler::host();
        let osv = OsvScheduler::default();
        assert!(cfs.parallel_efficiency(16, 64) > osv.parallel_efficiency(16, 64));
        assert!(osv.simd_heavy_penalty() > 1.3);
        assert_eq!(cfs.simd_heavy_penalty(), 1.0);
    }

    #[test]
    fn nested_cfs_costs_more_than_host_cfs() {
        let host = CfsScheduler::host();
        let nested = CfsScheduler::nested();
        assert!(nested.context_switch() > host.context_switch());
        assert!(nested.contention_params().beta > host.contention_params().beta);
    }

    #[test]
    fn custom_schedulers_have_high_contention() {
        for model in [SchedulerModel::Osv, SchedulerModel::Sentry] {
            let s = model.build();
            assert!(
                s.contention_params().alpha > 0.2,
                "{} alpha too low",
                s.name()
            );
        }
    }

    #[test]
    fn efficiency_bounded_between_zero_and_one() {
        for model in [
            SchedulerModel::Cfs,
            SchedulerModel::NestedCfs,
            SchedulerModel::Osv,
            SchedulerModel::Sentry,
        ] {
            let s = model.build();
            for threads in [1, 16, 64, 160, 1024] {
                let e = s.parallel_efficiency(threads, 64);
                assert!((0.0..=1.0).contains(&e), "{} at {threads}: {e}", s.name());
            }
        }
    }

    #[test]
    fn oversubscription_reduces_efficiency() {
        let cfs = CfsScheduler::host();
        assert!(cfs.parallel_efficiency(128, 64) < cfs.parallel_efficiency(64, 64));
    }
}
