//! Syscall classes, dispatch costs, and the host kernel functions behind
//! each class.
//!
//! Guests do not issue individual Linux syscalls in the simulation;
//! instead, workloads issue [`SyscallClass`]es ("a read", "a send", "an
//! mmap") and each platform decides how the class reaches the host kernel:
//! directly (containers), through a VM exit (hypervisors), through the
//! Sentry (gVisor), or not at all (OSv resolves libc calls to function
//! calls inside the unikernel).

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use crate::ftrace::FtraceSession;

/// A class of syscall as issued by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SyscallClass {
    /// File read (`read`, `pread64`, `readv`).
    FileRead,
    /// File write (`write`, `pwrite64`, `writev`).
    FileWrite,
    /// File open/close/stat path operations.
    FileMeta,
    /// Async I/O submission and reaping (`io_submit`, `io_getevents`).
    AioSubmit,
    /// fsync / fdatasync.
    Fsync,
    /// Memory map / unmap / protect.
    MemoryMap,
    /// Page fault service (not strictly a syscall, but a kernel entry).
    PageFault,
    /// Socket send.
    NetSend,
    /// Socket receive.
    NetReceive,
    /// Socket setup (socket/bind/listen/accept/connect).
    NetSetup,
    /// Thread/process creation (`clone`, `fork`, `execve`).
    ProcessControl,
    /// Futex wait/wake (thread synchronization).
    Futex,
    /// Scheduling (yield, nanosleep, affinity).
    Schedule,
    /// Timers and clock reads.
    Time,
    /// Signal delivery and ptrace stops.
    Signal,
    /// Poll/epoll/select event waiting.
    Poll,
    /// `ioctl` on device files (including `/dev/kvm`).
    Ioctl,
}

impl SyscallClass {
    /// All syscall classes, in a stable order.
    pub fn all() -> &'static [SyscallClass] {
        use SyscallClass::*;
        &[
            FileRead,
            FileWrite,
            FileMeta,
            AioSubmit,
            Fsync,
            MemoryMap,
            PageFault,
            NetSend,
            NetReceive,
            NetSetup,
            ProcessControl,
            Futex,
            Schedule,
            Time,
            Signal,
            Poll,
            Ioctl,
        ]
    }

    /// Host kernel functions a *direct* (container/native) invocation of
    /// this class touches. Platforms with extra layers add their own
    /// functions on top of these.
    pub fn host_functions(self) -> &'static [&'static str] {
        use SyscallClass::*;
        match self {
            FileRead => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "ksys_read",
                "vfs_read",
                "new_sync_read",
                "generic_file_read_iter",
                "filemap_read",
                "security_file_permission",
                "syscall_exit_to_user_mode",
            ],
            FileWrite => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "ksys_write",
                "vfs_write",
                "new_sync_write",
                "generic_file_write_iter",
                "generic_perform_write",
                "security_file_permission",
                "syscall_exit_to_user_mode",
            ],
            FileMeta => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "do_sys_openat2",
                "path_openat",
                "link_path_walk",
                "lookup_fast",
                "do_dentry_open",
                "security_file_open",
                "vfs_statx",
                "fput",
                "filp_close",
                "dput",
            ],
            AioSubmit => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "io_submit_one",
                "aio_read",
                "aio_write",
                "io_getevents",
                "blkdev_direct_IO",
                "submit_bio",
                "blk_mq_submit_bio",
                "nvme_queue_rq",
                "nvme_complete_rq",
                "bio_endio",
            ],
            Fsync => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "vfs_fsync_range",
                "submit_bio",
                "blk_mq_submit_bio",
                "nvme_queue_rq",
            ],
            MemoryMap => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "vm_mmap_pgoff",
                "do_mmap",
                "mmap_region",
                "security_mmap_file",
                "do_munmap",
                "unmap_region",
                "find_vma",
                "vma_link",
            ],
            PageFault => &[
                "asm_exc_page_fault",
                "do_user_addr_fault",
                "handle_mm_fault",
                "__handle_mm_fault",
                "do_anonymous_page",
                "alloc_pages_vma",
                "__alloc_pages",
                "get_page_from_freelist",
                "lru_cache_add",
                "flush_tlb_mm_range",
            ],
            NetSend => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "__sys_sendto",
                "sock_sendmsg",
                "inet_sendmsg",
                "tcp_sendmsg",
                "tcp_sendmsg_locked",
                "tcp_write_xmit",
                "tcp_transmit_skb",
                "ip_queue_xmit",
                "ip_output",
                "ip_finish_output2",
                "dev_queue_xmit",
                "dev_hard_start_xmit",
                "sk_stream_alloc_skb",
                "security_socket_sendmsg",
            ],
            NetReceive => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "__sys_recvfrom",
                "sock_recvmsg",
                "inet_recvmsg",
                "tcp_recvmsg",
                "tcp_rcv_established",
                "tcp_ack",
                "ip_rcv",
                "ip_local_deliver",
                "__netif_receive_skb_core",
                "net_rx_action",
                "napi_gro_receive",
                "skb_copy_datagram_iter",
                "consume_skb",
                "security_socket_recvmsg",
            ],
            NetSetup => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "sock_def_readable",
                "inet_sendmsg",
                "nf_hook_slow",
                "ipt_do_table",
            ],
            ProcessControl => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "ret_from_fork",
                "copy_page_range",
                "wake_up_process",
                "alloc_pid",
                "cap_capable",
                "security_capable",
            ],
            Futex => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "do_futex",
                "futex_wait",
                "futex_wake",
                "try_to_wake_up",
                "schedule",
                "__schedule",
            ],
            Schedule => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "schedule",
                "__schedule",
                "pick_next_task_fair",
                "context_switch",
                "finish_task_switch",
                "update_curr",
                "update_load_avg",
                "do_nanosleep",
                "hrtimer_nanosleep",
            ],
            Time => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "clock_gettime",
                "ktime_get",
                "ktime_get_ts64",
                "read_tsc",
                "hrtimer_start_range_ns",
            ],
            Signal => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "do_signal",
                "get_signal",
                "send_signal_locked",
                "do_send_sig_info",
                "setup_rt_frame",
                "restore_sigcontext",
                "signal_wake_up_state",
            ],
            Poll => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "ep_poll",
                "do_epoll_wait",
                "do_epoll_ctl",
                "eventfd_read",
                "eventfd_write",
                "sk_wait_data",
            ],
            Ioctl => &[
                "entry_SYSCALL_64",
                "do_syscall_64",
                "kvm_vcpu_ioctl",
                "kvm_vm_ioctl",
            ],
        }
    }

    /// A short stable identifier for reports.
    pub fn label(self) -> &'static str {
        use SyscallClass::*;
        match self {
            FileRead => "file_read",
            FileWrite => "file_write",
            FileMeta => "file_meta",
            AioSubmit => "aio_submit",
            Fsync => "fsync",
            MemoryMap => "mmap",
            PageFault => "page_fault",
            NetSend => "net_send",
            NetReceive => "net_receive",
            NetSetup => "net_setup",
            ProcessControl => "process_control",
            Futex => "futex",
            Schedule => "schedule",
            Time => "time",
            Signal => "signal",
            Poll => "poll",
            Ioctl => "ioctl",
        }
    }
}

/// Cost of dispatching one syscall of a class on a given entry path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyscallCost {
    /// Fixed kernel entry/exit cost (mode switch, register save/restore).
    pub entry_exit: Nanos,
    /// Work performed inside the kernel for this class, excluding any
    /// device time (device time is modeled by blocksim/netsim).
    pub kernel_work: Nanos,
}

impl SyscallCost {
    /// Total dispatch cost.
    pub fn total(&self) -> Nanos {
        self.entry_exit + self.kernel_work
    }
}

/// The host syscall table: per-class dispatch costs for a direct (native or
/// container) invocation, plus helpers to record the kernel functions each
/// dispatch touches.
#[derive(Debug, Clone)]
pub struct SyscallTable {
    base_entry_exit: Nanos,
}

impl SyscallTable {
    /// Creates a table with the default ~80 ns user→kernel→user round trip
    /// measured on modern x86 with mitigations enabled.
    pub fn native() -> Self {
        SyscallTable {
            base_entry_exit: Nanos::from_nanos(80),
        }
    }

    /// Creates a table with a custom entry/exit cost (e.g. a platform with
    /// seccomp filters attached pays extra per entry).
    pub fn with_entry_exit(entry_exit: Nanos) -> Self {
        SyscallTable {
            base_entry_exit: entry_exit,
        }
    }

    /// The fixed entry/exit cost of this table.
    pub fn entry_exit(&self) -> Nanos {
        self.base_entry_exit
    }

    /// Cost of one invocation of the given class via this table.
    pub fn cost(&self, class: SyscallClass) -> SyscallCost {
        use SyscallClass::*;
        let kernel_work = match class {
            FileRead | FileWrite => Nanos::from_nanos(550),
            FileMeta => Nanos::from_nanos(1_200),
            AioSubmit => Nanos::from_nanos(900),
            Fsync => Nanos::from_micros(4),
            MemoryMap => Nanos::from_micros(2),
            PageFault => Nanos::from_nanos(1_100),
            NetSend | NetReceive => Nanos::from_nanos(850),
            NetSetup => Nanos::from_micros(8),
            ProcessControl => Nanos::from_micros(45),
            Futex => Nanos::from_nanos(400),
            Schedule => Nanos::from_nanos(1_300),
            Time => Nanos::from_nanos(25),
            Signal => Nanos::from_micros(2),
            Poll => Nanos::from_nanos(600),
            Ioctl => Nanos::from_nanos(700),
        };
        SyscallCost {
            entry_exit: self.base_entry_exit,
            kernel_work,
        }
    }

    /// Records the host kernel functions a direct dispatch of `class`
    /// touches into the tracing session, `count` times.
    pub fn trace_dispatch(&self, session: &mut FtraceSession, class: SyscallClass, count: u64) {
        session.invoke_all(class.host_functions(), count);
    }
}

impl Default for SyscallTable {
    fn default() -> Self {
        Self::native()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel_fn::KernelFunctionRegistry;

    #[test]
    fn every_class_maps_to_registered_functions() {
        let reg = KernelFunctionRegistry::standard();
        for class in SyscallClass::all() {
            let funcs = class.host_functions();
            assert!(!funcs.is_empty(), "{class:?} has no host functions");
            for f in funcs {
                assert!(reg.contains(f), "{class:?} references unknown function {f}");
            }
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            SyscallClass::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), SyscallClass::all().len());
    }

    #[test]
    fn costs_are_positive_and_class_dependent() {
        let table = SyscallTable::native();
        for class in SyscallClass::all() {
            let c = table.cost(*class);
            assert!(c.total() > Nanos::ZERO, "{class:?} has zero cost");
        }
        assert!(
            table.cost(SyscallClass::ProcessControl).total()
                > table.cost(SyscallClass::Time).total(),
            "process creation must dwarf clock reads"
        );
    }

    #[test]
    fn custom_entry_exit_propagates() {
        let table = SyscallTable::with_entry_exit(Nanos::from_nanos(500));
        assert_eq!(table.entry_exit(), Nanos::from_nanos(500));
        assert_eq!(
            table.cost(SyscallClass::Time).entry_exit,
            Nanos::from_nanos(500)
        );
    }

    #[test]
    fn trace_dispatch_records_functions() {
        let table = SyscallTable::native();
        let mut session = FtraceSession::start();
        table.trace_dispatch(&mut session, SyscallClass::NetSend, 3);
        let trace = session.finish();
        assert_eq!(trace.count("tcp_sendmsg"), 3);
        assert!(trace.distinct_functions() >= 10);
    }
}
