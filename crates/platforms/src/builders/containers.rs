//! The container platforms: Docker (runc) and LXC.

use oskern::host::HostConfig;
use oskern::init::{BootPhase, InitSystem};
use oskern::sched::SchedulerModel;
use simcore::Nanos;

use blocksim::layers::StorageLayer;
use netsim::component::NetComponent;
use netsim::path::NetworkPath;

use crate::isolation::IsolationAttributes;
use crate::platform::Platform;
use crate::registry::PlatformId;
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::startup::StartupSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

use super::GUEST_CORES;

/// Docker with the default runc runtime, overlay rootfs, bridge network
/// and a bind-mounted benchmark volume.
pub fn docker() -> Platform {
    let startup_phases = vec![
        BootPhase::new(
            "containerd-shim",
            Nanos::from_millis(18),
            Nanos::from_millis(3),
        ),
        BootPhase::new(
            "namespaces-cgroups",
            Nanos::from_millis(9),
            Nanos::from_millis(2),
        ),
        BootPhase::new(
            "overlayfs-prepare",
            Nanos::from_millis(14),
            Nanos::from_millis(3),
        ),
        BootPhase::new(
            "runc-create-start",
            Nanos::from_millis(46),
            Nanos::from_millis(6),
        ),
        BootPhase::new(
            "tini-entrypoint",
            InitSystem::Tini.mean_total(),
            Nanos::from_millis(1),
        ),
    ];
    Platform {
        id: PlatformId::Docker,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::Cfs, GUEST_CORES),
        memory: MemorySubsystem::native(),
        storage: StorageSubsystem::new(vec![StorageLayer::BindMount], None).with_jitter(0.05),
        network: NetworkSubsystem::new(NetworkPath::new(vec![NetComponent::Bridge])),
        startup: StartupSubsystem::new(
            startup_phases,
            Nanos::from_millis(250),
            Nanos::from_millis(8),
            true,
        ),
        syscalls: SyscallPath::Direct {
            filter_overhead: Nanos::from_nanos(60),
        },
        isolation: IsolationAttributes {
            namespaces: true,
            cgroups: true,
            hardware_virtualization: false,
            userspace_kernel: false,
            seccomp: true,
            shares_memory_with_host: true,
        },
    }
}

/// LXC with a ZFS storage pool, bridge networking and a full systemd init
/// ("an environment as close as possible to a standard Linux
/// installation").
pub fn lxc() -> Platform {
    let mut startup_phases = vec![
        BootPhase::new("lxc-start", Nanos::from_millis(34), Nanos::from_millis(5)),
        BootPhase::new(
            "namespaces-cgroups",
            Nanos::from_millis(11),
            Nanos::from_millis(2),
        ),
        BootPhase::new("zfs-clone", Nanos::from_millis(58), Nanos::from_millis(9)),
    ];
    startup_phases.extend(InitSystem::Systemd.phases());
    startup_phases.push(BootPhase::new(
        "patched-exit-unit",
        Nanos::from_millis(40),
        Nanos::from_millis(6),
    ));
    Platform {
        id: PlatformId::Lxc,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::Cfs, GUEST_CORES),
        memory: MemorySubsystem::native(),
        storage: StorageSubsystem::new(vec![StorageLayer::Zfs], None).with_jitter(0.05),
        network: NetworkSubsystem::new(NetworkPath::new(vec![NetComponent::Bridge])),
        startup: StartupSubsystem::new(startup_phases, Nanos::ZERO, Nanos::from_millis(8), false),
        syscalls: SyscallPath::Direct {
            filter_overhead: Nanos::from_nanos(40),
        },
        isolation: IsolationAttributes {
            namespaces: true,
            cgroups: true,
            hardware_virtualization: false,
            userspace_kernel: false,
            seccomp: false,
            shares_memory_with_host: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::startup::StartupVariant;
    use memsim::tlb::PageSize;

    #[test]
    fn docker_oci_direct_boots_around_100ms() {
        let p = docker();
        let t = p
            .startup()
            .mean_total(StartupVariant::OciDirect)
            .as_millis_f64();
        assert!((80.0..130.0).contains(&t), "docker OCI boot {t} ms");
        let via_daemon = p
            .startup()
            .mean_total(StartupVariant::Default)
            .as_millis_f64();
        assert!((via_daemon - t - 250.0).abs() < 1.0);
    }

    #[test]
    fn lxc_boots_around_800ms_because_of_systemd() {
        let p = lxc();
        let t = p
            .startup()
            .mean_total(StartupVariant::Default)
            .as_millis_f64();
        assert!((700.0..900.0).contains(&t), "lxc boot {t} ms");
        assert!(!p.startup().supports_oci_direct());
    }

    #[test]
    fn containers_have_native_memory_behaviour() {
        let native = crate::builders::native::native();
        for p in [docker(), lxc()] {
            assert_eq!(
                p.memory().mean_access_latency(1 << 26, PageSize::Small4K),
                native
                    .memory()
                    .mean_access_latency(1 << 26, PageSize::Small4K),
                "{} memory latency differs from native",
                p.name()
            );
        }
    }

    #[test]
    fn containers_pay_about_ten_percent_network_penalty() {
        let native = crate::builders::native::native();
        let n = native.network().mean_throughput().gbit_per_sec();
        for p in [docker(), lxc()] {
            let t = p.network().mean_throughput().gbit_per_sec();
            let penalty = 1.0 - t / n;
            assert!(
                (0.05..0.15).contains(&penalty),
                "{} penalty {penalty}",
                p.name()
            );
        }
    }

    #[test]
    fn both_use_namespaces_and_cgroups_without_a_hypervisor() {
        for p in [docker(), lxc()] {
            assert!(p.isolation().namespaces);
            assert!(p.isolation().cgroups);
            assert!(!p.isolation().hardware_virtualization);
        }
    }
}
