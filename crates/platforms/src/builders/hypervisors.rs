//! The hypervisor platforms: QEMU/KVM (three machine variants),
//! Firecracker and Cloud Hypervisor.

use oskern::host::HostConfig;
use oskern::init::InitSystem;
use oskern::sched::SchedulerModel;

use blocksim::layers::StorageLayer;
use memsim::features::DirectMapFeatures;
use netsim::component::NetComponent;
use netsim::path::NetworkPath;
use vmm::boot::GuestKind;
use vmm::machine::MachineModel;

use crate::isolation::IsolationAttributes;
use crate::platform::Platform;
use crate::registry::PlatformId;
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

use super::{startup_from_timeline, GUEST_CORES, GUEST_MEMORY_BYTES};

fn hypervisor_isolation(seccomp: bool) -> IsolationAttributes {
    IsolationAttributes {
        namespaces: false,
        cgroups: false,
        hardware_virtualization: true,
        userspace_kernel: false,
        seccomp,
        shares_memory_with_host: false,
    }
}

fn guest_network(machine: MachineModel) -> NetworkPath {
    let mut components = machine.network_components();
    components.push(NetComponent::GuestLinuxStack);
    NetworkPath::new(components)
}

/// QEMU/KVM with the given machine variant (`pc`, qboot or microvm).
pub fn qemu(machine: MachineModel, id: PlatformId) -> Platform {
    let timeline = machine.boot_timeline(GuestKind::Linux, InitSystem::PatchedImmediateExit);
    Platform {
        id,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::NestedCfs, GUEST_CORES),
        memory: MemorySubsystem::new(
            machine.paging_mode(),
            DirectMapFeatures::none(),
            machine.memory_bandwidth_efficiency(),
            0.03,
        ),
        storage: StorageSubsystem::new(vec![StorageLayer::VirtioBlk], Some(GUEST_MEMORY_BYTES))
            .with_block_efficiency(machine.block_efficiency())
            .with_jitter(0.07),
        network: NetworkSubsystem::new(guest_network(machine)),
        startup: startup_from_timeline(&timeline),
        syscalls: SyscallPath::GuestKernel {
            exit_fraction: 0.04,
            vmm_serviced: false,
        },
        isolation: hypervisor_isolation(false),
    }
}

/// Firecracker: minimal device model, jailer sandbox, vm-memory guest
/// memory layer, no support for attaching extra drives.
pub fn firecracker() -> Platform {
    let machine = MachineModel::Firecracker;
    let timeline = machine.boot_timeline(GuestKind::Linux, InitSystem::PatchedImmediateExit);
    Platform {
        id: PlatformId::Firecracker,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::NestedCfs, GUEST_CORES),
        memory: MemorySubsystem::new(
            machine.paging_mode(),
            DirectMapFeatures::none(),
            machine.memory_bandwidth_efficiency(),
            0.09,
        ),
        storage: StorageSubsystem::excluded(
            "firecracker does not support attaching extra storage devices",
        ),
        network: NetworkSubsystem::new(guest_network(machine)),
        startup: startup_from_timeline(&timeline),
        syscalls: SyscallPath::GuestKernel {
            exit_fraction: 0.05,
            vmm_serviced: true,
        },
        isolation: IsolationAttributes {
            // The jailer wraps the VMM in namespaces, cgroups and seccomp.
            namespaces: true,
            cgroups: true,
            hardware_virtualization: true,
            userspace_kernel: false,
            seccomp: true,
            shares_memory_with_host: false,
        },
    }
}

/// Cloud Hypervisor: between Firecracker's minimalism and QEMU's
/// completeness, with an immature virtio-blk path (Finding 9) and network
/// stack (Finding 17).
pub fn cloud_hypervisor() -> Platform {
    let machine = MachineModel::CloudHypervisor;
    let timeline = machine.boot_timeline(GuestKind::Linux, InitSystem::PatchedImmediateExit);
    Platform {
        id: PlatformId::CloudHypervisor,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::NestedCfs, GUEST_CORES),
        memory: MemorySubsystem::new(
            machine.paging_mode(),
            DirectMapFeatures::none(),
            machine.memory_bandwidth_efficiency(),
            0.05,
        ),
        storage: StorageSubsystem::new(vec![StorageLayer::VirtioBlk], Some(GUEST_MEMORY_BYTES))
            .with_block_efficiency(machine.block_efficiency())
            .with_jitter(0.10),
        network: NetworkSubsystem::new(guest_network(machine)),
        startup: startup_from_timeline(&timeline),
        syscalls: SyscallPath::GuestKernel {
            exit_fraction: 0.035,
            vmm_serviced: true,
        },
        isolation: hypervisor_isolation(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::startup::StartupVariant;
    use memsim::bandwidth::CopyMethod;
    use memsim::tlb::PageSize;

    #[test]
    fn firecracker_is_the_memory_latency_outlier() {
        let native = crate::builders::native::native();
        let q = qemu(MachineModel::QemuFull, PlatformId::Qemu);
        let fc = firecracker();
        let chv = cloud_hypervisor();
        let size = 1 << 26;
        let n = native.memory().mean_access_latency(size, PageSize::Small4K);
        let ql = q.memory().mean_access_latency(size, PageSize::Small4K);
        let fl = fc.memory().mean_access_latency(size, PageSize::Small4K);
        let cl = chv.memory().mean_access_latency(size, PageSize::Small4K);
        assert!(
            fl > cl,
            "firecracker {fl} should exceed cloud-hypervisor {cl}"
        );
        assert!(cl > ql, "cloud-hypervisor {cl} should exceed qemu {ql}");
        assert!(ql > n, "qemu {ql} should exceed native {n}");
    }

    #[test]
    fn hypervisors_lose_memory_bandwidth_relative_to_native() {
        let native = crate::builders::native::native();
        let n = native
            .memory()
            .mean_copy_bandwidth(CopyMethod::StreamCopy)
            .bytes_per_sec();
        for p in [
            qemu(MachineModel::QemuFull, PlatformId::Qemu),
            firecracker(),
            cloud_hypervisor(),
        ] {
            let b = p
                .memory()
                .mean_copy_bandwidth(CopyMethod::StreamCopy)
                .bytes_per_sec();
            assert!(b < n, "{} bandwidth should be below native", p.name());
        }
    }

    #[test]
    fn firecracker_is_excluded_from_fio_but_others_are_not() {
        assert!(firecracker().storage().is_excluded());
        assert!(!qemu(MachineModel::QemuFull, PlatformId::Qemu)
            .storage()
            .is_excluded());
        assert!(!cloud_hypervisor().storage().is_excluded());
    }

    #[test]
    fn boot_times_match_figure_14_ordering() {
        let ms = |p: &Platform| {
            p.startup()
                .mean_total(StartupVariant::Default)
                .as_millis_f64()
        };
        let chv = ms(&cloud_hypervisor());
        let q = ms(&qemu(MachineModel::QemuFull, PlatformId::Qemu));
        let qboot = ms(&qemu(MachineModel::QemuQboot, PlatformId::QemuQboot));
        let fc = ms(&firecracker());
        let microvm = ms(&qemu(MachineModel::QemuMicrovm, PlatformId::QemuMicrovm));
        assert!(
            chv < qboot && qboot < q && q < fc && fc < microvm,
            "ordering violated: chv={chv} qboot={qboot} qemu={q} fc={fc} microvm={microvm}"
        );
    }

    #[test]
    fn network_penalty_is_around_a_quarter_for_qemu_and_worse_for_newer_vmms() {
        let native = crate::builders::native::native()
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let q = qemu(MachineModel::QemuFull, PlatformId::Qemu)
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let fc = firecracker().network().mean_throughput().gbit_per_sec();
        let chv = cloud_hypervisor()
            .network()
            .mean_throughput()
            .gbit_per_sec();
        assert!(
            (0.18..0.32).contains(&(1.0 - q / native)),
            "qemu penalty {}",
            1.0 - q / native
        );
        assert!(fc < q, "firecracker {fc} should be below qemu {q}");
        assert!(
            chv < fc,
            "cloud-hypervisor {chv} should be below firecracker {fc}"
        );
    }
}
