//! Constructors for each platform configuration.
//!
//! The calibration constants (efficiencies, jitters, exit fractions,
//! start-up phase durations) live here, next to the architectural
//! composition they belong to, so that every number in a figure can be
//! traced back to one platform builder.

pub mod containers;
pub mod hypervisors;
pub mod native;
pub mod secure;
pub mod unikernels;

use oskern::init::BootPhase;
use simcore::Nanos;
use vmm::boot::BootTimeline;

use crate::subsystems::startup::StartupSubsystem;

/// Number of CPU cores assigned to every guest in the paper's experiments.
pub const GUEST_CORES: usize = 16;

/// Guest memory given to platforms that run a second kernel.
pub const GUEST_MEMORY_BYTES: u64 = 16 << 30;

/// Converts a hypervisor boot timeline into a start-up subsystem.
pub(crate) fn startup_from_timeline(timeline: &BootTimeline) -> StartupSubsystem {
    let mut phases = vec![
        BootPhase::new(
            "vmm-setup",
            timeline.vmm_setup,
            timeline.vmm_setup.scale(0.06),
        ),
        BootPhase::new("firmware", timeline.firmware, timeline.firmware.scale(0.05)),
        BootPhase::new(
            "kernel-load",
            timeline.kernel_load,
            timeline.kernel_load.scale(0.05),
        ),
        BootPhase::new(
            "guest-kernel",
            timeline.guest_kernel_boot,
            timeline.guest_kernel_boot.scale(0.07),
        ),
    ];
    for p in timeline.init.phases() {
        phases.push(p);
    }
    StartupSubsystem::new(phases, Nanos::ZERO, timeline.termination, false)
}
