//! The native (no isolation) baseline.

use oskern::host::HostConfig;
use oskern::init::BootPhase;
use oskern::sched::SchedulerModel;
use simcore::Nanos;

use netsim::path::NetworkPath;

use crate::isolation::IsolationAttributes;
use crate::platform::Platform;
use crate::registry::PlatformId;
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::startup::StartupSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

use super::GUEST_CORES;

/// Builds the native baseline platform.
pub fn native() -> Platform {
    Platform {
        id: PlatformId::Native,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::Cfs, GUEST_CORES),
        memory: MemorySubsystem::native(),
        storage: StorageSubsystem::new(vec![], None).with_jitter(0.03),
        network: NetworkSubsystem::new(NetworkPath::new(vec![])),
        startup: StartupSubsystem::new(
            vec![
                BootPhase::new("fork-exec", Nanos::from_millis(3), Nanos::from_micros(400)),
                BootPhase::new(
                    "process-exit",
                    Nanos::from_millis(2),
                    Nanos::from_micros(300),
                ),
            ],
            Nanos::ZERO,
            Nanos::from_millis(1),
            false,
        ),
        syscalls: SyscallPath::Direct {
            filter_overhead: Nanos::ZERO,
        },
        isolation: IsolationAttributes::none(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::startup::StartupVariant;

    #[test]
    fn native_is_the_fastest_baseline() {
        let p = native();
        assert_eq!(p.name(), "native");
        assert!(
            p.startup()
                .mean_total(StartupVariant::Default)
                .as_millis_f64()
                < 10.0
        );
        assert!(!p.storage().is_excluded());
        assert_eq!(p.isolation().defense_in_depth_layers(), 0);
        assert!((p.network().mean_throughput().gbit_per_sec() - 37.28).abs() < 0.5);
    }
}
