//! The secure-container platforms: Kata containers and gVisor.

use oskern::host::HostConfig;
use oskern::init::{BootPhase, InitSystem};
use oskern::sched::SchedulerModel;
use simcore::Nanos;

use blocksim::layers::StorageLayer;
use memsim::features::DirectMapFeatures;
use netsim::component::NetComponent;
use netsim::path::NetworkPath;
use vmm::boot::GuestKind;
use vmm::machine::MachineModel;
use vmm::vsock::TtrpcChannel;

use crate::isolation::IsolationAttributes;
use crate::platform::Platform;
use crate::registry::PlatformId;
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::startup::StartupSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

use super::{GUEST_CORES, GUEST_MEMORY_BYTES};

/// Kata containers: a namespaced container inside a QEMU-based VM with a
/// stripped-down guest kernel, the kata-agent reached over vsock/ttRPC, and
/// the host directory shared over 9p (default) or virtio-fs.
pub fn kata(virtio_fs: bool) -> Platform {
    let machine = MachineModel::QemuFull;
    let shared_fs = if virtio_fs {
        StorageLayer::VirtioFs
    } else {
        StorageLayer::NineP
    };
    // Kata's network joins a host-side bridge/veth leg with the QEMU
    // TAP+virtio leg; the paper pins its throughput to the weaker leg.
    let bridge_leg = NetworkPath::new(vec![NetComponent::Bridge]);
    let mut qemu_components = machine.network_components();
    qemu_components.push(NetComponent::GuestLinuxStack);
    let qemu_leg = NetworkPath::new(qemu_components);
    let network = NetworkPath::bottleneck_of(vec![bridge_leg, qemu_leg]);

    let ttrpc = TtrpcChannel::kata_agent();
    let guest_boot = machine.boot_timeline(GuestKind::KataMiniKernel, InitSystem::KataMiniOs);
    let startup_phases = vec![
        BootPhase::new(
            "kata-runtime",
            Nanos::from_millis(40),
            Nanos::from_millis(6),
        ),
        BootPhase::new(
            "namespaces-cgroups",
            Nanos::from_millis(10),
            Nanos::from_millis(2),
        ),
        BootPhase::new(
            "vmm-setup",
            guest_boot.vmm_setup,
            guest_boot.vmm_setup.scale(0.06),
        ),
        BootPhase::new(
            "firmware",
            guest_boot.firmware,
            guest_boot.firmware.scale(0.05),
        ),
        BootPhase::new(
            "kernel-load",
            guest_boot.kernel_load,
            guest_boot.kernel_load.scale(0.05),
        ),
        BootPhase::new(
            "guest-kernel",
            guest_boot.guest_kernel_boot,
            guest_boot.guest_kernel_boot.scale(0.07),
        ),
        BootPhase::new(
            "mini-os-and-agent",
            InitSystem::KataMiniOs.mean_total(),
            Nanos::from_millis(10),
        ),
        BootPhase::new(
            "ttrpc-container-create",
            ttrpc.container_create_latency() + Nanos::from_millis(180),
            Nanos::from_millis(20),
        ),
        BootPhase::new(
            "shared-rootfs-mount",
            Nanos::from_millis(55),
            Nanos::from_millis(8),
        ),
    ];

    Platform {
        id: if virtio_fs {
            PlatformId::KataVirtioFs
        } else {
            PlatformId::Kata
        },
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::NestedCfs, GUEST_CORES),
        // The QEMU NVDIMM direct map plus KSM sidestep the nested-paging
        // penalty (Finding 3), at the cost of huge-page support.
        memory: MemorySubsystem::new(machine.paging_mode(), DirectMapFeatures::kata(), 0.97, 0.03),
        storage: StorageSubsystem::new(
            vec![StorageLayer::VirtioBlk, shared_fs],
            Some(GUEST_MEMORY_BYTES),
        )
        .with_jitter(0.08),
        network: NetworkSubsystem::new(network),
        startup: StartupSubsystem::new(
            startup_phases,
            Nanos::from_millis(250),
            Nanos::from_millis(10),
            true,
        ),
        syscalls: SyscallPath::GuestKernel {
            exit_fraction: 0.06,
            vmm_serviced: false,
        },
        isolation: IsolationAttributes {
            namespaces: true,
            cgroups: true,
            hardware_virtualization: true,
            userspace_kernel: false,
            seccomp: true,
            shares_memory_with_host: true,
        },
    }
}

/// gVisor: the Sentry user-space kernel intercepts every syscall (via
/// ptrace or KVM), I/O goes through the Gofer over 9p, and networking uses
/// the user-space Netstack.
pub fn gvisor(kvm_platform: bool) -> Platform {
    let intercept_cost = if kvm_platform {
        Nanos::from_micros(3)
    } else {
        Nanos::from_micros(9)
    };
    let startup_phases = vec![
        BootPhase::new("runsc-setup", Nanos::from_millis(22), Nanos::from_millis(3)),
        BootPhase::new(
            "namespaces-cgroups",
            Nanos::from_millis(9),
            Nanos::from_millis(2),
        ),
        BootPhase::new(
            "sentry-start",
            Nanos::from_millis(85),
            Nanos::from_millis(9),
        ),
        BootPhase::new("gofer-start", Nanos::from_millis(38), Nanos::from_millis(5)),
        BootPhase::new(
            "netstack-init",
            Nanos::from_millis(20),
            Nanos::from_millis(3),
        ),
        BootPhase::new("entrypoint", Nanos::from_millis(12), Nanos::from_millis(2)),
    ];
    Platform {
        id: if kvm_platform {
            PlatformId::GvisorKvm
        } else {
            PlatformId::GvisorPtrace
        },
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::Sentry, GUEST_CORES),
        memory: MemorySubsystem::new(
            memsim::paging::PagingMode::Native,
            DirectMapFeatures::none(),
            0.97,
            0.03,
        ),
        storage: StorageSubsystem::new(
            vec![
                StorageLayer::SentryIntercept,
                StorageLayer::GoferBoundary,
                StorageLayer::NineP,
            ],
            None,
        )
        .with_jitter(0.08),
        network: NetworkSubsystem::new(
            NetworkPath::new(vec![NetComponent::Bridge, NetComponent::Netstack])
                .with_tail_factor(1.7),
        ),
        startup: StartupSubsystem::new(
            startup_phases,
            Nanos::from_millis(250),
            Nanos::from_millis(8),
            true,
        ),
        syscalls: SyscallPath::SentryIntercept {
            intercept_cost,
            gofer_for_io: true,
        },
        isolation: IsolationAttributes {
            namespaces: true,
            cgroups: true,
            hardware_virtualization: kvm_platform,
            userspace_kernel: true,
            seccomp: true,
            shares_memory_with_host: true,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::startup::StartupVariant;
    use memsim::tlb::PageSize;
    use simcore::SimRng;

    #[test]
    fn kata_memory_is_not_impaired_despite_the_hypervisor() {
        let native = crate::builders::native::native();
        let k = kata(false);
        let size = 1 << 26;
        assert_eq!(
            k.memory().mean_access_latency(size, PageSize::Small4K),
            native.memory().mean_access_latency(size, PageSize::Small4K)
        );
        assert!(!k.memory().huge_pages_supported());
    }

    #[test]
    fn kata_9p_io_is_much_worse_than_kata_virtiofs() {
        let mut rng = SimRng::seed_from(1);
        let profile = blocksim::request::IoProfile::paper_throughput(
            blocksim::request::IoPattern::SeqRead,
            GUEST_MEMORY_BYTES,
        );
        let mut tp = |p: &Platform| {
            p.storage()
                .build_stack()
                .run_phase(profile, blocksim::engine::IoEngine::Libaio, true, &mut rng)
                .throughput
                .mib_per_sec()
        };
        let nine_p = tp(&kata(false));
        let vfs = tp(&kata(true));
        assert!(vfs > nine_p * 1.4, "virtio-fs {vfs} vs 9p {nine_p}");
    }

    #[test]
    fn kata_network_matches_its_weakest_leg() {
        let k = kata(false).network().mean_throughput().gbit_per_sec();
        let q = crate::builders::hypervisors::qemu(MachineModel::QemuFull, PlatformId::Qemu)
            .network()
            .mean_throughput()
            .gbit_per_sec();
        assert!((k - q).abs() < 1.0, "kata {k} vs qemu {q}");
    }

    #[test]
    fn gvisor_network_is_an_extreme_outlier() {
        let g = gvisor(false).network().mean_throughput().gbit_per_sec();
        assert!(g < 8.0, "gvisor throughput {g}");
    }

    #[test]
    fn boot_times_match_figure_13() {
        let g = gvisor(false);
        let k = kata(false);
        let g_ms = g
            .startup()
            .mean_total(StartupVariant::OciDirect)
            .as_millis_f64();
        let k_ms = k
            .startup()
            .mean_total(StartupVariant::OciDirect)
            .as_millis_f64();
        assert!((150.0..250.0).contains(&g_ms), "gvisor boot {g_ms} ms");
        assert!((500.0..750.0).contains(&k_ms), "kata boot {k_ms} ms");
    }

    #[test]
    fn kvm_platform_intercept_is_cheaper_than_ptrace() {
        let ptrace = gvisor(false);
        let kvm = gvisor(true);
        let class = oskern::syscall::SyscallClass::FileRead;
        assert!(ptrace.syscalls().dispatch_cost(class) > kvm.syscalls().dispatch_cost(class));
    }

    #[test]
    fn secure_containers_stack_the_most_defense_layers() {
        assert!(kata(false).isolation().defense_in_depth_layers() >= 4);
        assert!(gvisor(false).isolation().defense_in_depth_layers() >= 4);
    }
}
