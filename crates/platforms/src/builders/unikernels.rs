//! The OSv unikernel, run under QEMU or Firecracker.

use oskern::host::HostConfig;
use oskern::init::InitSystem;
use oskern::sched::SchedulerModel;

use memsim::features::DirectMapFeatures;
use memsim::paging::PagingMode;
use netsim::component::NetComponent;
use netsim::path::NetworkPath;
use vmm::boot::GuestKind;
use vmm::machine::MachineModel;

use crate::isolation::IsolationAttributes;
use crate::platform::Platform;
use crate::registry::PlatformId;
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

use super::{startup_from_timeline, GUEST_CORES};

/// OSv under the given hypervisor (QEMU or Firecracker in the paper).
///
/// OSv's memory behaviour is strongly affected by the hypervisor
/// (Finding 5): under QEMU it is close to native, under Firecracker it
/// inherits the vm-memory penalty. Its network throughput advantage over a
/// plain Linux guest is large under QEMU (25.7 %) and small under
/// Firecracker (6.53 %).
pub fn osv(machine: MachineModel) -> Platform {
    let under_firecracker = matches!(machine, MachineModel::Firecracker);
    let (id, paging, bandwidth_eff, osv_bonus) = if under_firecracker {
        (
            PlatformId::OsvFirecracker,
            machine.paging_mode(),
            0.82,
            1.065,
        )
    } else {
        (
            PlatformId::OsvQemu,
            // OSv under QEMU shows results close to native; its single
            // address space and large pages keep it out of the nested-walk
            // penalty in practice.
            PagingMode::Native,
            0.97,
            1.26,
        )
    };
    let mut net_components = machine.network_components();
    net_components.push(NetComponent::OsvGuestStack {
        throughput_bonus: osv_bonus,
    });
    let timeline = machine.boot_timeline(GuestKind::Osv, InitSystem::OsvRuntime);
    Platform {
        id,
        host: HostConfig::epyc2_testbed(),
        cpu: CpuSubsystem::new(SchedulerModel::Osv, GUEST_CORES),
        memory: MemorySubsystem::new(paging, DirectMapFeatures::none(), bandwidth_eff, 0.04),
        storage: StorageSubsystem::excluded("osv has no working libaio engine implementation"),
        network: NetworkSubsystem::new(NetworkPath::new(net_components)),
        startup: startup_from_timeline(&timeline),
        syscalls: SyscallPath::OsvFunctionCall {
            exit_fraction: 0.03,
        },
        isolation: IsolationAttributes {
            namespaces: false,
            cgroups: false,
            hardware_virtualization: true,
            userspace_kernel: false,
            seccomp: under_firecracker,
            shares_memory_with_host: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsystems::startup::StartupVariant;
    use memsim::tlb::PageSize;

    #[test]
    fn osv_network_advantage_depends_on_the_hypervisor() {
        let native = crate::builders::native::native()
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let osv_qemu = osv(MachineModel::QemuFull)
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let osv_fc = osv(MachineModel::Firecracker)
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let qemu = crate::builders::hypervisors::qemu(MachineModel::QemuFull, PlatformId::Qemu)
            .network()
            .mean_throughput()
            .gbit_per_sec();
        let fc = crate::builders::hypervisors::firecracker()
            .network()
            .mean_throughput()
            .gbit_per_sec();
        // OSv under QEMU nearly reaches native and beats plain QEMU by ~25 %.
        assert!(
            osv_qemu > native * 0.94,
            "osv-qemu {osv_qemu} vs native {native}"
        );
        let qemu_gain = osv_qemu / qemu - 1.0;
        assert!(
            (0.18..0.33).contains(&qemu_gain),
            "gain over qemu {qemu_gain}"
        );
        // Under Firecracker the gain is much smaller.
        let fc_gain = osv_fc / fc - 1.0;
        assert!(
            (0.02..0.12).contains(&fc_gain),
            "gain over firecracker {fc_gain}"
        );
    }

    #[test]
    fn osv_memory_depends_on_the_hypervisor() {
        let native = crate::builders::native::native();
        let size = 1 << 26;
        let n = native.memory().mean_access_latency(size, PageSize::Small4K);
        let q = osv(MachineModel::QemuFull)
            .memory()
            .mean_access_latency(size, PageSize::Small4K);
        let f = osv(MachineModel::Firecracker)
            .memory()
            .mean_access_latency(size, PageSize::Small4K);
        assert_eq!(n, q, "osv under qemu should be close to native");
        assert!(
            f > q,
            "osv under firecracker should underperform osv under qemu"
        );
    }

    #[test]
    fn osv_is_excluded_from_fio_and_lacks_multiprocess() {
        let p = osv(MachineModel::QemuFull);
        assert!(p.storage().is_excluded());
        assert!(!p.syscalls().supports_multiprocess());
    }

    #[test]
    fn osv_boots_as_fast_as_containers() {
        let t = osv(MachineModel::Firecracker)
            .startup()
            .mean_total(StartupVariant::Default)
            .as_millis_f64();
        assert!(t < 200.0, "osv-fc boot {t} ms");
        // Booting under different hypervisors has a significant effect.
        let q = osv(MachineModel::QemuFull)
            .startup()
            .mean_total(StartupVariant::Default)
            .as_millis_f64();
        assert!(q > t * 1.2, "osv-qemu {q} vs osv-fc {t}");
    }
}
