//! Qualitative isolation attributes of a platform.
//!
//! The HAP metric quantifies the *width* of the host interface; these
//! attributes capture the *depth* — the defense-in-depth layers the paper
//! argues the HAP cannot see (Finding 28).

use serde::{Deserialize, Serialize};

/// The isolation mechanisms a platform stacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IsolationAttributes {
    /// Uses Linux namespaces to reduce visibility.
    pub namespaces: bool,
    /// Uses cgroups to bound resources.
    pub cgroups: bool,
    /// Uses hardware virtualization (a second kernel behind VM exits).
    pub hardware_virtualization: bool,
    /// Re-implements the kernel interface in user space (gVisor's Sentry).
    pub userspace_kernel: bool,
    /// Applies seccomp filters to the host-facing process.
    pub seccomp: bool,
    /// Whether guest memory is shared/deduplicated with the host or other
    /// guests (KSM / NVDIMM direct map), which weakens tenant separation.
    pub shares_memory_with_host: bool,
}

impl IsolationAttributes {
    /// No isolation (native).
    pub fn none() -> Self {
        IsolationAttributes {
            namespaces: false,
            cgroups: false,
            hardware_virtualization: false,
            userspace_kernel: false,
            seccomp: false,
            shares_memory_with_host: true,
        }
    }

    /// Number of distinct defense layers stacked by the platform.
    pub fn defense_in_depth_layers(&self) -> u32 {
        u32::from(self.namespaces)
            + u32::from(self.cgroups)
            + u32::from(self.hardware_virtualization)
            + u32::from(self.userspace_kernel)
            + u32::from(self.seccomp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_has_no_defense_layers() {
        assert_eq!(IsolationAttributes::none().defense_in_depth_layers(), 0);
    }

    #[test]
    fn layers_count_each_mechanism_once() {
        let kata = IsolationAttributes {
            namespaces: true,
            cgroups: true,
            hardware_virtualization: true,
            userspace_kernel: false,
            seccomp: true,
            shares_memory_with_host: true,
        };
        assert_eq!(kata.defense_in_depth_layers(), 4);
    }
}
