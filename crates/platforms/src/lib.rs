//! # platforms
//!
//! The nine isolation platforms studied in the paper, composed from the
//! substrate crates (`oskern`, `memsim`, `blocksim`, `netsim`, `vmm`).
//!
//! Each [`Platform`] exposes the subsystem models a benchmark workload
//! drives:
//!
//! * [`subsystems::cpu::CpuSubsystem`] — thread scheduling and SIMD
//!   behaviour (ffmpeg, sysbench CPU);
//! * [`subsystems::memory::MemorySubsystem`] — access latency and copy
//!   bandwidth (tinymembench, STREAM);
//! * [`subsystems::storage::StorageSubsystem`] — the block path (fio);
//! * [`subsystems::network::NetworkSubsystem`] — the packet path (iperf3,
//!   netperf);
//! * [`subsystems::startup::StartupSubsystem`] — the boot sequence
//!   (Figs. 13–15);
//! * [`syscall_path::SyscallPath`] — how guest system calls reach (or do
//!   not reach) the host kernel, which drives both the macro-benchmarks
//!   and the HAP security metric.
//!
//! Platforms are built through [`registry::PlatformId`]:
//!
//! ```
//! use platforms::PlatformId;
//!
//! let docker = PlatformId::Docker.build();
//! let gvisor = PlatformId::GvisorPtrace.build();
//! assert!(docker.network().mean_throughput().gbit_per_sec()
//!         > gvisor.network().mean_throughput().gbit_per_sec());
//! ```

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builders;
pub mod isolation;
pub mod platform;
pub mod registry;
pub mod subsystems;
pub mod syscall_path;

pub use isolation::IsolationAttributes;
pub use platform::Platform;
pub use registry::{PlatformFamily, PlatformId};
pub use syscall_path::SyscallPath;
