//! The assembled platform model.

use oskern::host::HostConfig;

use crate::isolation::IsolationAttributes;
use crate::registry::{PlatformFamily, PlatformId};
use crate::subsystems::cpu::CpuSubsystem;
use crate::subsystems::memory::MemorySubsystem;
use crate::subsystems::network::NetworkSubsystem;
use crate::subsystems::startup::StartupSubsystem;
use crate::subsystems::storage::StorageSubsystem;
use crate::syscall_path::SyscallPath;

/// One fully configured isolation platform.
///
/// Instances are created through [`PlatformId::build`]; the struct itself
/// only exposes read access to its subsystems so that workloads cannot
/// accidentally mix components from different platforms.
#[derive(Debug)]
pub struct Platform {
    pub(crate) id: PlatformId,
    pub(crate) host: HostConfig,
    pub(crate) cpu: CpuSubsystem,
    pub(crate) memory: MemorySubsystem,
    pub(crate) storage: StorageSubsystem,
    pub(crate) network: NetworkSubsystem,
    pub(crate) startup: StartupSubsystem,
    pub(crate) syscalls: SyscallPath,
    pub(crate) isolation: IsolationAttributes,
}

impl Platform {
    /// The platform identifier.
    pub fn id(&self) -> PlatformId {
        self.id
    }

    /// The figure label of the platform.
    pub fn name(&self) -> &'static str {
        self.id.label()
    }

    /// The platform category.
    pub fn family(&self) -> PlatformFamily {
        self.id.family()
    }

    /// The host machine description.
    pub fn host(&self) -> &HostConfig {
        &self.host
    }

    /// CPU / scheduling subsystem.
    pub fn cpu(&self) -> &CpuSubsystem {
        &self.cpu
    }

    /// Memory subsystem.
    pub fn memory(&self) -> &MemorySubsystem {
        &self.memory
    }

    /// Storage subsystem.
    pub fn storage(&self) -> &StorageSubsystem {
        &self.storage
    }

    /// Network subsystem.
    pub fn network(&self) -> &NetworkSubsystem {
        &self.network
    }

    /// Start-up subsystem.
    pub fn startup(&self) -> &StartupSubsystem {
        &self.startup
    }

    /// Syscall dispatch path.
    pub fn syscalls(&self) -> &SyscallPath {
        &self.syscalls
    }

    /// Isolation attributes (defense-in-depth description).
    pub fn isolation(&self) -> &IsolationAttributes {
        &self.isolation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_expose_the_composition() {
        let p = PlatformId::Docker.build();
        assert_eq!(p.id(), PlatformId::Docker);
        assert_eq!(p.name(), "docker");
        assert_eq!(p.family(), PlatformFamily::Container);
        assert!(p.isolation().namespaces);
        assert!(p.syscalls().supports_multiprocess());
        assert_eq!(p.host().total_cores(), 64);
    }
}
