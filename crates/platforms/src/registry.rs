//! Platform identifiers and the registry that builds them.

use serde::{Deserialize, Serialize};

use crate::builders;
use crate::platform::Platform;

/// The four platform categories of Section 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlatformFamily {
    /// No isolation at all (the baseline).
    Native,
    /// Namespace/cgroup containers (Docker, LXC).
    Container,
    /// Hardware virtualization (QEMU, Firecracker, Cloud Hypervisor).
    Hypervisor,
    /// Hybrids combining container usability with stronger sandboxing
    /// (Kata, gVisor).
    SecureContainer,
    /// Library operating systems (OSv).
    Unikernel,
}

/// Identifier of one benchmarked platform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// Bare-metal execution on the host.
    Native,
    /// Docker with the default runc runtime.
    Docker,
    /// LXC with a ZFS storage pool and systemd init.
    Lxc,
    /// QEMU/KVM with the default `pc` machine model.
    Qemu,
    /// QEMU with the minimal qboot firmware (start-up experiment variant).
    QemuQboot,
    /// QEMU with the `microvm` machine model (start-up experiment variant).
    QemuMicrovm,
    /// Firecracker.
    Firecracker,
    /// Cloud Hypervisor.
    CloudHypervisor,
    /// Kata containers with the default 9p shared filesystem.
    Kata,
    /// Kata containers with virtio-fs (the Finding 7 ablation).
    KataVirtioFs,
    /// gVisor with the ptrace platform.
    GvisorPtrace,
    /// gVisor with the KVM platform.
    GvisorKvm,
    /// OSv running under QEMU.
    OsvQemu,
    /// OSv running under Firecracker.
    OsvFirecracker,
}

impl PlatformId {
    /// The primary platform set used in the paper's performance figures
    /// (one configuration per platform, matching the figure legends).
    pub fn paper_set() -> &'static [PlatformId] {
        &[
            PlatformId::Native,
            PlatformId::Docker,
            PlatformId::Lxc,
            PlatformId::Qemu,
            PlatformId::Firecracker,
            PlatformId::CloudHypervisor,
            PlatformId::Kata,
            PlatformId::GvisorPtrace,
            PlatformId::OsvQemu,
            PlatformId::OsvFirecracker,
        ]
    }

    /// Every platform configuration the workspace can build.
    pub fn all() -> &'static [PlatformId] {
        &[
            PlatformId::Native,
            PlatformId::Docker,
            PlatformId::Lxc,
            PlatformId::Qemu,
            PlatformId::QemuQboot,
            PlatformId::QemuMicrovm,
            PlatformId::Firecracker,
            PlatformId::CloudHypervisor,
            PlatformId::Kata,
            PlatformId::KataVirtioFs,
            PlatformId::GvisorPtrace,
            PlatformId::GvisorKvm,
            PlatformId::OsvQemu,
            PlatformId::OsvFirecracker,
        ]
    }

    /// The platform's category.
    pub fn family(self) -> PlatformFamily {
        match self {
            PlatformId::Native => PlatformFamily::Native,
            PlatformId::Docker | PlatformId::Lxc => PlatformFamily::Container,
            PlatformId::Qemu
            | PlatformId::QemuQboot
            | PlatformId::QemuMicrovm
            | PlatformId::Firecracker
            | PlatformId::CloudHypervisor => PlatformFamily::Hypervisor,
            PlatformId::Kata
            | PlatformId::KataVirtioFs
            | PlatformId::GvisorPtrace
            | PlatformId::GvisorKvm => PlatformFamily::SecureContainer,
            PlatformId::OsvQemu | PlatformId::OsvFirecracker => PlatformFamily::Unikernel,
        }
    }

    /// The label the figures use for this platform.
    pub fn label(self) -> &'static str {
        match self {
            PlatformId::Native => "native",
            PlatformId::Docker => "docker",
            PlatformId::Lxc => "lxc",
            PlatformId::Qemu => "qemu",
            PlatformId::QemuQboot => "qemu-qboot",
            PlatformId::QemuMicrovm => "qemu-microvm",
            PlatformId::Firecracker => "firecracker",
            PlatformId::CloudHypervisor => "cloud-hypervisor",
            PlatformId::Kata => "kata",
            PlatformId::KataVirtioFs => "kata-virtiofs",
            PlatformId::GvisorPtrace => "gvisor",
            PlatformId::GvisorKvm => "gvisor-kvm",
            PlatformId::OsvQemu => "osv",
            PlatformId::OsvFirecracker => "osv-fc",
        }
    }

    /// Builds the full platform model for this identifier.
    pub fn build(self) -> Platform {
        match self {
            PlatformId::Native => builders::native::native(),
            PlatformId::Docker => builders::containers::docker(),
            PlatformId::Lxc => builders::containers::lxc(),
            PlatformId::Qemu => builders::hypervisors::qemu(vmm::MachineModel::QemuFull, self),
            PlatformId::QemuQboot => {
                builders::hypervisors::qemu(vmm::MachineModel::QemuQboot, self)
            }
            PlatformId::QemuMicrovm => {
                builders::hypervisors::qemu(vmm::MachineModel::QemuMicrovm, self)
            }
            PlatformId::Firecracker => builders::hypervisors::firecracker(),
            PlatformId::CloudHypervisor => builders::hypervisors::cloud_hypervisor(),
            PlatformId::Kata => builders::secure::kata(false),
            PlatformId::KataVirtioFs => builders::secure::kata(true),
            PlatformId::GvisorPtrace => builders::secure::gvisor(false),
            PlatformId::GvisorKvm => builders::secure::gvisor(true),
            PlatformId::OsvQemu => builders::unikernels::osv(vmm::MachineModel::QemuFull),
            PlatformId::OsvFirecracker => builders::unikernels::osv(vmm::MachineModel::Firecracker),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_builds() {
        for id in PlatformId::all() {
            let platform = id.build();
            assert_eq!(platform.id(), *id);
            assert!(!platform.name().is_empty());
        }
    }

    #[test]
    fn paper_set_is_a_subset_of_all() {
        for id in PlatformId::paper_set() {
            assert!(PlatformId::all().contains(id));
        }
        assert_eq!(PlatformId::paper_set().len(), 10);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            PlatformId::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), PlatformId::all().len());
    }

    #[test]
    fn families_match_section_2() {
        assert_eq!(PlatformId::Docker.family(), PlatformFamily::Container);
        assert_eq!(PlatformId::Firecracker.family(), PlatformFamily::Hypervisor);
        assert_eq!(PlatformId::Kata.family(), PlatformFamily::SecureContainer);
        assert_eq!(
            PlatformId::GvisorPtrace.family(),
            PlatformFamily::SecureContainer
        );
        assert_eq!(PlatformId::OsvQemu.family(), PlatformFamily::Unikernel);
    }
}
