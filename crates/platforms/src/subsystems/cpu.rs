//! CPU / scheduling subsystem.
//!
//! Drives the ffmpeg re-encode (Fig. 5), the sysbench prime check
//! (Section 3.1) and the compute component of the macro-benchmarks.

use simcore::{Nanos, SimRng};

use oskern::sched::{SchedulerModel, ThreadScheduler, UslParams};

/// A description of a compute job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeWork {
    /// Total single-thread CPU time the job needs on the bare host.
    pub total_cpu: Nanos,
    /// Number of worker threads the job runs.
    pub threads: usize,
    /// Whether the job is dominated by wide SIMD kernels with frequent
    /// inter-thread hand-offs (the ffmpeg case); such jobs are sensitive to
    /// custom schedulers.
    pub simd_heavy: bool,
}

impl ComputeWork {
    /// The paper's ffmpeg job: re-encode a 30 MB 1080p H.264 clip to H.265
    /// with the `slower` preset using 16 threads. The single-thread CPU
    /// budget is chosen so that the 16-thread wall-clock lands around the
    /// paper's ~65 s.
    pub fn ffmpeg_reencode() -> Self {
        ComputeWork {
            total_cpu: Nanos::from_secs(980),
            threads: 16,
            simd_heavy: true,
        }
    }

    /// The sysbench CPU benchmark: single-threaded prime verification.
    pub fn sysbench_prime() -> Self {
        ComputeWork {
            total_cpu: Nanos::from_secs(10),
            threads: 1,
            simd_heavy: false,
        }
    }
}

/// The CPU subsystem of one platform.
#[derive(Debug)]
pub struct CpuSubsystem {
    scheduler: Box<dyn ThreadScheduler + Send + Sync>,
    scheduler_model: SchedulerModel,
    /// Guest-visible cores.
    pub cores: usize,
    /// Straight-line instruction throughput relative to native (1.0 for
    /// everything: hardware-assisted virtualization executes guest code
    /// natively, which is why the prime benchmark shows no differences).
    pub instruction_efficiency: f64,
    /// Relative run-to-run noise.
    pub jitter: f64,
}

impl CpuSubsystem {
    /// Creates a CPU subsystem using the given scheduler model.
    pub fn new(scheduler_model: SchedulerModel, cores: usize) -> Self {
        CpuSubsystem {
            scheduler: scheduler_model.build(),
            scheduler_model,
            cores,
            instruction_efficiency: 1.0,
            jitter: 0.015,
        }
    }

    /// Sets the run-to-run noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// The scheduler model in use.
    pub fn scheduler_model(&self) -> SchedulerModel {
        self.scheduler_model
    }

    /// The scheduler's contention parameters (used by the OLTP model).
    pub fn contention_params(&self) -> UslParams {
        self.scheduler.contention_params()
    }

    /// Parallel efficiency at a given thread count.
    pub fn parallel_efficiency(&self, threads: usize) -> f64 {
        self.scheduler.parallel_efficiency(threads, self.cores)
    }

    /// Mean wall-clock time of a compute job on this platform.
    pub fn mean_wall_clock(&self, work: ComputeWork) -> Nanos {
        let threads = work.threads.min(self.cores.max(1));
        let efficiency = self.scheduler.parallel_efficiency(work.threads, self.cores)
            * self.instruction_efficiency;
        let simd = if work.simd_heavy {
            self.scheduler.simd_heavy_penalty()
        } else {
            1.0
        };
        let parallel_time = work.total_cpu.as_secs_f64() / (threads as f64 * efficiency.max(0.01));
        Nanos::from_secs_f64(parallel_time * simd)
    }

    /// Samples one measured wall-clock time.
    pub fn sample_wall_clock(&self, work: ComputeWork, rng: &mut SimRng) -> Nanos {
        let mean = self.mean_wall_clock(work).as_secs_f64();
        Nanos::from_secs_f64(rng.normal_pos(mean, mean * self.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ffmpeg_lands_around_65_seconds_with_cfs() {
        let cpu = CpuSubsystem::new(SchedulerModel::Cfs, 16);
        let t = cpu
            .mean_wall_clock(ComputeWork::ffmpeg_reencode())
            .as_millis_f64();
        assert!((55_000.0..75_000.0).contains(&t), "ffmpeg took {t} ms");
    }

    #[test]
    fn osv_scheduler_is_a_clear_ffmpeg_outlier() {
        let cfs = CpuSubsystem::new(SchedulerModel::Cfs, 16);
        let osv = CpuSubsystem::new(SchedulerModel::Osv, 16);
        let work = ComputeWork::ffmpeg_reencode();
        let ratio =
            osv.mean_wall_clock(work).as_secs_f64() / cfs.mean_wall_clock(work).as_secs_f64();
        assert!(ratio > 1.4, "osv/cfs ratio {ratio}");
    }

    #[test]
    fn prime_benchmark_is_scheduler_independent() {
        let work = ComputeWork::sysbench_prime();
        let cfs = CpuSubsystem::new(SchedulerModel::Cfs, 16).mean_wall_clock(work);
        let osv = CpuSubsystem::new(SchedulerModel::Osv, 16).mean_wall_clock(work);
        let rel = (osv.as_secs_f64() - cfs.as_secs_f64()).abs() / cfs.as_secs_f64();
        assert!(rel < 0.05, "single-threaded prime differs by {rel}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let cpu = CpuSubsystem::new(SchedulerModel::Cfs, 16);
        let a = cpu.sample_wall_clock(ComputeWork::ffmpeg_reencode(), &mut SimRng::seed_from(1));
        let b = cpu.sample_wall_clock(ComputeWork::ffmpeg_reencode(), &mut SimRng::seed_from(1));
        assert_eq!(a, b);
    }

    #[test]
    fn more_threads_than_cores_does_not_speed_things_up() {
        let cpu = CpuSubsystem::new(SchedulerModel::Cfs, 16);
        let narrow = ComputeWork {
            total_cpu: Nanos::from_secs(100),
            threads: 16,
            simd_heavy: false,
        };
        let wide = ComputeWork {
            total_cpu: Nanos::from_secs(100),
            threads: 64,
            simd_heavy: false,
        };
        assert!(cpu.mean_wall_clock(wide) >= cpu.mean_wall_clock(narrow));
    }
}
