//! Memory subsystem.
//!
//! Drives the tinymembench latency/bandwidth and STREAM experiments
//! (Figs. 6–8) and the memory component of the Memcached model.

use simcore::{Bandwidth, Nanos, SimRng};

use memsim::bandwidth::{CopyMethod, SequentialCopyModel};
use memsim::config::MemoryHierarchy;
use memsim::features::DirectMapFeatures;
use memsim::latency::RandomAccessModel;
use memsim::paging::PagingMode;
use memsim::tlb::PageSize;

/// The memory subsystem of one platform.
#[derive(Debug, Clone)]
pub struct MemorySubsystem {
    latency_model: RandomAccessModel,
    copy_model: SequentialCopyModel,
    features: DirectMapFeatures,
}

impl MemorySubsystem {
    /// Creates a memory subsystem.
    ///
    /// * `paging` — the base translation mode of the platform;
    /// * `features` — direct-map features that may override it (Kata);
    /// * `bandwidth_efficiency` — sequential copy efficiency vs native;
    /// * `latency_jitter` — run-to-run noise of latency measurements
    ///   (Firecracker shows visibly larger error bars in Fig. 6).
    pub fn new(
        paging: PagingMode,
        features: DirectMapFeatures,
        bandwidth_efficiency: f64,
        latency_jitter: f64,
    ) -> Self {
        let hierarchy = MemoryHierarchy::epyc2();
        let effective_paging = features.effective_paging(paging);
        MemorySubsystem {
            latency_model: RandomAccessModel::new(hierarchy.clone(), effective_paging)
                .with_jitter(latency_jitter),
            copy_model: SequentialCopyModel::new(hierarchy)
                .with_platform_efficiency(bandwidth_efficiency),
            features,
        }
    }

    /// A native-equivalent memory subsystem.
    pub fn native() -> Self {
        Self::new(PagingMode::Native, DirectMapFeatures::none(), 1.0, 0.02)
    }

    /// Whether the platform supports huge pages (Kata does not).
    pub fn huge_pages_supported(&self) -> bool {
        self.features.huge_pages_supported
    }

    /// The effective paging mode after features are applied.
    pub fn paging(&self) -> PagingMode {
        self.latency_model.paging()
    }

    /// Mean random-access extra latency for a buffer of the given size.
    pub fn mean_access_latency(&self, buffer_bytes: u64, page: PageSize) -> Nanos {
        self.latency_model.mean_extra_latency(buffer_bytes, page)
    }

    /// Samples one measured random-access latency.
    pub fn sample_access_latency(
        &self,
        buffer_bytes: u64,
        page: PageSize,
        rng: &mut SimRng,
    ) -> Nanos {
        self.latency_model
            .sample_extra_latency(buffer_bytes, page, rng)
    }

    /// Mean sequential copy bandwidth for the given method.
    pub fn mean_copy_bandwidth(&self, method: CopyMethod) -> Bandwidth {
        self.copy_model.mean_bandwidth(method)
    }

    /// Samples one measured copy bandwidth.
    pub fn sample_copy_bandwidth(&self, method: CopyMethod, rng: &mut SimRng) -> Bandwidth {
        self.copy_model.sample_bandwidth(method, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firecracker_style_subsystem_has_higher_latency_than_native() {
        let native = MemorySubsystem::native();
        let fc = MemorySubsystem::new(
            PagingMode::nested_with_vmm_overhead(Nanos::from_nanos(95)),
            DirectMapFeatures::none(),
            0.80,
            0.06,
        );
        let size = 1 << 26;
        assert!(
            fc.mean_access_latency(size, PageSize::Small4K)
                > native.mean_access_latency(size, PageSize::Small4K)
        );
        assert!(
            fc.mean_copy_bandwidth(CopyMethod::StreamCopy)
                .bytes_per_sec()
                < native
                    .mean_copy_bandwidth(CopyMethod::StreamCopy)
                    .bytes_per_sec()
        );
    }

    #[test]
    fn kata_direct_map_restores_native_latency() {
        let native = MemorySubsystem::native();
        let kata = MemorySubsystem::new(
            PagingMode::nested_hardware(),
            DirectMapFeatures::kata(),
            0.97,
            0.03,
        );
        let size = 1 << 26;
        let native_lat = native.mean_access_latency(size, PageSize::Small4K);
        let kata_lat = kata.mean_access_latency(size, PageSize::Small4K);
        assert_eq!(native_lat, kata_lat);
        assert!(!kata.huge_pages_supported());
    }

    #[test]
    fn sampled_values_are_reproducible() {
        let m = MemorySubsystem::native();
        let a = m.sample_access_latency(1 << 24, PageSize::Small4K, &mut SimRng::seed_from(9));
        let b = m.sample_access_latency(1 << 24, PageSize::Small4K, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }
}
