//! Per-subsystem performance models exposed by every platform.

pub mod cpu;
pub mod memory;
pub mod network;
pub mod startup;
pub mod storage;

pub use cpu::{ComputeWork, CpuSubsystem};
pub use memory::MemorySubsystem;
pub use network::NetworkSubsystem;
pub use startup::{StartupSubsystem, StartupVariant};
pub use storage::StorageSubsystem;
