//! Network subsystem.
//!
//! Drives the iperf3 and netperf experiments (Figs. 11 and 12) and the
//! network component of the Memcached and MySQL models.

use simcore::{Bandwidth, Nanos, SimRng};

use netsim::path::{NetworkOutcome, NetworkPath};
use oskern::ftrace::FtraceSession;

/// The network subsystem of one platform.
#[derive(Debug, Clone)]
pub struct NetworkSubsystem {
    path: NetworkPath,
}

impl NetworkSubsystem {
    /// Creates a network subsystem over the given path.
    pub fn new(path: NetworkPath) -> Self {
        NetworkSubsystem { path }
    }

    /// The underlying path.
    pub fn path(&self) -> &NetworkPath {
        &self.path
    }

    /// Mean streaming throughput.
    pub fn mean_throughput(&self) -> Bandwidth {
        self.path.mean_throughput()
    }

    /// Mean request/response round-trip latency.
    pub fn mean_rtt(&self) -> Nanos {
        self.path.mean_rtt()
    }

    /// Runs one iperf3-style measurement.
    pub fn run_stream(&self, rng: &mut SimRng) -> NetworkOutcome {
        self.path.run_stream(rng)
    }

    /// Runs one netperf-style request/response measurement.
    pub fn run_request_response(&self, rng: &mut SimRng) -> NetworkOutcome {
        self.path.run_request_response(rng)
    }

    /// Records the host kernel functions a streaming run touches.
    pub fn trace_stream(&self, session: &mut FtraceSession, segments: u64) {
        self.path.trace_stream(session, segments);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::component::NetComponent;

    #[test]
    fn subsystem_delegates_to_the_path() {
        let sub = NetworkSubsystem::new(NetworkPath::new(vec![NetComponent::Bridge]));
        assert!(sub.mean_throughput().gbit_per_sec() > 30.0);
        assert!(sub.mean_rtt() > Nanos::ZERO);
        let out = sub.run_stream(&mut SimRng::seed_from(1));
        assert!(out.p90_rtt >= out.mean_rtt);
    }

    #[test]
    fn traces_include_host_stack_functions() {
        let sub = NetworkSubsystem::new(NetworkPath::new(vec![]));
        let mut session = FtraceSession::start();
        sub.trace_stream(&mut session, 10);
        assert!(session.trace().touched("tcp_sendmsg"));
    }
}
