//! Start-up subsystem.
//!
//! Drives the boot-time CDF experiments (Figs. 13–15). Every platform
//! exposes its boot sequence as a list of phases; the containers
//! additionally distinguish whether they are started through the Docker
//! daemon or by invoking the OCI runtime directly (the ~250 ms difference
//! the paper reports), and the hypervisor/unikernel platforms can report
//! the alternative "grep stdout" measurement method of Fig. 15.

use simcore::{Nanos, SimRng};

use oskern::init::BootPhase;

/// How the start-up time is measured / triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StartupVariant {
    /// End-to-end, started the default way (Docker daemon for containers,
    /// direct process invocation for hypervisors).
    Default,
    /// Containers only: invoke the OCI runtime directly, bypassing the
    /// Docker daemon.
    OciDirect,
    /// Hypervisors/unikernels only: stop the clock when the guest prints
    /// its ready line instead of at process termination.
    StdoutMethod,
}

/// The start-up model of one platform.
#[derive(Debug, Clone)]
pub struct StartupSubsystem {
    phases: Vec<BootPhase>,
    /// Extra latency when the container is created through the Docker
    /// daemon (zero for non-container platforms).
    daemon_overhead: Nanos,
    /// Process-termination overhead excluded by the stdout method.
    termination: Nanos,
    /// Whether the OCI-direct variant is meaningful for this platform.
    supports_oci_direct: bool,
}

impl StartupSubsystem {
    /// Creates a start-up model from explicit phases.
    pub fn new(
        phases: Vec<BootPhase>,
        daemon_overhead: Nanos,
        termination: Nanos,
        supports_oci_direct: bool,
    ) -> Self {
        StartupSubsystem {
            phases,
            daemon_overhead,
            termination,
            supports_oci_direct,
        }
    }

    /// The boot phases.
    pub fn phases(&self) -> &[BootPhase] {
        &self.phases
    }

    /// Whether the OCI-direct variant exists for this platform.
    pub fn supports_oci_direct(&self) -> bool {
        self.supports_oci_direct
    }

    /// Mean total boot time for the given variant.
    pub fn mean_total(&self, variant: StartupVariant) -> Nanos {
        let phases: Nanos = self.phases.iter().map(|p| p.mean).sum();
        match variant {
            StartupVariant::Default => phases + self.daemon_overhead + self.termination,
            StartupVariant::OciDirect => phases + self.termination,
            StartupVariant::StdoutMethod => phases + self.daemon_overhead,
        }
    }

    /// Samples one boot measurement for the given variant.
    pub fn sample(&self, variant: StartupVariant, rng: &mut SimRng) -> Nanos {
        let mut total: Nanos = self.phases.iter().map(|p| p.sample(rng)).sum();
        match variant {
            StartupVariant::Default => {
                total += self.jittered(self.daemon_overhead, rng);
                total += self.jittered(self.termination, rng);
            }
            StartupVariant::OciDirect => {
                total += self.jittered(self.termination, rng);
            }
            StartupVariant::StdoutMethod => {
                total += self.jittered(self.daemon_overhead, rng);
            }
        }
        total
    }

    fn jittered(&self, base: Nanos, rng: &mut SimRng) -> Nanos {
        let mean = base.as_secs_f64();
        Nanos::from_secs_f64(rng.normal_pos(mean, mean * 0.08))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docker_like() -> StartupSubsystem {
        StartupSubsystem::new(
            vec![
                BootPhase::new("runtime", Nanos::from_millis(70), Nanos::from_millis(8)),
                BootPhase::new("init", Nanos::from_millis(20), Nanos::from_millis(3)),
            ],
            Nanos::from_millis(250),
            Nanos::from_millis(10),
            true,
        )
    }

    #[test]
    fn oci_direct_is_faster_by_the_daemon_overhead() {
        let s = docker_like();
        let via_daemon = s.mean_total(StartupVariant::Default);
        let direct = s.mean_total(StartupVariant::OciDirect);
        assert_eq!(via_daemon - direct, Nanos::from_millis(250));
    }

    #[test]
    fn stdout_method_excludes_termination() {
        let s = docker_like();
        let e2e = s.mean_total(StartupVariant::Default);
        let stdout = s.mean_total(StartupVariant::StdoutMethod);
        assert_eq!(e2e - stdout, Nanos::from_millis(10));
    }

    #[test]
    fn samples_are_reproducible_and_near_the_mean() {
        let s = docker_like();
        let a = s.sample(StartupVariant::Default, &mut SimRng::seed_from(4));
        let b = s.sample(StartupVariant::Default, &mut SimRng::seed_from(4));
        assert_eq!(a, b);
        let mean = s.mean_total(StartupVariant::Default).as_millis_f64();
        assert!((a.as_millis_f64() - mean).abs() < mean * 0.3);
    }
}
