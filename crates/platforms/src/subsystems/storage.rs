//! Storage subsystem.
//!
//! Drives the fio experiments (Figs. 9 and 10) and the persistence
//! component of the MySQL model.

use blocksim::layers::StorageLayer;
use blocksim::stack::StorageStack;

/// The storage subsystem of one platform.
#[derive(Debug, Clone)]
pub struct StorageSubsystem {
    layers: Vec<StorageLayer>,
    guest_memory_bytes: Option<u64>,
    block_efficiency: f64,
    jitter: f64,
    excluded_reason: Option<&'static str>,
}

impl StorageSubsystem {
    /// Creates a storage subsystem with the given layer stack.
    ///
    /// `guest_memory_bytes` is `Some` when a second kernel (and therefore
    /// a guest page cache) sits on the path.
    pub fn new(layers: Vec<StorageLayer>, guest_memory_bytes: Option<u64>) -> Self {
        StorageSubsystem {
            layers,
            guest_memory_bytes,
            block_efficiency: 1.0,
            jitter: 0.04,
            excluded_reason: None,
        }
    }

    /// Marks the platform as excluded from the fio figures, recording why
    /// (Firecracker cannot attach extra drives; OSv has no working libaio).
    pub fn excluded(reason: &'static str) -> Self {
        StorageSubsystem {
            layers: Vec::new(),
            guest_memory_bytes: None,
            block_efficiency: 1.0,
            jitter: 0.0,
            excluded_reason: Some(reason),
        }
    }

    /// Applies a VMM-specific virtio-blk efficiency factor (Cloud
    /// Hypervisor's immature implementation).
    pub fn with_block_efficiency(mut self, efficiency: f64) -> Self {
        self.block_efficiency = efficiency.clamp(0.05, 1.0);
        self
    }

    /// Sets the run-to-run noise.
    pub fn with_jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter.max(0.0);
        self
    }

    /// Whether the platform participates in the fio experiments.
    pub fn is_excluded(&self) -> bool {
        self.excluded_reason.is_some()
    }

    /// Why the platform is excluded, if it is.
    pub fn excluded_reason(&self) -> Option<&'static str> {
        self.excluded_reason
    }

    /// The layer stack of this platform.
    pub fn layers(&self) -> &[StorageLayer] {
        &self.layers
    }

    /// The block efficiency factor applied to the device.
    pub fn block_efficiency(&self) -> f64 {
        self.block_efficiency
    }

    /// Builds a fresh storage stack (fresh caches) for one benchmark run.
    pub fn build_stack(&self) -> StorageStack {
        let mut device = blocksim::device::BlockDevice::nvme_testbed();
        device.seq_read_bandwidth = device.seq_read_bandwidth.scale(self.block_efficiency);
        device.seq_write_bandwidth = device.seq_write_bandwidth.scale(self.block_efficiency);
        StorageStack::new(self.layers.clone(), self.guest_memory_bytes)
            .with_device(device)
            .with_jitter(self.jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn excluded_subsystem_reports_reason() {
        let s = StorageSubsystem::excluded("no libaio support");
        assert!(s.is_excluded());
        assert_eq!(s.excluded_reason(), Some("no libaio support"));
    }

    #[test]
    fn block_efficiency_scales_the_device() {
        let full = StorageSubsystem::new(vec![StorageLayer::VirtioBlk], Some(2 << 30));
        let slow = StorageSubsystem::new(vec![StorageLayer::VirtioBlk], Some(2 << 30))
            .with_block_efficiency(0.5);
        let mut rng = simcore::SimRng::seed_from(1);
        let profile = blocksim::request::IoProfile::paper_throughput(
            blocksim::request::IoPattern::SeqRead,
            2 << 30,
        );
        let a = full
            .build_stack()
            .run_phase(profile, blocksim::engine::IoEngine::Libaio, true, &mut rng)
            .throughput;
        let b = slow
            .build_stack()
            .run_phase(profile, blocksim::engine::IoEngine::Libaio, true, &mut rng)
            .throughput;
        assert!(a.bytes_per_sec() > b.bytes_per_sec() * 1.5);
    }

    #[test]
    fn stacks_are_fresh_per_run() {
        let s = StorageSubsystem::new(vec![StorageLayer::BindMount], None);
        let a = s.build_stack();
        let b = s.build_stack();
        assert_eq!(a.layers(), b.layers());
        assert!(!a.has_guest_cache());
    }
}
