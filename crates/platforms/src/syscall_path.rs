//! How guest system calls reach (or avoid) the host kernel.
//!
//! This is the architectural property Section 2 of the paper spends most
//! of its time on, and the direct input to the HAP metric of Section 4:
//!
//! * containers dispatch syscalls straight into the shared host kernel;
//! * hypervisor guests run their own kernel — most syscalls never leave
//!   the guest, only I/O reaches the host via VM exits;
//! * gVisor intercepts syscalls in the Sentry (via ptrace or KVM), which
//!   itself issues a reduced, seccomp-filtered set of host syscalls and
//!   delegates file I/O to the Gofer;
//! * OSv turns syscalls into ordinary function calls inside the unikernel.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use oskern::ftrace::FtraceSession;
use oskern::syscall::{SyscallClass, SyscallTable};
use vmm::vcpu::VmExit;

/// The dispatch path of guest system calls.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SyscallPath {
    /// Direct dispatch into the host kernel (native, Docker, LXC).
    Direct {
        /// Extra per-syscall cost from seccomp/apparmor filters attached by
        /// the container runtime (zero for native).
        filter_overhead: Nanos,
    },
    /// The syscall is handled by the guest kernel; only the fraction that
    /// requires device I/O causes a VM exit into the host.
    GuestKernel {
        /// Fraction of syscalls that end up exiting to the host
        /// (I/O-bound workloads are near the high end).
        exit_fraction: f64,
        /// Whether virtio notifications are serviced by vhost in the host
        /// kernel (QEMU) or by the VMM process (Firecracker, Cloud
        /// Hypervisor); the latter adds a userspace bounce.
        vmm_serviced: bool,
    },
    /// gVisor: every syscall is intercepted and redirected to the Sentry.
    SentryIntercept {
        /// Cost of stopping/redirecting one syscall (ptrace is expensive,
        /// KVM-assisted switching is cheaper).
        intercept_cost: Nanos,
        /// Whether file-I/O syscalls are forwarded to the Gofer process.
        gofer_for_io: bool,
    },
    /// OSv: libc calls resolve to function calls in the unikernel; only
    /// virtio I/O reaches the host through the hypervisor.
    OsvFunctionCall {
        /// Fraction of operations that still require a host-visible I/O
        /// exit.
        exit_fraction: f64,
    },
}

impl SyscallPath {
    /// Average cost of one guest "syscall" of the given class, including
    /// whatever part of it reaches the host.
    pub fn dispatch_cost(&self, class: SyscallClass) -> Nanos {
        let table = SyscallTable::native();
        let direct = table.cost(class).total();
        match *self {
            SyscallPath::Direct { filter_overhead } => direct + filter_overhead,
            SyscallPath::GuestKernel {
                exit_fraction,
                vmm_serviced,
            } => {
                // Guest kernel work costs about the same as host kernel
                // work; a fraction of calls additionally pays for an exit.
                let exit = if vmm_serviced {
                    VmExit::UserspaceIo.cost()
                } else {
                    VmExit::InKernelEmulation.cost()
                };
                direct + exit.scale(exit_fraction)
            }
            SyscallPath::SentryIntercept {
                intercept_cost,
                gofer_for_io,
            } => {
                let gofer = if gofer_for_io && is_file_io(class) {
                    Nanos::from_micros(70)
                } else {
                    Nanos::ZERO
                };
                direct + intercept_cost + gofer
            }
            SyscallPath::OsvFunctionCall { exit_fraction } => {
                // No mode switch: the "syscall" is a function call. Only
                // the I/O fraction pays a virtio exit.
                let local = Nanos::from_nanos(40);
                local + VmExit::UserspaceIo.cost().scale(exit_fraction)
            }
        }
    }

    /// Records the host kernel functions `count` dispatches of `class`
    /// cause, honouring the architecture (guest-kernel syscalls that never
    /// exit touch nothing on the host).
    pub fn trace_dispatch(&self, session: &mut FtraceSession, class: SyscallClass, count: u64) {
        let table = SyscallTable::native();
        match *self {
            SyscallPath::Direct { .. } => {
                table.trace_dispatch(session, class, count);
            }
            SyscallPath::GuestKernel {
                exit_fraction,
                vmm_serviced,
            } => {
                let exits = (count as f64 * exit_fraction).round() as u64;
                if exits > 0 {
                    // Page faults on not-yet-mapped guest memory surface as
                    // EPT violations; everything else that leaves the guest
                    // is a device notification bounced to the VMM.
                    if class == SyscallClass::PageFault {
                        VmExit::EptViolation.trace(session, exits);
                    } else {
                        VmExit::UserspaceIo.trace(session, exits);
                        if !vmm_serviced {
                            session.invoke_all(&["vhost_worker", "vhost_signal"], exits);
                        }
                    }
                    // Only I/O classes cause the VMM process to re-enter the
                    // host kernel with real syscalls on the guest's behalf;
                    // CPU/scheduling/memory work stays inside the guest.
                    if is_host_visible_io(class) {
                        table.trace_dispatch(session, class, exits);
                    }
                }
            }
            SyscallPath::SentryIntercept { gofer_for_io, .. } => {
                // The interception itself (ptrace stop or KVM exit).
                session.invoke_all(
                    &[
                        "ptrace_stop",
                        "ptrace_notify",
                        "ptrace_check_attach",
                        "signal_wake_up_state",
                    ],
                    count,
                );
                // The Sentry re-issues a reduced syscall set through its
                // seccomp filters.
                session.invoke_all(
                    &["seccomp_filter", "__seccomp_filter", "seccomp_run_filters"],
                    count,
                );
                table.trace_dispatch(session, class, count);
                if gofer_for_io && is_file_io(class) {
                    session.invoke_all(
                        &[
                            "unix_stream_sendmsg",
                            "unix_stream_recvmsg",
                            "p9_client_rpc",
                        ],
                        count,
                    );
                }
            }
            SyscallPath::OsvFunctionCall { exit_fraction } => {
                let exits = (count as f64 * exit_fraction).round() as u64;
                if exits > 0 {
                    VmExit::UserspaceIo.trace(session, exits);
                    if is_host_visible_io(class) {
                        table.trace_dispatch(session, class, exits);
                    }
                }
            }
        }
    }

    /// Whether the platform supports multi-process guests (`fork`/`exec`).
    /// OSv does not, which excludes multi-process workloads.
    pub fn supports_multiprocess(&self) -> bool {
        !matches!(self, SyscallPath::OsvFunctionCall { .. })
    }
}

/// Classes whose guest-side activity causes the VMM process to issue real
/// host syscalls (device I/O); pure CPU/memory/scheduling classes do not.
fn is_host_visible_io(class: SyscallClass) -> bool {
    is_file_io(class)
        || matches!(
            class,
            SyscallClass::NetSend | SyscallClass::NetReceive | SyscallClass::NetSetup
        )
}

fn is_file_io(class: SyscallClass) -> bool {
    matches!(
        class,
        SyscallClass::FileRead
            | SyscallClass::FileWrite
            | SyscallClass::FileMeta
            | SyscallClass::AioSubmit
            | SyscallClass::Fsync
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn direct() -> SyscallPath {
        SyscallPath::Direct {
            filter_overhead: Nanos::ZERO,
        }
    }

    fn gvisor_ptrace() -> SyscallPath {
        SyscallPath::SentryIntercept {
            intercept_cost: Nanos::from_micros(9),
            gofer_for_io: true,
        }
    }

    #[test]
    fn osv_syscalls_are_cheapest_for_non_io() {
        let osv = SyscallPath::OsvFunctionCall { exit_fraction: 0.0 };
        assert!(
            osv.dispatch_cost(SyscallClass::Futex) < direct().dispatch_cost(SyscallClass::Futex)
        );
    }

    #[test]
    fn sentry_interception_is_the_most_expensive_file_io() {
        let d = direct().dispatch_cost(SyscallClass::FileRead);
        let g = gvisor_ptrace().dispatch_cost(SyscallClass::FileRead);
        assert!(g > d * 5, "gvisor {g} vs direct {d}");
    }

    #[test]
    fn guest_kernel_exit_fraction_scales_cost() {
        let rarely = SyscallPath::GuestKernel {
            exit_fraction: 0.02,
            vmm_serviced: false,
        };
        let often = SyscallPath::GuestKernel {
            exit_fraction: 0.5,
            vmm_serviced: false,
        };
        assert!(
            often.dispatch_cost(SyscallClass::NetSend)
                > rarely.dispatch_cost(SyscallClass::NetSend)
        );
    }

    #[test]
    fn trace_direct_hits_many_functions_guest_kernel_hits_few() {
        let mut direct_session = FtraceSession::start();
        direct().trace_dispatch(&mut direct_session, SyscallClass::Futex, 100);
        let mut guest_session = FtraceSession::start();
        SyscallPath::GuestKernel {
            exit_fraction: 0.0,
            vmm_serviced: false,
        }
        .trace_dispatch(&mut guest_session, SyscallClass::Futex, 100);
        assert!(direct_session.trace().distinct_functions() > 5);
        assert_eq!(guest_session.trace().distinct_functions(), 0);
    }

    #[test]
    fn gvisor_traces_include_ptrace_and_seccomp() {
        let mut session = FtraceSession::start();
        gvisor_ptrace().trace_dispatch(&mut session, SyscallClass::FileRead, 10);
        let trace = session.finish();
        assert!(trace.touched("ptrace_stop"));
        assert!(trace.touched("seccomp_run_filters"));
        assert!(trace.touched("p9_client_rpc"));
    }

    #[test]
    fn only_osv_lacks_multiprocess_support() {
        assert!(direct().supports_multiprocess());
        assert!(gvisor_ptrace().supports_multiprocess());
        assert!(!SyscallPath::OsvFunctionCall { exit_fraction: 0.1 }.supports_multiprocess());
    }
}
