//! The database: a named collection of tables.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::table::{Row, Table, TableStats};
use crate::txn::Transaction;

/// A database holding named tables.
///
/// The sysbench OLTP setup creates three tables of one million rows each;
/// [`Database::populate_sysbench`] builds a (scaled-down) equivalent.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Arc<RwLock<BTreeMap<String, Table>>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Creates a table; replaces any existing table with the same name.
    pub fn create_table(&self, name: &str) -> Table {
        let table = Table::new(name);
        self.tables.write().insert(name.to_string(), table.clone());
        table
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<Table> {
        self.tables.read().get(name).cloned()
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Begins a transaction.
    pub fn begin(&self) -> Transaction {
        Transaction::new()
    }

    /// Folds every table's [`TableStats`] snapshot into one
    /// database-wide total, in canonical (name) order.
    pub fn stats(&self) -> TableStats {
        self.tables
            .read()
            .values()
            .map(Table::stats)
            .fold(TableStats::default(), TableStats::merged)
    }

    /// Creates `tables` sysbench-style tables with `rows_per_table` rows
    /// each and returns them.
    pub fn populate_sysbench(&self, tables: usize, rows_per_table: u64) -> Vec<Table> {
        (1..=tables)
            .map(|i| {
                let table = self.create_table(&format!("sbtest{i}"));
                for id in 1..=rows_per_table {
                    let row = Row::new(id, id % 1000, format!("sysbench-pad-{id}"));
                    table.insert(row).expect("fresh table has no duplicates");
                }
                table
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_tables() {
        let db = Database::new();
        db.create_table("a");
        db.create_table("b");
        assert!(db.table("a").is_some());
        assert!(db.table("missing").is_none());
        assert_eq!(db.table_names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn populate_sysbench_builds_expected_shape() {
        let db = Database::new();
        let tables = db.populate_sysbench(3, 200);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.row_count(), 200);
            assert_eq!(t.max_id(), Some(200));
        }
        assert!(db.table("sbtest2").is_some());
    }

    #[test]
    fn handles_to_the_same_table_share_state() {
        let db = Database::new();
        db.create_table("shared");
        let a = db.table("shared").unwrap();
        let b = db.table("shared").unwrap();
        a.insert(Row::new(1, 1, "x".into())).unwrap();
        assert_eq!(b.row_count(), 1);
    }

    #[test]
    fn database_stats_fold_over_all_tables() {
        let db = Database::new();
        let tables = db.populate_sysbench(2, 50);
        tables[0].delete(1).unwrap();
        assert!(tables[1].locks().try_lock(9));
        assert!(!tables[1].locks().try_lock(9));
        let stats = db.stats();
        assert_eq!(stats.rows, 99);
        assert_eq!(stats.deletes, 1);
        assert_eq!(stats.lock_waits, 1);
    }

    #[test]
    fn transactions_work_through_the_database_handle() {
        let db = Database::new();
        let tables = db.populate_sysbench(1, 50);
        let mut txn = db.begin();
        assert!(txn.select(&tables[0], 25).is_ok());
        txn.commit();
    }
}
