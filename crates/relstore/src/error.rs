//! Error type for the relational engine.

use std::fmt;

/// Errors returned by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The requested table does not exist.
    UnknownTable(String),
    /// A row with the given primary key already exists.
    DuplicateKey(u64),
    /// No row with the given primary key exists.
    RowNotFound(u64),
    /// A lock could not be acquired (the engine uses no-wait locking, so
    /// contention surfaces as retries rather than deadlocks).
    LockContended(u64),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::UnknownTable(name) => write!(f, "unknown table: {name}"),
            StoreError::DuplicateKey(id) => write!(f, "duplicate primary key: {id}"),
            StoreError::RowNotFound(id) => write!(f, "row not found: {id}"),
            StoreError::LockContended(id) => write!(f, "lock contended on row {id}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(StoreError::UnknownTable("t".into())
            .to_string()
            .contains('t'));
        assert!(StoreError::DuplicateKey(7).to_string().contains('7'));
        assert!(StoreError::LockContended(9).to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<StoreError>();
    }
}
