//! # relstore
//!
//! A miniature relational storage engine standing in for MySQL 5.6 in the
//! Sysbench `oltp_read_write` experiment (Fig. 17).
//!
//! The engine implements exactly the features that benchmark exercises:
//! tables with an integer primary key and a secondary index, point
//! SELECT / UPDATE / DELETE / INSERT, row-level locking, and transactions
//! that group one of each statement ("a transaction" in the paper's
//! terminology). The lock manager is what produces the thread-contention
//! behaviour whose interaction with each platform's scheduler the paper
//! measures.
//!
//! ```
//! use relstore::{Database, Row};
//!
//! let db = Database::new();
//! db.create_table("sbtest1");
//! let table = db.table("sbtest1").unwrap();
//! table.insert(Row::new(1, 42, "padding".into())).unwrap();
//! let mut txn = db.begin();
//! let row = txn.select(&table, 1).unwrap();
//! assert_eq!(row.k, 42);
//! txn.commit();
//! ```

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod database;
pub mod error;
pub mod lock;
pub mod table;
pub mod txn;

pub use database::Database;
pub use error::StoreError;
pub use lock::LockManager;
pub use table::{Row, Table, TableStats};
pub use txn::Transaction;
