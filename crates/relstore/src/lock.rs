//! Row-level lock manager.
//!
//! Sysbench's `oltp_read_write` issues point UPDATE/DELETE/INSERT
//! statements from many client threads. The no-wait row lock manager here
//! is what turns that concurrency into contention: when two threads target
//! the same row, one of them fails to acquire the lock, retries, and
//! throughput stops scaling — the effect behind the ~50-thread peak in
//! Fig. 17.

use std::collections::HashSet;

use parking_lot::Mutex;

/// A no-wait row-level lock manager.
#[derive(Debug, Default)]
pub struct LockManager {
    held: Mutex<HashSet<u64>>,
    contended: Mutex<u64>,
}

impl LockManager {
    /// Creates a lock manager with no held locks.
    pub fn new() -> Self {
        LockManager::default()
    }

    /// Tries to acquire the lock for `row_id`; returns `false` (and counts
    /// a contention event) if another transaction holds it.
    pub fn try_lock(&self, row_id: u64) -> bool {
        let mut held = self.held.lock();
        if held.contains(&row_id) {
            *self.contended.lock() += 1;
            false
        } else {
            held.insert(row_id);
            true
        }
    }

    /// Releases the lock for `row_id` (idempotent).
    pub fn unlock(&self, row_id: u64) {
        self.held.lock().remove(&row_id);
    }

    /// Releases a batch of locks.
    pub fn unlock_all(&self, row_ids: &[u64]) {
        let mut held = self.held.lock();
        for id in row_ids {
            held.remove(id);
        }
    }

    /// Number of locks currently held.
    pub fn held_count(&self) -> usize {
        self.held.lock().len()
    }

    /// Number of contention events observed so far.
    pub fn contention_events(&self) -> u64 {
        *self.contended.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_cycle() {
        let lm = LockManager::new();
        assert!(lm.try_lock(1));
        assert!(!lm.try_lock(1));
        assert_eq!(lm.contention_events(), 1);
        lm.unlock(1);
        assert!(lm.try_lock(1));
        assert_eq!(lm.held_count(), 1);
    }

    #[test]
    fn unlock_all_releases_batch() {
        let lm = LockManager::new();
        for id in 0..10 {
            assert!(lm.try_lock(id));
        }
        lm.unlock_all(&(0..10).collect::<Vec<_>>());
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn unlocking_unheld_lock_is_harmless() {
        let lm = LockManager::new();
        lm.unlock(99);
        assert_eq!(lm.held_count(), 0);
    }

    #[test]
    fn concurrent_threads_never_both_hold_the_same_row() {
        let lm = Arc::new(LockManager::new());
        let mut handles = Vec::new();
        let successes = Arc::new(Mutex::new(0u32));
        for _ in 0..8 {
            let lm = Arc::clone(&lm);
            let successes = Arc::clone(&successes);
            // simlint::allow(D004, reason = "bounded smoke test of no-wait row locking under real contention; asserts only thread-order-independent invariants")
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    if lm.try_lock(7) {
                        *successes.lock() += 1;
                        lm.unlock(7);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Every successful acquisition was paired with a release, so the
        // lock must be free at the end and at least one thread succeeded.
        assert_eq!(lm.held_count(), 0);
        assert!(*successes.lock() > 0);
    }
}
