//! Tables, rows and indexes.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::StoreError;
use crate::lock::LockManager;

/// A row in the sysbench-style schema: integer primary key `id`, an
/// integer column `k` carrying a secondary index, and a padding string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Primary key.
    pub id: u64,
    /// Secondary-indexed integer column.
    pub k: u64,
    /// Payload column (sysbench's `c`/`pad` columns merged).
    pub pad: String,
}

impl Row {
    /// Creates a row.
    pub fn new(id: u64, k: u64, pad: String) -> Self {
        Row { id, k, pad }
    }
}

/// A table: clustered B-Tree on the primary key plus a secondary index on
/// `k`, protected by a reader/writer lock, with a row-level lock manager
/// for transactional mutation.
#[derive(Debug, Clone)]
pub struct Table {
    inner: Arc<TableInner>,
}

#[derive(Debug)]
struct TableInner {
    name: String,
    rows: RwLock<BTreeMap<u64, Row>>,
    k_index: RwLock<BTreeMap<u64, Vec<u64>>>,
    locks: LockManager,
    /// Rows deleted over the table's lifetime — the relational analogue
    /// of the kvstore shard's eviction counter.
    deletes: parking_lot::Mutex<u64>,
}

/// A point-in-time snapshot of one table's occupancy counters, taken in
/// one call — the relational analogue of the kvstore `ShardStats`
/// snapshot (`rows`/`deletes` standing in for `len`/`evictions`), so
/// harness reports can surface both engines' stores through one shape.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Number of live rows.
    pub rows: usize,
    /// Rows deleted over the table's lifetime (the eviction analogue).
    pub deletes: u64,
    /// Row-lock contention events observed by the lock manager.
    pub lock_waits: u64,
}

impl TableStats {
    /// Folds another snapshot into this one, component-wise.
    #[must_use]
    pub fn merged(self, other: TableStats) -> TableStats {
        TableStats {
            rows: self.rows + other.rows,
            deletes: self.deletes + other.deletes,
            lock_waits: self.lock_waits + other.lock_waits,
        }
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: &str) -> Self {
        Table {
            inner: Arc::new(TableInner {
                name: name.to_string(),
                rows: RwLock::new(BTreeMap::new()),
                k_index: RwLock::new(BTreeMap::new()),
                locks: LockManager::new(),
                deletes: parking_lot::Mutex::new(0),
            }),
        }
    }

    /// Snapshot of the table's occupancy counters.
    pub fn stats(&self) -> TableStats {
        TableStats {
            rows: self.inner.rows.read().len(),
            deletes: *self.inner.deletes.lock(),
            lock_waits: self.inner.locks.contention_events(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.inner.rows.read().len()
    }

    /// The row-level lock manager of this table.
    pub fn locks(&self) -> &LockManager {
        &self.inner.locks
    }

    /// Inserts a new row.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateKey`] if the primary key exists.
    pub fn insert(&self, row: Row) -> Result<(), StoreError> {
        let mut rows = self.inner.rows.write();
        if rows.contains_key(&row.id) {
            return Err(StoreError::DuplicateKey(row.id));
        }
        self.inner
            .k_index
            .write()
            .entry(row.k)
            .or_default()
            .push(row.id);
        rows.insert(row.id, row);
        Ok(())
    }

    /// Reads a row by primary key.
    pub fn get(&self, id: u64) -> Option<Row> {
        self.inner.rows.read().get(&id).cloned()
    }

    /// Updates the `k` column of a row, maintaining the secondary index.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RowNotFound`] if the row does not exist.
    pub fn update_k(&self, id: u64, new_k: u64) -> Result<(), StoreError> {
        let mut rows = self.inner.rows.write();
        let row = rows.get_mut(&id).ok_or(StoreError::RowNotFound(id))?;
        let old_k = row.k;
        row.k = new_k;
        drop(rows);
        let mut index = self.inner.k_index.write();
        if let Some(ids) = index.get_mut(&old_k) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                index.remove(&old_k);
            }
        }
        index.entry(new_k).or_default().push(id);
        Ok(())
    }

    /// Deletes a row by primary key.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RowNotFound`] if the row does not exist.
    pub fn delete(&self, id: u64) -> Result<Row, StoreError> {
        let mut rows = self.inner.rows.write();
        let row = rows.remove(&id).ok_or(StoreError::RowNotFound(id))?;
        *self.inner.deletes.lock() += 1;
        let mut index = self.inner.k_index.write();
        if let Some(ids) = index.get_mut(&row.k) {
            ids.retain(|x| *x != id);
            if ids.is_empty() {
                index.remove(&row.k);
            }
        }
        Ok(row)
    }

    /// Looks up row ids by the secondary index.
    pub fn find_by_k(&self, k: u64) -> Vec<u64> {
        self.inner
            .k_index
            .read()
            .get(&k)
            .cloned()
            .unwrap_or_default()
    }

    /// Returns the rows whose primary keys fall in `[low, high]`
    /// (sysbench's range SELECT).
    pub fn range(&self, low: u64, high: u64) -> Vec<Row> {
        self.inner
            .rows
            .read()
            .range(low..=high)
            .map(|(_, r)| r.clone())
            .collect()
    }

    /// The largest primary key currently in the table.
    pub fn max_id(&self) -> Option<u64> {
        self.inner.rows.read().keys().next_back().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated() -> Table {
        let t = Table::new("sbtest1");
        for i in 1..=100 {
            t.insert(Row::new(i, i % 10, format!("pad-{i}"))).unwrap();
        }
        t
    }

    #[test]
    fn insert_get_delete_maintain_counts() {
        let t = populated();
        assert_eq!(t.row_count(), 100);
        assert_eq!(t.get(42).unwrap().pad, "pad-42");
        assert!(t.insert(Row::new(42, 0, String::new())).is_err());
        t.delete(42).unwrap();
        assert!(t.get(42).is_none());
        assert_eq!(t.row_count(), 99);
        assert!(matches!(t.delete(42), Err(StoreError::RowNotFound(42))));
    }

    #[test]
    fn secondary_index_follows_updates() {
        let t = populated();
        // Rows 10,20,...,100 have k = 0.
        assert_eq!(t.find_by_k(0).len(), 10);
        t.update_k(10, 77).unwrap();
        assert_eq!(t.find_by_k(0).len(), 9);
        assert_eq!(t.find_by_k(77), vec![10]);
        t.delete(10).unwrap();
        assert!(t.find_by_k(77).is_empty());
    }

    #[test]
    fn range_query_is_inclusive_and_ordered() {
        let t = populated();
        let rows = t.range(5, 8);
        let ids: Vec<u64> = rows.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 6, 7, 8]);
    }

    #[test]
    fn max_id_tracks_inserts() {
        let t = populated();
        assert_eq!(t.max_id(), Some(100));
        t.insert(Row::new(500, 1, String::new())).unwrap();
        assert_eq!(t.max_id(), Some(500));
        assert_eq!(Table::new("empty").max_id(), None);
    }

    #[test]
    fn stats_track_rows_deletes_and_lock_waits() {
        let t = populated();
        assert_eq!(
            t.stats(),
            TableStats {
                rows: 100,
                deletes: 0,
                lock_waits: 0
            }
        );
        t.delete(1).unwrap();
        t.delete(2).unwrap();
        assert!(t.delete(2).is_err(), "failed deletes must not count");
        assert!(t.locks().try_lock(3));
        assert!(!t.locks().try_lock(3));
        assert_eq!(
            t.stats(),
            TableStats {
                rows: 98,
                deletes: 2,
                lock_waits: 1
            }
        );
        let folded = t.stats().merged(TableStats {
            rows: 2,
            deletes: 1,
            lock_waits: 4,
        });
        assert_eq!(
            folded,
            TableStats {
                rows: 100,
                deletes: 3,
                lock_waits: 5
            }
        );
    }

    #[test]
    fn update_missing_row_errors() {
        let t = Table::new("t");
        assert!(matches!(t.update_k(1, 2), Err(StoreError::RowNotFound(1))));
    }
}
