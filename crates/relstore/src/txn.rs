//! Transactions.
//!
//! A sysbench `oltp_read_write` "transaction" is modeled as the paper
//! describes it: one SELECT, one UPDATE, one DELETE and one INSERT against
//! the same table, executed under row locks that are released at commit or
//! rollback.

use crate::error::StoreError;
use crate::table::{Row, Table};

/// An in-flight transaction.
///
/// Locks acquired by mutating statements are held until [`commit`] or
/// [`rollback`] (strict two-phase locking with no-wait acquisition).
///
/// [`commit`]: Transaction::commit
/// [`rollback`]: Transaction::rollback
#[derive(Debug, Default)]
pub struct Transaction {
    locked: Vec<(Table, u64)>,
    statements: u32,
    committed: bool,
}

impl Transaction {
    /// Begins an empty transaction.
    pub fn new() -> Self {
        Transaction::default()
    }

    /// Number of statements executed so far.
    pub fn statements(&self) -> u32 {
        self.statements
    }

    /// Point SELECT by primary key (no lock needed: reads use the table's
    /// shared latch, matching InnoDB's consistent reads).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::RowNotFound`] if the row does not exist.
    pub fn select(&mut self, table: &Table, id: u64) -> Result<Row, StoreError> {
        self.statements += 1;
        table.get(id).ok_or(StoreError::RowNotFound(id))
    }

    /// Range SELECT over `[low, high]`.
    pub fn select_range(&mut self, table: &Table, low: u64, high: u64) -> Vec<Row> {
        self.statements += 1;
        table.range(low, high)
    }

    /// Point UPDATE of the indexed column.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::LockContended`] if another transaction holds
    /// the row lock, or [`StoreError::RowNotFound`] if the row vanished.
    pub fn update(&mut self, table: &Table, id: u64, new_k: u64) -> Result<(), StoreError> {
        self.statements += 1;
        self.lock(table, id)?;
        table.update_k(id, new_k)
    }

    /// Point DELETE.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::LockContended`] on lock contention, or
    /// [`StoreError::RowNotFound`] if the row does not exist.
    pub fn delete(&mut self, table: &Table, id: u64) -> Result<Row, StoreError> {
        self.statements += 1;
        self.lock(table, id)?;
        table.delete(id)
    }

    /// INSERT of a new row.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::LockContended`] on lock contention, or
    /// [`StoreError::DuplicateKey`] if the key exists.
    pub fn insert(&mut self, table: &Table, row: Row) -> Result<(), StoreError> {
        self.statements += 1;
        self.lock(table, row.id)?;
        table.insert(row)
    }

    fn lock(&mut self, table: &Table, id: u64) -> Result<(), StoreError> {
        // Re-entrant within the same transaction.
        if self
            .locked
            .iter()
            .any(|(t, locked_id)| *locked_id == id && std::ptr::eq(t.locks(), table.locks()))
        {
            return Ok(());
        }
        if table.locks().try_lock(id) {
            self.locked.push((table.clone(), id));
            Ok(())
        } else {
            Err(StoreError::LockContended(id))
        }
    }

    /// Commits the transaction, releasing all row locks.
    pub fn commit(mut self) {
        self.release();
        self.committed = true;
    }

    /// Rolls the transaction back, releasing all row locks. (The engine
    /// does not undo already-applied statements; the OLTP driver only uses
    /// rollback on lock contention before any mutation was applied.)
    pub fn rollback(mut self) {
        self.release();
    }

    fn release(&mut self) {
        for (table, id) in self.locked.drain(..) {
            table.locks().unlock(id);
        }
    }
}

impl Drop for Transaction {
    fn drop(&mut self) {
        // Dropping an un-committed transaction must not leak locks.
        self.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let t = Table::new("sbtest1");
        for i in 1..=50 {
            t.insert(Row::new(i, i, format!("pad-{i}"))).unwrap();
        }
        t
    }

    #[test]
    fn full_oltp_transaction_succeeds() {
        let t = table();
        let mut txn = Transaction::new();
        let row = txn.select(&t, 10).unwrap();
        assert_eq!(row.k, 10);
        txn.update(&t, 11, 99).unwrap();
        txn.delete(&t, 12).unwrap();
        txn.insert(&t, Row::new(1000, 5, "new".into())).unwrap();
        assert_eq!(txn.statements(), 4);
        txn.commit();
        assert_eq!(t.locks().held_count(), 0);
        assert_eq!(t.get(11).unwrap().k, 99);
        assert!(t.get(12).is_none());
        assert!(t.get(1000).is_some());
    }

    #[test]
    fn conflicting_transactions_get_lock_contention() {
        let t = table();
        let mut a = Transaction::new();
        let mut b = Transaction::new();
        a.update(&t, 5, 1).unwrap();
        assert!(matches!(
            b.update(&t, 5, 2),
            Err(StoreError::LockContended(5))
        ));
        a.commit();
        // After a commits, b can retry successfully.
        b.update(&t, 5, 2).unwrap();
        b.commit();
        assert_eq!(t.get(5).unwrap().k, 2);
    }

    #[test]
    fn locks_are_reentrant_within_a_transaction() {
        let t = table();
        let mut txn = Transaction::new();
        txn.update(&t, 7, 1).unwrap();
        txn.update(&t, 7, 2).unwrap();
        txn.commit();
        assert_eq!(t.get(7).unwrap().k, 2);
    }

    #[test]
    fn dropping_a_transaction_releases_locks() {
        let t = table();
        {
            let mut txn = Transaction::new();
            txn.update(&t, 3, 9).unwrap();
            assert_eq!(t.locks().held_count(), 1);
        }
        assert_eq!(t.locks().held_count(), 0);
    }

    #[test]
    fn rollback_releases_locks() {
        let t = table();
        let mut txn = Transaction::new();
        txn.delete(&t, 20).unwrap();
        txn.rollback();
        assert_eq!(t.locks().held_count(), 0);
    }

    #[test]
    fn range_select_counts_as_one_statement() {
        let t = table();
        let mut txn = Transaction::new();
        let rows = txn.select_range(&t, 1, 10);
        assert_eq!(rows.len(), 10);
        assert_eq!(txn.statements(), 1);
        txn.commit();
    }
}
