//! Parametric distributions used by the cost models.
//!
//! Most device and platform cost models are expressed as a [`Distribution`]
//! over nanoseconds or bytes-per-second. Keeping the distribution as data
//! (instead of closures) makes calibration tables serializable and easy to
//! inspect.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;

/// A parametric distribution from which a cost model draws samples.
///
/// # Example
///
/// ```
/// use simcore::{Distribution, SimRng};
///
/// let d = Distribution::normal(100.0, 10.0);
/// let mut rng = SimRng::seed_from(1);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// assert_eq!(Distribution::constant(5.0).mean(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Distribution {
    /// Always returns the same value.
    Constant {
        /// The value returned by every sample.
        value: f64,
    },
    /// Uniform over `[low, high)`.
    Uniform {
        /// Inclusive lower bound.
        low: f64,
        /// Exclusive upper bound.
        high: f64,
    },
    /// Gaussian with the given mean and standard deviation, truncated at 0.
    Normal {
        /// Mean of the distribution.
        mean: f64,
        /// Standard deviation of the distribution.
        std_dev: f64,
    },
    /// Log-normal parameterized by the underlying normal's `mu`/`sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Exponential with rate `lambda`.
    Exponential {
        /// Rate parameter (events per unit).
        lambda: f64,
    },
    /// Pareto with scale `x_m` and shape `alpha`.
    Pareto {
        /// Scale (minimum value).
        x_m: f64,
        /// Shape parameter.
        alpha: f64,
    },
}

impl Distribution {
    /// A constant distribution.
    pub fn constant(value: f64) -> Self {
        Distribution::Constant { value }
    }

    /// A uniform distribution over `[low, high)`.
    pub fn uniform(low: f64, high: f64) -> Self {
        Distribution::Uniform { low, high }
    }

    /// A truncated normal distribution.
    pub fn normal(mean: f64, std_dev: f64) -> Self {
        Distribution::Normal { mean, std_dev }
    }

    /// A log-normal distribution.
    pub fn log_normal(mu: f64, sigma: f64) -> Self {
        Distribution::LogNormal { mu, sigma }
    }

    /// An exponential distribution.
    pub fn exponential(lambda: f64) -> Self {
        Distribution::Exponential { lambda }
    }

    /// A Pareto distribution.
    pub fn pareto(x_m: f64, alpha: f64) -> Self {
        Distribution::Pareto { x_m, alpha }
    }

    /// Draws a sample using the provided generator.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Distribution::Constant { value } => value,
            Distribution::Uniform { low, high } => rng.uniform(low, high),
            Distribution::Normal { mean, std_dev } => rng.normal_pos(mean, std_dev),
            Distribution::LogNormal { mu, sigma } => rng.log_normal(mu, sigma),
            Distribution::Exponential { lambda } => rng.exponential(lambda),
            Distribution::Pareto { x_m, alpha } => rng.pareto(x_m, alpha),
        }
    }

    /// Analytical mean of the distribution (ignoring truncation at zero).
    pub fn mean(&self) -> f64 {
        match *self {
            Distribution::Constant { value } => value,
            Distribution::Uniform { low, high } => (low + high) / 2.0,
            Distribution::Normal { mean, .. } => mean,
            Distribution::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Distribution::Exponential { lambda } => {
                if lambda > 0.0 {
                    1.0 / lambda
                } else {
                    0.0
                }
            }
            Distribution::Pareto { x_m, alpha } => {
                if alpha > 1.0 {
                    alpha * x_m / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Returns a copy of the distribution with its central tendency scaled
    /// by `factor`; used by platforms that multiply a base cost model.
    pub fn scaled(&self, factor: f64) -> Distribution {
        match *self {
            Distribution::Constant { value } => Distribution::constant(value * factor),
            Distribution::Uniform { low, high } => {
                Distribution::uniform(low * factor, high * factor)
            }
            Distribution::Normal { mean, std_dev } => {
                Distribution::normal(mean * factor, std_dev * factor)
            }
            Distribution::LogNormal { mu, sigma } => {
                Distribution::log_normal(mu + factor.max(f64::MIN_POSITIVE).ln(), sigma)
            }
            Distribution::Exponential { lambda } => {
                Distribution::exponential(lambda / factor.max(f64::MIN_POSITIVE))
            }
            Distribution::Pareto { x_m, alpha } => Distribution::pareto(x_m * factor, alpha),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_always_returns_value() {
        let mut rng = SimRng::seed_from(1);
        let d = Distribution::constant(7.5);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7.5);
        }
    }

    #[test]
    fn sample_means_track_analytical_means() {
        let mut rng = SimRng::seed_from(2);
        let cases = [
            Distribution::uniform(0.0, 10.0),
            Distribution::normal(20.0, 2.0),
            Distribution::exponential(0.5),
        ];
        for d in cases {
            let n = 20_000;
            let empirical: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
            let analytical = d.mean();
            assert!(
                (empirical - analytical).abs() < analytical.max(1.0) * 0.05,
                "{d:?}: empirical {empirical} vs analytical {analytical}"
            );
        }
    }

    #[test]
    fn scaled_constant_and_uniform() {
        assert_eq!(Distribution::constant(2.0).scaled(3.0).mean(), 6.0);
        let u = Distribution::uniform(1.0, 3.0).scaled(2.0);
        assert_eq!(u.mean(), 4.0);
    }

    #[test]
    fn normal_samples_never_negative() {
        let mut rng = SimRng::seed_from(3);
        let d = Distribution::normal(1.0, 5.0);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn pareto_mean_infinite_for_small_alpha() {
        assert!(Distribution::pareto(1.0, 0.5).mean().is_infinite());
    }

    #[test]
    fn serde_roundtrip() {
        let d = Distribution::normal(10.0, 1.0);
        let json = serde_json_like(&d);
        assert!(json.contains("Normal"));
    }

    fn serde_json_like(d: &Distribution) -> String {
        // serde_json is not a dependency; use Debug as a stand-in for a
        // serialization smoke test plus an actual serde serialize through
        // the bincode-free path (format::Debug of the Serialize impl is not
        // possible, so just ensure the type implements Serialize).
        fn assert_serialize<T: serde::Serialize>(_t: &T) {}
        assert_serialize(d);
        format!("{d:?}")
    }
}
