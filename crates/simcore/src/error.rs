//! Error type shared by the simulation core.

use std::fmt;

/// Errors produced by the simulation core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A configuration value was outside its valid range.
    InvalidConfig(String),
    /// A resource was asked to perform an operation it cannot serve
    /// (for example requesting more bandwidth than the link capacity).
    ResourceExhausted(String),
    /// An empty data set was given to a statistics routine that requires
    /// at least one sample.
    EmptyDataset(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::ResourceExhausted(msg) => write!(f, "resource exhausted: {msg}"),
            SimError::EmptyDataset(msg) => write!(f, "empty dataset: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SimError::InvalidConfig("tlb entries must be non-zero".into());
        let msg = err.to_string();
        assert!(msg.starts_with("invalid configuration"));
        assert!(msg.contains("tlb"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
