//! A minimal discrete-event scheduler on a hierarchical timing wheel.
//!
//! The boot-sequence and queueing models advance a virtual clock through a
//! priority queue of timestamped events. Until PR 5 that queue was a binary
//! heap, whose `O(log n)` push/pop dominated wall-clock once millions of
//! requests were in flight; the queue is now a **hierarchical timing
//! wheel** ([`EventCore`] internally): [`LEVELS`] coarse-to-fine wheels of
//! [`SLOTS`] slots each over raw nanosecond ticks, with an overflow level
//! beyond the wheel horizon falling back to a sorted spill heap. Push is
//! `O(1)`, and popping drains a **whole wheel slot per clock advance** —
//! every event sharing the next tick comes out in one batch — instead of
//! one heap pop per event.
//!
//! Ordering is exactly the reference heap's: timestamp first, insertion
//! sequence second (FIFO among equal timestamps). The pre-wheel
//! implementation is retained as [`ReferenceHeap`] — the ordering oracle
//! for the property tests and the baseline the `event_loop` microbench
//! measures the wheel against.
//!
//! **Past-timestamp semantics** (shared by the wheel and the reference
//! heap): scheduling an event before the queue's pop frontier — for
//! [`Simulation`], before the current virtual time — clamps the timestamp
//! to that frontier. The event fires "now"; the clock never rewinds.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// The boxed callback type run when an event fires. Actions are `Send` so
/// a `Simulation<S>` over `Send` state can move into worker threads (the
/// parallel experiment executor runs whole simulations per worker).
type Action<S> = Box<dyn FnOnce(&mut Simulation<S>, &mut S) + Send>;

/// Bits of the tick resolved per wheel level (64 slots per level).
const SLOT_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level `l` slots are `2^(6l)` ns wide, so the wheels cover
/// `2^48` ns (~3.3 virtual days) past the cursor before spilling over.
const LEVELS: usize = 8;
/// Bits of tick delta the wheels can hold; anything further out spills.
const SPAN_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// One timestamped entry of the event core.
#[derive(Debug)]
struct Entry<T> {
    at: Nanos,
    seq: u64,
    value: T,
}

/// Lifetime operation counters of one event core — the timing wheel's
/// own telemetry, surfaced by [`EventQueue::counters`],
/// [`Simulation::counters`] and [`ShardedCores::counters`].
///
/// `pushes` and `pops` are invariant under resharding (they count the
/// logical event traffic), while `slot_drains`, `cascades` and
/// `spill_promotions` describe the wheel *topology* the traffic ran on
/// and legitimately differ between a single core and a sharded group.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CoreCounters {
    /// Entries scheduled into the core.
    pub pushes: u64,
    /// Entries drained out of the core.
    pub pops: u64,
    /// Whole-slot batch drains (one per level-0 clock advance).
    pub slot_drains: u64,
    /// Coarse-slot cascades into finer levels.
    pub cascades: u64,
    /// Entries promoted out of the overflow spill heap into the wheels.
    pub spill_promotions: u64,
}

impl CoreCounters {
    /// Component-wise sum of two counter snapshots (used to fold a
    /// sharded group's per-core counters in lane order).
    pub fn merged(self, other: CoreCounters) -> CoreCounters {
        CoreCounters {
            pushes: self.pushes + other.pushes,
            pops: self.pops + other.pops,
            slot_drains: self.slot_drains + other.slot_drains,
            cascades: self.cascades + other.cascades,
            spill_promotions: self.spill_promotions + other.spill_promotions,
        }
    }
}

/// An overflow entry; the spill heap is a min-heap on `(at, seq)`.
struct Spill<T>(Entry<T>);

impl<T> PartialEq for Spill<T> {
    fn eq(&self, other: &Self) -> bool {
        self.0.at == other.0.at && self.0.seq == other.0.seq
    }
}
impl<T> Eq for Spill<T> {}
impl<T> PartialOrd for Spill<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Spill<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest entry pops first.
        other
            .0
            .at
            .cmp(&self.0.at)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// The timing-wheel event core shared by [`EventQueue`] and [`Simulation`].
///
/// Invariants:
/// * `cursor` is the pop frontier (the tick of the latest drained slot);
///   every stored entry satisfies `at >= cursor` — pushes clamp.
/// * Wheel entries lie within `2^SPAN_BITS` ticks of `cursor`; everything
///   further out waits in the `overflow` spill heap and is promoted into
///   the wheels once the cursor comes within range.
/// * `batch` holds the drained earliest tick's entries in `seq` order;
///   pops come from it first, so a whole slot costs one wheel advance.
struct EventCore<T> {
    /// `LEVELS * SLOTS` slot buffers (drained buffers keep their capacity).
    slots: Box<[Vec<Entry<T>>]>,
    /// One occupancy bitmap per level; bit `i` set iff slot `i` is non-empty.
    occupied: [u64; LEVELS],
    /// The pop frontier in raw nanosecond ticks.
    cursor: u64,
    /// The sorted spill heap holding entries beyond the wheel horizon.
    overflow: BinaryHeap<Spill<T>>,
    /// Cached tick of the earliest spilled entry (`u64::MAX` when none),
    /// so the per-advance promotion check never touches the heap.
    overflow_min: u64,
    /// The drained current tick, sorted by **descending** sequence number
    /// so popping from the back yields insertion order with zero copies
    /// (the level-0 slot is swapped in whole, not copied out).
    batch: Vec<Entry<T>>,
    /// Reusable buffer for cascading coarse slots into finer levels.
    scratch: Vec<Entry<T>>,
    seq: u64,
    len: usize,
    counters: CoreCounters,
}

impl<T> EventCore<T> {
    fn new() -> Self {
        EventCore {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            occupied: [0; LEVELS],
            cursor: 0,
            overflow: BinaryHeap::new(),
            overflow_min: u64::MAX,
            batch: Vec::new(),
            scratch: Vec::new(),
            seq: 0,
            len: 0,
            counters: CoreCounters::default(),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn counters(&self) -> CoreCounters {
        self.counters
    }

    fn frontier(&self) -> Nanos {
        Nanos::from_nanos(self.cursor)
    }

    /// Schedules `value`, clamping timestamps behind the pop frontier to
    /// the frontier (fire now, never rewind).
    fn push(&mut self, at: Nanos, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.push_seq(at, seq, value);
    }

    /// Schedules `value` under a caller-assigned sequence number.
    ///
    /// [`ShardedCores`] assigns sequence numbers from one group-wide
    /// counter so that FIFO-among-equal-timestamps holds **across** cores,
    /// not merely within one. The caller must keep seqs strictly
    /// increasing over the core's lifetime.
    fn push_seq(&mut self, at: Nanos, seq: u64, value: T) {
        let at = Nanos::from_nanos(at.as_nanos().max(self.cursor));
        self.insert(Entry { at, seq, value });
        self.len += 1;
        self.counters.pushes += 1;
    }

    /// Routes an entry to its wheel slot or the overflow spill heap.
    fn insert(&mut self, entry: Entry<T>) {
        let tick = entry.at.as_nanos();
        debug_assert!(tick >= self.cursor, "entries never precede the cursor");
        let delta = tick ^ self.cursor;
        if delta >> SPAN_BITS != 0 {
            self.overflow_min = self.overflow_min.min(tick);
            self.overflow.push(Spill(entry));
            return;
        }
        // The highest differing bit picks the coarsest level whose slot
        // index separates the entry from the cursor.
        let level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / SLOT_BITS) as usize
        };
        let idx = ((tick >> (SLOT_BITS * level as u32)) & (SLOTS as u64 - 1)) as usize;
        self.slots[level * SLOTS + idx].push(entry);
        self.occupied[level] |= 1 << idx;
    }

    /// The first occupied slot at or after the cursor, as `(level, slot
    /// index)` — the slot holding the earliest pending wheel entries
    /// (levels partition the future into disjoint, ordered ranges). The
    /// level-0 scan includes the cursor's own slot, which may still hold
    /// events at the current tick (scheduled "now"); higher levels hold
    /// strictly later slots only.
    fn first_pending_slot(&self) -> Option<(usize, usize)> {
        for (level, &bits) in self.occupied.iter().enumerate() {
            let cur = ((self.cursor >> (SLOT_BITS * level as u32)) & 63) as u32;
            let mask = if level == 0 {
                u64::MAX << cur
            } else {
                (u64::MAX << cur) << 1
            };
            let bits = bits & mask;
            if bits != 0 {
                return Some((level, bits.trailing_zeros() as usize));
            }
        }
        None
    }

    /// Drains the earliest pending tick into `batch` (seq-sorted), moving
    /// the cursor there; returns `false` when nothing is pending.
    ///
    /// Higher-level slots reached on the way are cascaded into finer
    /// levels, and overflow entries are promoted once within the horizon —
    /// each entry cascades at most [`LEVELS`] times over its lifetime.
    fn advance(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        loop {
            // Promote spilled entries that have come within the horizon.
            while (self.overflow_min ^ self.cursor) >> SPAN_BITS == 0
                && self.overflow_min != u64::MAX
            {
                let entry = self.overflow.pop().expect("cached min implies an entry").0;
                self.overflow_min = self.overflow.peek().map_or(u64::MAX, |s| s.0.at.as_nanos());
                self.insert(entry);
                self.counters.spill_promotions += 1;
            }
            let (level, idx) = match self.first_pending_slot() {
                Some(found) => found,
                None if self.overflow_min != u64::MAX => {
                    // Everything pending is past the horizon: jump there.
                    self.cursor = self.overflow_min;
                    continue;
                }
                None => return false,
            };
            let shift = SLOT_BITS * level as u32;
            self.occupied[level] &= !(1u64 << idx);
            if level == 0 {
                // A level-0 slot is one tick wide: the whole slot shares a
                // timestamp, so draining it is the batched clock advance —
                // the slot buffer is swapped in whole, nothing is copied.
                self.cursor = (self.cursor & !(SLOTS as u64 - 1)) | idx as u64;
                std::mem::swap(&mut self.batch, &mut self.slots[idx]);
                if self.batch.len() > 1 {
                    // Back-to-front pops must see ascending seq.
                    self.batch
                        .sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                }
                debug_assert!(self.batch.iter().all(|e| e.at.as_nanos() == self.cursor));
                self.counters.slot_drains += 1;
                return true;
            }
            // Cascade: move to the slot's base tick and respread its
            // entries into the finer levels.
            let window = !((1u64 << (shift + SLOT_BITS)) - 1);
            self.cursor = (self.cursor & window) | ((idx as u64) << shift);
            let mut scratch = std::mem::take(&mut self.scratch);
            scratch.append(&mut self.slots[level * SLOTS + idx]);
            for entry in scratch.drain(..) {
                self.insert(entry);
            }
            self.scratch = scratch;
            self.counters.cascades += 1;
        }
    }

    fn pop(&mut self) -> Option<Entry<T>> {
        if self.batch.is_empty() && !self.advance() {
            return None;
        }
        self.len -= 1;
        self.counters.pops += 1;
        self.batch.pop()
    }

    /// The earliest pending timestamp, without draining anything.
    fn peek_time(&self) -> Option<Nanos> {
        self.peek_key().map(|(at, _)| at)
    }

    /// The `(timestamp, seq)` key of the earliest pending entry, without
    /// draining anything — the merge key [`ShardedCores`] orders its
    /// per-core heads by.
    fn peek_key(&self) -> Option<(Nanos, u64)> {
        if let Some(entry) = self.batch.last() {
            return Some((entry.at, entry.seq));
        }
        // Overflow entries may have come within the horizon since the last
        // advance (promotion is lazy), so the true minimum is the smaller
        // of the spill peek and the first occupied slot's earliest entry.
        // The spill heap is ordered by (at, seq), so its peek is its min.
        let mut best = self.overflow.peek().map(|s| (s.0.at, s.0.seq));
        if let Some((level, idx)) = self.first_pending_slot() {
            let slot_min = self.slots[level * SLOTS + idx]
                .iter()
                .map(|e| (e.at, e.seq))
                .min()
                .expect("occupied slots are non-empty");
            best = Some(best.map_or(slot_min, |b| b.min(slot_min)));
        }
        best
    }
}

/// A group of per-shard event cores advancing in bounded lock-step behind
/// one deterministic cross-core merge.
///
/// Every core is a full hierarchical timing wheel of its own, but the
/// group shares **one** sequence counter and **one** pop frontier:
/// [`ShardedCores::pop`] always yields the globally earliest pending
/// entry by `(timestamp, seq)`, and pushes behind the merged frontier
/// clamp to it. Two consequences, both load-bearing for the cluster
/// simulations built on top:
///
/// * **Core-count invariance** — the pop sequence is a pure function of
///   the push sequence: distributing the same pushes over 1, 2, 4 or 8
///   cores yields the exact pop order of a single [`EventQueue`],
///   pop for pop. Shard state can therefore be partitioned over any
///   number of core lanes without perturbing a simulation's results.
/// * **Bounded lock-step** — [`ShardedCores::pop_within`] drains the
///   merge only up to a window boundary, so a driver advances all cores
///   window by window: no core enters the next window before every core
///   has finished the current one. This is the conservative-parallelism
///   discipline that makes per-lane threading possible later; today the
///   merge itself runs sequentially and buys determinism, not speedup.
///
/// # Example
///
/// ```
/// use simcore::{Nanos, ShardedCores};
///
/// let mut group = ShardedCores::new(2);
/// group.push(1, Nanos::from_micros(5), "b");
/// group.push(0, Nanos::from_micros(1), "a");
/// group.push(0, Nanos::from_micros(5), "c");
/// assert_eq!(group.pop(), Some((0, Nanos::from_micros(1), "a")));
/// // Equal timestamps pop in push order across cores: "b" before "c".
/// assert_eq!(group.pop(), Some((1, Nanos::from_micros(5), "b")));
/// assert_eq!(group.pop(), Some((0, Nanos::from_micros(5), "c")));
/// assert!(group.pop().is_none());
/// ```
pub struct ShardedCores<T> {
    cores: Vec<EventCore<T>>,
    seq: u64,
    frontier: Nanos,
    len: usize,
}

impl<T> ShardedCores<T> {
    /// Creates a group of `cores` empty event cores (at least one).
    pub fn new(cores: usize) -> Self {
        ShardedCores {
            cores: (0..cores.max(1)).map(|_| EventCore::new()).collect(),
            seq: 0,
            frontier: Nanos::ZERO,
            len: 0,
        }
    }

    /// Number of core lanes in the group.
    pub fn cores(&self) -> usize {
        self.cores.len()
    }

    /// Total pending entries across all cores.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending on any core.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pending entries on one core lane.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_len(&self, core: usize) -> usize {
        self.cores[core].len()
    }

    /// The merged pop frontier: the timestamp of the latest pop. Pushes
    /// behind it clamp to it, on whichever core they land.
    pub fn frontier(&self) -> Nanos {
        self.frontier
    }

    /// Schedules `value` at `at` on core lane `core`, drawing the entry's
    /// sequence number from the group-wide counter. A timestamp behind
    /// the **merged** frontier is clamped to it, exactly as a single
    /// [`EventQueue`] clamps to its own frontier.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn push(&mut self, core: usize, at: Nanos, value: T) {
        let seq = self.seq;
        self.seq += 1;
        let at = at.max(self.frontier);
        self.cores[core].push_seq(at, seq, value);
        self.len += 1;
    }

    /// The earliest pending timestamp across all cores, without draining.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.cores.iter().filter_map(EventCore::peek_time).min()
    }

    /// Removes and returns the globally earliest entry as
    /// `(core, timestamp, value)`, merging the per-core heads by
    /// `(timestamp, seq)`.
    pub fn pop(&mut self) -> Option<(usize, Nanos, T)> {
        let mut best: Option<(Nanos, u64, usize)> = None;
        for (i, core) in self.cores.iter().enumerate() {
            if let Some((at, seq)) = core.peek_key() {
                match best {
                    Some((ba, bs, _)) if (ba, bs) <= (at, seq) => {}
                    _ => best = Some((at, seq, i)),
                }
            }
        }
        let (_, _, idx) = best?;
        let entry = self.cores[idx].pop().expect("peeked core must pop");
        self.len -= 1;
        self.frontier = entry.at;
        Some((idx, entry.at, entry.value))
    }

    /// Removes the globally earliest entry only if its timestamp lies at
    /// or before `horizon` — the bounded lock-step primitive. Draining
    /// with a fixed window boundary advances every core to the boundary
    /// before any core sees the next window.
    pub fn pop_within(&mut self, horizon: Nanos) -> Option<(usize, Nanos, T)> {
        if self.peek_time()? > horizon {
            return None;
        }
        self.pop()
    }

    /// Lifetime operation counters of one core lane.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_counters(&self, core: usize) -> CoreCounters {
        self.cores[core].counters()
    }

    /// The group's counters, folded over the lanes in index order.
    ///
    /// `pushes`/`pops` are lane-count-invariant; the wheel-topology
    /// counters (`slot_drains`, `cascades`, `spill_promotions`) are not —
    /// see [`CoreCounters`].
    pub fn counters(&self) -> CoreCounters {
        self.cores
            .iter()
            .map(EventCore::counters)
            .fold(CoreCounters::default(), CoreCounters::merged)
    }
}

impl<T> std::fmt::Debug for ShardedCores<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCores")
            .field("cores", &self.cores.len())
            .field("pending", &self.len)
            .field("frontier", &self.frontier)
            .finish()
    }
}

/// A plain timestamp-ordered event queue of values, backed by the timing
/// wheel.
///
/// Pops are monotone: pushing a timestamp behind the pop frontier (the
/// timestamp of the latest pop) clamps it to the frontier, so the entry
/// comes out "now" and popped timestamps never go backwards. Equal
/// timestamps pop in insertion (FIFO) order.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_millis(5), "late");
/// q.push(Nanos::from_millis(1), "early");
/// assert_eq!(q.pop(), Some((Nanos::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((Nanos::from_millis(5), "late")));
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<T> {
    core: EventCore<T>,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            core: EventCore::new(),
        }
    }

    /// Schedules `value` at virtual time `at`.
    ///
    /// A timestamp behind the pop frontier is clamped to the frontier: the
    /// value fires "now" rather than rewinding the queue's clock.
    pub fn push(&mut self, at: Nanos, value: T) {
        self.core.push(at, value);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.core.pop().map(|e| (e.at, e.value))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.core.peek_time()
    }

    /// The pop frontier: pushes behind it clamp to it.
    pub fn frontier(&self) -> Nanos {
        self.core.frontier()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.core.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.core.len() == 0
    }

    /// Snapshot of the queue's lifetime operation counters.
    pub fn counters(&self) -> CoreCounters {
        self.core.counters()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.core.len())
            .field("frontier", &self.core.frontier())
            .finish()
    }
}

/// The retained binary-heap event queue the timing wheel replaced.
///
/// It implements the same contract as [`EventQueue`] — `(timestamp, seq)`
/// ordering, FIFO among equal timestamps, past pushes clamped to the pop
/// frontier — with `O(log n)` push/pop. It stays in the tree as the
/// ordering oracle for the wheel's property tests and as the baseline the
/// `event_loop` microbench measures the wheel's speedup against.
#[derive(Debug)]
pub struct ReferenceHeap<T> {
    heap: BinaryHeap<QueueEntry<T>>,
    seq: u64,
    frontier: Nanos,
}

#[derive(Debug)]
struct QueueEntry<T> {
    at: Nanos,
    seq: u64,
    value: T,
}

impl<T> PartialEq for QueueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for QueueEntry<T> {}
impl<T> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> ReferenceHeap<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceHeap {
            heap: BinaryHeap::new(),
            seq: 0,
            frontier: Nanos::ZERO,
        }
    }

    /// Schedules `value` at virtual time `at`, clamped to the pop frontier
    /// (the same fire-at-now semantics as [`EventQueue::push`]).
    pub fn push(&mut self, at: Nanos, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueueEntry {
            at: at.max(self.frontier),
            seq,
            value,
        });
    }

    /// Removes and returns the earliest event, advancing the pop frontier.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|e| {
            self.frontier = e.at;
            (e.at, e.value)
        })
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// The pop frontier: pushes behind it clamp to it.
    pub fn frontier(&self) -> Nanos {
        self.frontier
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for ReferenceHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A discrete-event simulation over a user-provided state type.
///
/// Events run in timestamp order, FIFO among equal timestamps; the event
/// queue is the hierarchical timing wheel, so scheduling is `O(1)` and the
/// run loop drains one whole wheel slot (every event sharing the next
/// tick) per clock advance.
///
/// # Example
///
/// ```
/// use simcore::{Nanos, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.schedule_in(Nanos::from_millis(10), |sim, count: &mut u32| {
///     *count += 1;
///     sim.schedule_in(Nanos::from_millis(10), |_, count| *count += 1);
/// });
/// let mut count = 0;
/// sim.run(&mut count);
/// assert_eq!(count, 2);
/// assert_eq!(sim.now(), Nanos::from_millis(20));
/// ```
pub struct Simulation<S> {
    now: Nanos,
    core: EventCore<Action<S>>,
}

impl<S> std::fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.core.len())
            .finish()
    }
}

impl<S> Simulation<S> {
    /// Creates a simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            now: Nanos::ZERO,
            core: EventCore::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules an action at an absolute virtual time.
    ///
    /// A timestamp in the past — before the current virtual time — is
    /// clamped to `now`: the action fires at the current time (after the
    /// already-pending actions at that timestamp, in scheduling order) and
    /// the clock never rewinds.
    pub fn schedule_at<F>(&mut self, at: Nanos, action: F)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        self.core.push(at.max(self.now), Box::new(action));
    }

    /// Schedules an action `delay` after the current virtual time.
    pub fn schedule_in<F>(&mut self, delay: Nanos, action: F)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Runs events until the queue drains; returns the final virtual time.
    pub fn run(&mut self, state: &mut S) -> Nanos {
        while let Some(event) = self.core.pop() {
            self.now = event.at;
            (event.value)(self, state);
        }
        self.now
    }

    /// Runs events up to (and including) virtual time `until`.
    ///
    /// Afterwards the clock sits at `until`, or stays where it was if it
    /// had already advanced past the horizon — it never moves backward.
    pub fn run_until(&mut self, state: &mut S, until: Nanos) -> Nanos {
        while self.core.peek_time().is_some_and(|t| t <= until) {
            let event = self.core.pop().expect("peeked event must pop");
            self.now = event.at;
            (event.value)(self, state);
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Schedules `action` to fire `ticks` times, first at `start` after the
    /// current virtual time and then once every `period`.
    ///
    /// The action reschedules itself from each firing's timestamp, so a
    /// periodic arrival source costs one pending event at a time instead of
    /// `ticks` queue entries up front.
    ///
    /// # Example
    ///
    /// ```
    /// use simcore::{Nanos, Simulation};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule_periodic(Nanos::from_millis(1), Nanos::from_millis(2), 3, |_, n: &mut u32| {
    ///     *n += 1;
    /// });
    /// let mut n = 0;
    /// let end = sim.run(&mut n);
    /// assert_eq!(n, 3);
    /// assert_eq!(end, Nanos::from_millis(5)); // 1ms, 3ms, 5ms
    /// ```
    pub fn schedule_periodic<F>(&mut self, start: Nanos, period: Nanos, ticks: u64, action: F)
    where
        S: 'static,
        F: FnMut(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        if ticks == 0 {
            return;
        }
        self.schedule_in(start, periodic_tick(period, ticks, action));
    }

    /// Schedules a batch of `(delay, action)` pairs relative to the current
    /// virtual time.
    ///
    /// Load generators use this to enqueue one chunk of pre-sampled
    /// arrivals at a time (keeping the pending-event count bounded by the
    /// chunk size) while preserving FIFO order among equal timestamps; on
    /// the wheel every insert is `O(1)`, so a chunk costs linear time
    /// regardless of the pending population.
    ///
    /// # Example
    ///
    /// ```
    /// use simcore::{Nanos, Simulation};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule_batch((1..=4).map(|i| {
    ///     (Nanos::from_micros(i), move |_: &mut Simulation<u64>, sum: &mut u64| *sum += i)
    /// }));
    /// let mut sum = 0;
    /// sim.run(&mut sum);
    /// assert_eq!(sum, 10);
    /// ```
    pub fn schedule_batch<F>(&mut self, batch: impl IntoIterator<Item = (Nanos, F)>)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        for (delay, action) in batch {
            self.schedule_in(delay, action);
        }
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.core.len()
    }

    /// Snapshot of the scheduler's lifetime operation counters.
    pub fn counters(&self) -> CoreCounters {
        self.core.counters()
    }
}

impl<S> Default for Simulation<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// One firing of a periodic action: runs it and, while ticks remain,
/// re-enqueues itself `period` after the firing timestamp.
fn periodic_tick<S, F>(period: Nanos, remaining: u64, mut action: F) -> Action<S>
where
    S: 'static,
    F: FnMut(&mut Simulation<S>, &mut S) + Send + 'static,
{
    Box::new(move |sim, state| {
        action(sim, state);
        if remaining > 1 {
            sim.schedule_in(period, periodic_tick(period, remaining - 1, action));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), "a");
        q.push(Nanos::from_nanos(10), "b");
        q.push(Nanos::from_nanos(5), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos::from_micros(7), 1u32);
        q.push(Nanos::from_micros(3), 2u32);
        assert_eq!(q.peek_time(), Some(Nanos::from_micros(3)));
    }

    #[test]
    fn pushes_behind_the_frontier_fire_at_the_frontier() {
        // The clamp semantics, defined once for both implementations: a
        // timestamp behind the pop frontier comes out AT the frontier
        // (after anything already pending there), never before it.
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        for q in [0, 1] {
            let push = |w: &mut EventQueue<u32>, h: &mut ReferenceHeap<u32>, at, v| {
                if q == 0 {
                    w.push(at, v)
                } else {
                    h.push(at, v)
                }
            };
            let pop = |w: &mut EventQueue<u32>, h: &mut ReferenceHeap<u32>| {
                if q == 0 {
                    w.pop()
                } else {
                    h.pop()
                }
            };
            push(&mut wheel, &mut heap, Nanos::from_millis(5), 1);
            assert_eq!(pop(&mut wheel, &mut heap), Some((Nanos::from_millis(5), 1)));
            // 1 ms is behind the 5 ms frontier: it fires at 5 ms.
            push(&mut wheel, &mut heap, Nanos::from_millis(1), 2);
            push(&mut wheel, &mut heap, Nanos::from_millis(5), 3);
            assert_eq!(pop(&mut wheel, &mut heap), Some((Nanos::from_millis(5), 2)));
            assert_eq!(pop(&mut wheel, &mut heap), Some((Nanos::from_millis(5), 3)));
        }
        assert_eq!(wheel.frontier(), Nanos::from_millis(5));
        assert_eq!(heap.frontier(), Nanos::from_millis(5));
    }

    #[test]
    fn far_future_events_spill_and_promote_in_order() {
        // Beyond 2^48 ns from the cursor the wheels hand over to the
        // sorted spill heap; promotion back into the wheels must keep the
        // exact (timestamp, seq) order, including FIFO among equal stamps.
        let far = Nanos::from_nanos(1 << 52);
        let mut q = EventQueue::new();
        q.push(far, "spill-a");
        q.push(Nanos::from_nanos(7), "near");
        q.push(far, "spill-b");
        q.push(far + Nanos::from_nanos(1), "spill-c");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Nanos::from_nanos(7)));
        assert_eq!(q.pop(), Some((Nanos::from_nanos(7), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "spill-a")));
        assert_eq!(q.pop(), Some((far, "spill-b")));
        assert_eq!(q.pop(), Some((far + Nanos::from_nanos(1), "spill-c")));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cascaded_slots_preserve_fifo_among_equal_timestamps() {
        // Entries landing in a coarse slot are respread as the cursor
        // approaches; the drain must still observe insertion order.
        let mut q = EventQueue::new();
        let at = Nanos::from_micros(700); // level >= 1 from cursor 0
        for i in 0..100u32 {
            q.push(at, i);
        }
        q.push(Nanos::from_micros(1), u32::MAX);
        assert_eq!(q.pop().unwrap().1, u32::MAX);
        for i in 0..100u32 {
            assert_eq!(q.pop(), Some((at, i)));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_matches_reference_heap_on_a_mixed_schedule() {
        // A deterministic mixed drive: interleaved pushes (spanning slot,
        // cascade and overflow distances, with repeated timestamps) and
        // pops must produce identical sequences on both implementations.
        let mut wheel = EventQueue::new();
        let mut heap = ReferenceHeap::new();
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut step = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        for i in 0..5_000u64 {
            let r = step();
            if r % 4 == 0 {
                assert_eq!(wheel.pop(), heap.pop(), "pop #{i}");
            } else {
                let shift = [0u32, 6, 14, 26, 50][(r % 5) as usize];
                let at = Nanos::from_nanos((step() % 64) << shift);
                wheel.push(at, i);
                heap.push(at, i);
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek after push #{i}");
            }
            assert_eq!(wheel.len(), heap.len());
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn sharded_cores_match_a_single_queue_for_any_core_count() {
        // The core-count invariance contract: the same push/pop drive,
        // with pushes scattered over k cores, must yield the single
        // queue's pop sequence pop for pop — (timestamp, value) equal —
        // for every k. The drive mixes slot, cascade and overflow
        // distances with repeated timestamps, like the wheel/heap oracle.
        for cores in [1usize, 2, 3, 4, 8] {
            let mut group = ShardedCores::new(cores);
            let mut single = EventQueue::new();
            let mut lcg: u64 = 0x9e37_79b9_7f4a_7c15;
            let mut step = || {
                lcg = lcg
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                lcg >> 33
            };
            for i in 0..5_000u64 {
                let r = step();
                if r % 4 == 0 {
                    let merged = group.pop().map(|(_, at, v)| (at, v));
                    assert_eq!(merged, single.pop(), "pop #{i} with {cores} cores");
                } else {
                    let shift = [0u32, 6, 14, 26, 50][(r % 5) as usize];
                    let at = Nanos::from_nanos((step() % 64) << shift);
                    group.push((r % cores as u64) as usize, at, i);
                    single.push(at, i);
                    assert_eq!(group.peek_time(), single.peek_time(), "peek #{i}");
                }
                assert_eq!(group.len(), single.len());
            }
            loop {
                let merged = group.pop().map(|(_, at, v)| (at, v));
                let reference = single.pop();
                assert_eq!(merged, reference, "{cores} cores");
                if reference.is_none() {
                    break;
                }
            }
            assert_eq!(group.frontier(), single.frontier());
        }
    }

    #[test]
    fn cross_core_pushes_behind_the_merged_frontier_clamp_to_it() {
        // After core 0 drained an event at 5 ms, a push to core 1 at 1 ms
        // must fire at 5 ms — the clamp floor is the merged frontier, not
        // the receiving core's own (still unadvanced) cursor.
        let mut group = ShardedCores::new(2);
        group.push(0, Nanos::from_millis(5), "first");
        assert_eq!(group.pop(), Some((0, Nanos::from_millis(5), "first")));
        group.push(1, Nanos::from_millis(1), "late");
        group.push(0, Nanos::from_millis(5), "peer");
        assert_eq!(group.pop(), Some((1, Nanos::from_millis(5), "late")));
        assert_eq!(group.pop(), Some((0, Nanos::from_millis(5), "peer")));
        assert_eq!(group.frontier(), Nanos::from_millis(5));
    }

    #[test]
    fn pop_within_bounds_the_lock_step_window() {
        let mut group = ShardedCores::new(4);
        group.push(2, Nanos::from_micros(1), "in-window");
        group.push(3, Nanos::from_micros(10), "next-window");
        let window = Nanos::from_micros(5);
        assert_eq!(
            group.pop_within(window),
            Some((2, Nanos::from_micros(1), "in-window"))
        );
        assert_eq!(group.pop_within(window), None, "10 us is past the window");
        assert_eq!(group.len(), 1, "bounded draining removes nothing extra");
        assert_eq!(
            group.pop_within(Nanos::from_micros(10)),
            Some((3, Nanos::from_micros(10), "next-window"))
        );
        assert!(group.is_empty());
    }

    #[test]
    fn core_counters_track_the_wheel_operations() {
        let mut q = EventQueue::new();
        assert_eq!(q.counters(), CoreCounters::default());
        q.push(Nanos::from_nanos(1 << 52), "spill");
        q.push(Nanos::from_micros(700), "cascade"); // level >= 1 from cursor 0
        q.push(Nanos::from_nanos(3), "near");
        let c = q.counters();
        assert_eq!((c.pushes, c.pops), (3, 0));
        while q.pop().is_some() {}
        let c = q.counters();
        assert_eq!((c.pushes, c.pops), (3, 3));
        assert_eq!(c.slot_drains, 3, "one whole-slot drain per distinct tick");
        assert!(c.cascades >= 1, "the 700us entry lands in a coarse slot");
        assert_eq!(c.spill_promotions, 1, "the far entry promotes once");
    }

    #[test]
    fn sharded_push_pop_counters_are_lane_count_invariant() {
        // The logical-traffic counters must not depend on how the pushes
        // were scattered over lanes; the topology counters may.
        let drive = |cores: usize| {
            let mut group = ShardedCores::new(cores);
            for i in 0..500u64 {
                group.push(
                    (i % cores as u64) as usize,
                    Nanos::from_nanos(i * 17 % 400),
                    i,
                );
            }
            while group.pop().is_some() {}
            group.counters()
        };
        let one = drive(1);
        for cores in [2, 4, 8] {
            let many = drive(cores);
            assert_eq!((many.pushes, many.pops), (one.pushes, one.pops));
        }
        assert_eq!((one.pushes, one.pops), (500, 500));
    }

    #[test]
    fn a_zero_core_group_still_holds_one_core() {
        let mut group = ShardedCores::new(0);
        assert_eq!(group.cores(), 1);
        group.push(0, Nanos::from_nanos(3), 7u32);
        assert_eq!(group.core_len(0), 1);
        assert_eq!(group.pop(), Some((0, Nanos::from_nanos(3), 7u32)));
    }

    #[test]
    fn simulation_advances_clock_in_order() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(3), |sim, log| {
            log.push(sim.now().as_nanos())
        });
        sim.schedule_at(Nanos::from_millis(1), |sim, log| {
            log.push(sim.now().as_nanos())
        });
        let mut log = Vec::new();
        let end = sim.run(&mut log);
        assert_eq!(log, vec![1_000_000, 3_000_000]);
        assert_eq!(end, Nanos::from_millis(3));
    }

    #[test]
    fn chained_events_accumulate_time() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_in(Nanos::from_micros(5), |sim, n| {
            *n += 1;
            sim.schedule_in(Nanos::from_micros(5), |sim, n| {
                *n += 1;
                sim.schedule_in(Nanos::from_micros(5), |_, n| *n += 1);
            });
        });
        let mut n = 0;
        let end = sim.run(&mut n);
        assert_eq!(n, 3);
        assert_eq!(end, Nanos::from_micros(15));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(1), |_, n| *n += 1);
        sim.schedule_at(Nanos::from_millis(100), |_, n| *n += 100);
        let mut n = 0;
        sim.run_until(&mut n, Nanos::from_millis(10));
        assert_eq!(n, 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_with_a_past_horizon_never_rewinds_the_clock() {
        // Regression: the old clamp expression only avoided rewinding
        // because Nanos subtraction saturates; the rewrite must keep the
        // clock monotone when `until < now`.
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(8), |_, n| *n += 1);
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(sim.now(), Nanos::from_millis(8));
        let end = sim.run_until(&mut n, Nanos::from_millis(3));
        assert_eq!(end, Nanos::from_millis(8), "clock must not move backward");
        assert_eq!(sim.now(), Nanos::from_millis(8));
        // A future horizon with no events still advances the clock to it.
        assert_eq!(
            sim.run_until(&mut n, Nanos::from_millis(20)),
            Nanos::from_millis(20)
        );
    }

    #[test]
    fn scheduling_works_after_run_until_advanced_past_the_frontier() {
        // run_until can leave `now` ahead of the wheel's internal cursor
        // (the last drained tick); scheduling from there must still fire
        // at the scheduled time, clamped to `now` at the earliest.
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        let mut log = Vec::new();
        sim.run_until(&mut log, Nanos::from_millis(10));
        sim.schedule_at(Nanos::from_millis(2), |sim, log: &mut Vec<u64>| {
            log.push(sim.now().as_nanos())
        });
        sim.schedule_in(Nanos::from_millis(5), |sim, log: &mut Vec<u64>| {
            log.push(sim.now().as_nanos())
        });
        sim.run(&mut log);
        assert_eq!(log, vec![10_000_000, 15_000_000]);
    }

    #[test]
    fn periodic_actions_fire_on_schedule_and_stop() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_periodic(
            Nanos::from_micros(10),
            Nanos::from_micros(5),
            4,
            |sim, log: &mut Vec<u64>| log.push(sim.now().as_nanos()),
        );
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![10_000, 15_000, 20_000, 25_000]);
        assert_eq!(sim.pending(), 0);
        // Zero ticks schedules nothing at all.
        sim.schedule_periodic(
            Nanos::ZERO,
            Nanos::from_micros(1),
            0,
            |_, _: &mut Vec<u64>| unreachable!("zero-tick periodic action must never fire"),
        );
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn periodic_keeps_one_pending_event_at_a_time() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_periodic(
            Nanos::from_micros(1),
            Nanos::from_micros(1),
            1000,
            |_, n| *n += 1,
        );
        assert_eq!(sim.pending(), 1, "only the next tick is enqueued");
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 1000);
    }

    #[test]
    fn batch_scheduling_preserves_fifo_among_equal_timestamps() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        sim.schedule_batch(
            [(Nanos::from_micros(2), 1u32), (Nanos::from_micros(2), 2)]
                .into_iter()
                .map(|(at, tag)| {
                    (at, move |_: &mut Simulation<_>, log: &mut Vec<u32>| {
                        log.push(tag)
                    })
                }),
        );
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(2), |sim, _log: &mut Vec<u64>| {
            // Scheduling "at 0" after the clock reached 2ms must not rewind.
            sim.schedule_at(Nanos::ZERO, |sim, log| log.push(sim.now().as_nanos()));
        });
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![2_000_000]);
    }

    #[test]
    fn same_tick_events_scheduled_mid_drain_run_after_the_drained_batch() {
        // The run loop drains a whole wheel slot at a time; an action that
        // schedules more work at the same timestamp must see it run after
        // the already-drained events of that tick, in scheduling order.
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        let at = Nanos::from_micros(3);
        sim.schedule_at(at, |sim, log: &mut Vec<u32>| {
            log.push(1);
            sim.schedule_at(Nanos::ZERO, |_, log| log.push(3));
        });
        sim.schedule_at(at, |_, log: &mut Vec<u32>| log.push(2));
        let mut log = Vec::new();
        let end = sim.run(&mut log);
        assert_eq!(log, vec![1, 2, 3]);
        assert_eq!(end, at, "same-tick work must not advance the clock");
    }
}
