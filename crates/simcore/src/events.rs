//! A minimal discrete-event scheduler.
//!
//! The boot-sequence and queueing models advance a virtual clock through a
//! priority queue of timestamped events. The scheduler is intentionally
//! simple: events are closures over a shared mutable state value, executed
//! in timestamp order (FIFO among equal timestamps).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Nanos;

/// The boxed callback type run when an event fires. Actions are `Send` so
/// a `Simulation<S>` over `Send` state can move into worker threads (the
/// parallel experiment executor runs whole simulations per worker).
type Action<S> = Box<dyn FnOnce(&mut Simulation<S>, &mut S) + Send>;

/// An event scheduled at a point in virtual time.
struct Scheduled<S> {
    at: Nanos,
    seq: u64,
    action: Action<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A plain timestamp-ordered event queue of values.
///
/// # Example
///
/// ```
/// use simcore::{EventQueue, Nanos};
///
/// let mut q = EventQueue::new();
/// q.push(Nanos::from_millis(5), "late");
/// q.push(Nanos::from_millis(1), "early");
/// assert_eq!(q.pop(), Some((Nanos::from_millis(1), "early")));
/// assert_eq!(q.pop(), Some((Nanos::from_millis(5), "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<QueueEntry<T>>,
    seq: u64,
}

#[derive(Debug)]
struct QueueEntry<T> {
    at: Nanos,
    seq: u64,
    value: T,
}

impl<T> PartialEq for QueueEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for QueueEntry<T> {}
impl<T> PartialOrd for QueueEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for QueueEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `value` at virtual time `at`.
    pub fn push(&mut self, at: Nanos, value: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(QueueEntry { at, seq, value });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Nanos, T)> {
        self.heap.pop().map(|e| (e.at, e.value))
    }

    /// Returns the timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<Nanos> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// A discrete-event simulation over a user-provided state type.
///
/// # Example
///
/// ```
/// use simcore::{Nanos, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.schedule_in(Nanos::from_millis(10), |sim, count: &mut u32| {
///     *count += 1;
///     sim.schedule_in(Nanos::from_millis(10), |_, count| *count += 1);
/// });
/// let mut count = 0;
/// sim.run(&mut count);
/// assert_eq!(count, 2);
/// assert_eq!(sim.now(), Nanos::from_millis(20));
/// ```
pub struct Simulation<S> {
    now: Nanos,
    queue: BinaryHeap<Scheduled<S>>,
    seq: u64,
}

impl<S> std::fmt::Debug for Simulation<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.now)
            .field("pending", &self.queue.len())
            .finish()
    }
}

impl<S> Simulation<S> {
    /// Creates a simulation with the clock at zero.
    pub fn new() -> Self {
        Simulation {
            now: Nanos::ZERO,
            queue: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Schedules an action at an absolute virtual time.
    pub fn schedule_at<F>(&mut self, at: Nanos, action: F)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled {
            at: at.max(self.now),
            seq,
            action: Box::new(action),
        });
    }

    /// Schedules an action `delay` after the current virtual time.
    pub fn schedule_in<F>(&mut self, delay: Nanos, action: F)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        let at = self.now + delay;
        self.schedule_at(at, action);
    }

    /// Runs events until the queue drains; returns the final virtual time.
    pub fn run(&mut self, state: &mut S) -> Nanos {
        while let Some(event) = self.queue.pop() {
            self.now = event.at;
            (event.action)(self, state);
        }
        self.now
    }

    /// Runs events up to (and including) virtual time `until`.
    ///
    /// Afterwards the clock sits at `until`, or stays where it was if it
    /// had already advanced past the horizon — it never moves backward.
    pub fn run_until(&mut self, state: &mut S, until: Nanos) -> Nanos {
        while let Some(top) = self.queue.peek() {
            if top.at > until {
                break;
            }
            let event = self.queue.pop().expect("peeked event must pop");
            self.now = event.at;
            (event.action)(self, state);
        }
        self.now = self.now.max(until);
        self.now
    }

    /// Schedules `action` to fire `ticks` times, first at `start` after the
    /// current virtual time and then once every `period`.
    ///
    /// The action reschedules itself from each firing's timestamp, so a
    /// periodic arrival source costs one pending event at a time instead of
    /// `ticks` queue entries up front.
    ///
    /// # Example
    ///
    /// ```
    /// use simcore::{Nanos, Simulation};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule_periodic(Nanos::from_millis(1), Nanos::from_millis(2), 3, |_, n: &mut u32| {
    ///     *n += 1;
    /// });
    /// let mut n = 0;
    /// let end = sim.run(&mut n);
    /// assert_eq!(n, 3);
    /// assert_eq!(end, Nanos::from_millis(5)); // 1ms, 3ms, 5ms
    /// ```
    pub fn schedule_periodic<F>(&mut self, start: Nanos, period: Nanos, ticks: u64, action: F)
    where
        S: 'static,
        F: FnMut(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        if ticks == 0 {
            return;
        }
        self.schedule_in(start, periodic_tick(period, ticks, action));
    }

    /// Schedules a batch of `(delay, action)` pairs relative to the current
    /// virtual time.
    ///
    /// Load generators use this to enqueue one chunk of pre-sampled
    /// arrivals at a time (keeping the pending-event count bounded by the
    /// chunk size) while preserving FIFO order among equal timestamps.
    ///
    /// # Example
    ///
    /// ```
    /// use simcore::{Nanos, Simulation};
    ///
    /// let mut sim = Simulation::new();
    /// sim.schedule_batch((1..=4).map(|i| {
    ///     (Nanos::from_micros(i), move |_: &mut Simulation<u64>, sum: &mut u64| *sum += i)
    /// }));
    /// let mut sum = 0;
    /// sim.run(&mut sum);
    /// assert_eq!(sum, 10);
    /// ```
    pub fn schedule_batch<F>(&mut self, batch: impl IntoIterator<Item = (Nanos, F)>)
    where
        F: FnOnce(&mut Simulation<S>, &mut S) + Send + 'static,
    {
        for (delay, action) in batch {
            self.schedule_in(delay, action);
        }
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

impl<S> Default for Simulation<S> {
    fn default() -> Self {
        Self::new()
    }
}

/// One firing of a periodic action: runs it and, while ticks remain,
/// re-enqueues itself `period` after the firing timestamp.
fn periodic_tick<S, F>(period: Nanos, remaining: u64, mut action: F) -> Action<S>
where
    S: 'static,
    F: FnMut(&mut Simulation<S>, &mut S) + Send + 'static,
{
    Box::new(move |sim, state| {
        action(sim, state);
        if remaining > 1 {
            sim.schedule_in(period, periodic_tick(period, remaining - 1, action));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(Nanos::from_nanos(10), "a");
        q.push(Nanos::from_nanos(10), "b");
        q.push(Nanos::from_nanos(5), "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_reports_earliest() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Nanos::from_micros(7), 1u32);
        q.push(Nanos::from_micros(3), 2u32);
        assert_eq!(q.peek_time(), Some(Nanos::from_micros(3)));
    }

    #[test]
    fn simulation_advances_clock_in_order() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(3), |sim, log| {
            log.push(sim.now().as_nanos())
        });
        sim.schedule_at(Nanos::from_millis(1), |sim, log| {
            log.push(sim.now().as_nanos())
        });
        let mut log = Vec::new();
        let end = sim.run(&mut log);
        assert_eq!(log, vec![1_000_000, 3_000_000]);
        assert_eq!(end, Nanos::from_millis(3));
    }

    #[test]
    fn chained_events_accumulate_time() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_in(Nanos::from_micros(5), |sim, n| {
            *n += 1;
            sim.schedule_in(Nanos::from_micros(5), |sim, n| {
                *n += 1;
                sim.schedule_in(Nanos::from_micros(5), |_, n| *n += 1);
            });
        });
        let mut n = 0;
        let end = sim.run(&mut n);
        assert_eq!(n, 3);
        assert_eq!(end, Nanos::from_micros(15));
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(1), |_, n| *n += 1);
        sim.schedule_at(Nanos::from_millis(100), |_, n| *n += 100);
        let mut n = 0;
        sim.run_until(&mut n, Nanos::from_millis(10));
        assert_eq!(n, 1);
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn run_until_with_a_past_horizon_never_rewinds_the_clock() {
        // Regression: the old clamp expression only avoided rewinding
        // because Nanos subtraction saturates; the rewrite must keep the
        // clock monotone when `until < now`.
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(8), |_, n| *n += 1);
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(sim.now(), Nanos::from_millis(8));
        let end = sim.run_until(&mut n, Nanos::from_millis(3));
        assert_eq!(end, Nanos::from_millis(8), "clock must not move backward");
        assert_eq!(sim.now(), Nanos::from_millis(8));
        // A future horizon with no events still advances the clock to it.
        assert_eq!(
            sim.run_until(&mut n, Nanos::from_millis(20)),
            Nanos::from_millis(20)
        );
    }

    #[test]
    fn periodic_actions_fire_on_schedule_and_stop() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_periodic(
            Nanos::from_micros(10),
            Nanos::from_micros(5),
            4,
            |sim, log: &mut Vec<u64>| log.push(sim.now().as_nanos()),
        );
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![10_000, 15_000, 20_000, 25_000]);
        assert_eq!(sim.pending(), 0);
        // Zero ticks schedules nothing at all.
        sim.schedule_periodic(
            Nanos::ZERO,
            Nanos::from_micros(1),
            0,
            |_, _: &mut Vec<u64>| unreachable!("zero-tick periodic action must never fire"),
        );
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn periodic_keeps_one_pending_event_at_a_time() {
        let mut sim: Simulation<u32> = Simulation::new();
        sim.schedule_periodic(
            Nanos::from_micros(1),
            Nanos::from_micros(1),
            1000,
            |_, n| *n += 1,
        );
        assert_eq!(sim.pending(), 1, "only the next tick is enqueued");
        let mut n = 0;
        sim.run(&mut n);
        assert_eq!(n, 1000);
    }

    #[test]
    fn batch_scheduling_preserves_fifo_among_equal_timestamps() {
        let mut sim: Simulation<Vec<u32>> = Simulation::new();
        sim.schedule_batch(
            [(Nanos::from_micros(2), 1u32), (Nanos::from_micros(2), 2)]
                .into_iter()
                .map(|(at, tag)| {
                    (at, move |_: &mut Simulation<_>, log: &mut Vec<u32>| {
                        log.push(tag)
                    })
                }),
        );
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![1, 2]);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim: Simulation<Vec<u64>> = Simulation::new();
        sim.schedule_at(Nanos::from_millis(2), |sim, _log: &mut Vec<u64>| {
            // Scheduling "at 0" after the clock reached 2ms must not rewind.
            sim.schedule_at(Nanos::ZERO, |sim, log| log.push(sim.now().as_nanos()));
        });
        let mut log = Vec::new();
        sim.run(&mut log);
        assert_eq!(log, vec![2_000_000]);
    }
}
