//! # simcore
//!
//! Deterministic simulation core shared by every other crate in the
//! `isolation-bench` workspace.
//!
//! The crate provides:
//!
//! * [`time`] — a nanosecond-precision virtual time type ([`Nanos`]) used as
//!   the unit of simulated latency and duration everywhere in the workspace.
//! * [`rng`] — a seeded, splittable random number generator ([`SimRng`]) so
//!   that every experiment is reproducible from a single seed.
//! * [`dist`] — parametric latency/cost distributions ([`Distribution`]).
//! * [`stats`] — running statistics, percentiles, histograms and empirical
//!   CDFs used by the benchmark harness to summarize repeated runs.
//! * [`events`] — a discrete-event scheduler on a hierarchical timing
//!   wheel (O(1) scheduling, whole-slot batched draining) used for
//!   boot-sequence and queueing simulations, with the pre-wheel binary
//!   heap retained as an ordering oracle.
//! * [`resource`] — shared-resource models (token-bucket bandwidth,
//!   M/M/1-style queueing latency) used by the device simulations.
//! * [`obs`] — deterministic observability: seed-sampled per-request
//!   trace spans, windowed virtual-time metrics and event-core counters,
//!   exported as Chrome-trace and timeline JSON artifacts.
//!
//! # Example
//!
//! ```
//! use simcore::{Nanos, SimRng, stats::RunningStats};
//!
//! let mut rng = SimRng::seed_from(42);
//! let mut stats = RunningStats::new();
//! for _ in 0..100 {
//!     let jitter = rng.normal(1_000.0, 50.0).max(0.0);
//!     stats.record(jitter);
//! }
//! assert!((stats.mean() - 1_000.0).abs() < 50.0);
//! let latency = Nanos::from_micros(3) + Nanos::from_nanos(250);
//! assert_eq!(latency.as_nanos(), 3_250);
//! ```

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod error;
pub mod events;
pub mod obs;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use dist::Distribution;
pub use error::SimError;
pub use events::{CoreCounters, EventQueue, ReferenceHeap, ShardedCores, Simulation};
pub use obs::{ObsConfig, Recorder, Span, SpanKind};
pub use resource::{Bandwidth, QueueModel, TokenBucket};
pub use rng::SimRng;
pub use stats::{Cdf, Histogram, RunningStats, Summary};
pub use time::Nanos;

/// Result alias used across the simulation core.
pub type Result<T> = std::result::Result<T, SimError>;
