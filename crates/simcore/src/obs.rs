//! Deterministic observability: per-request trace spans, windowed
//! time-series metrics and event-core counters, driven entirely by
//! virtual time.
//!
//! Every subsystem in the workspace reduces a run to end-of-run summary
//! statistics; transient pathologies (a resharding redistribution spike,
//! a cache-miss storm) are invisible between t=0 and the final fold.
//! This module is the in-flight view, built under the same contract as
//! everything else in `simcore`: **bit-identical output for any executor
//! worker count or shard-core lane count**. Three properties carry that:
//!
//! * **Stateless sampling** — whether request `i` is traced is a pure
//!   function of `(sample_seed, i)` via [`crate::rng::mix`], consuming
//!   no draw from any simulation stream. Tracing on or off, sampled or
//!   not, the arrival/service/key streams see exactly the same draw
//!   sequence, so enabling a trace can never perturb a result.
//! * **Virtual-time windows** — the time-series buckets are fixed-width
//!   windows of *virtual* time, folded in the deterministic handler
//!   execution order. No wall clock exists anywhere in this module.
//! * **Canonical export order** — spans are exported sorted by
//!   `(start, end, lane, kind, request)` and lanes in registration
//!   order, so the serialized artifacts are byte-stable.
//!
//! Two artifacts come out of a [`Recorder`]:
//!
//! * [`Recorder::chrome_trace_json`] — Chrome trace-event JSON
//!   (`traceEvents`), loadable in `chrome://tracing` or Perfetto:
//!   duration (`ph: "X"`) events for waits and service phases, instant
//!   (`ph: "i"`) events for point occurrences, one virtual thread per
//!   registered lane.
//! * [`Recorder::timeline_json`] — an `isolation-bench/obs/v1` timeline:
//!   per-lane bucket series (arrivals, completions, drops, cache
//!   hits/misses, peak queue depth and in-service slots, achieved
//!   throughput) plus the span census and, optionally, the event-core
//!   counter profile of the run.

use crate::error::SimError;
use crate::events::CoreCounters;
use crate::rng;
use crate::time::Nanos;

/// What one trace span describes — the span taxonomy.
///
/// The discriminant order is the canonical fold/export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Bounded-admission-queue wait: arrival to slot dispatch.
    AdmissionWait,
    /// Slot occupancy: dispatch to completion (service time).
    SlotService,
    /// One middleware stage's request-path (in-phase) cost.
    StageIn,
    /// One middleware stage's response-path (out-phase) cost.
    StageOut,
    /// A stage cache access that hit (instant).
    CacheHit,
    /// A stage cache access that missed (instant).
    CacheMiss,
    /// A stage short-circuited the request (instant).
    ShortCircuit,
    /// A cluster arrival was routed to its shard (instant).
    Route,
    /// A rebalance moved the request off its pinned-phase shard (instant).
    HandOff,
}

/// All span kinds in canonical order.
pub const SPAN_KINDS: [SpanKind; 9] = [
    SpanKind::AdmissionWait,
    SpanKind::SlotService,
    SpanKind::StageIn,
    SpanKind::StageOut,
    SpanKind::CacheHit,
    SpanKind::CacheMiss,
    SpanKind::ShortCircuit,
    SpanKind::Route,
    SpanKind::HandOff,
];

impl SpanKind {
    /// Stable kebab-case label used in both JSON artifacts.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::AdmissionWait => "admission-wait",
            SpanKind::SlotService => "slot-service",
            SpanKind::StageIn => "stage-in",
            SpanKind::StageOut => "stage-out",
            SpanKind::CacheHit => "cache-hit",
            SpanKind::CacheMiss => "cache-miss",
            SpanKind::ShortCircuit => "short-circuit",
            SpanKind::Route => "route",
            SpanKind::HandOff => "hand-off",
        }
    }

    /// Whether the kind describes a point occurrence rather than a
    /// duration (exported as a Chrome instant event).
    pub fn is_instant(self) -> bool {
        matches!(
            self,
            SpanKind::CacheHit
                | SpanKind::CacheMiss
                | SpanKind::ShortCircuit
                | SpanKind::Route
                | SpanKind::HandOff
        )
    }
}

/// One recorded trace span: a kind, the request it belongs to, the lane
/// it happened on, and its virtual-time extent (`start == end` for
/// instants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What the span describes.
    pub kind: SpanKind,
    /// Deterministic id of the request (its arrival index).
    pub request: u64,
    /// The lane (tenant / stage / shard) the span happened on.
    pub lane: u32,
    /// Virtual start time.
    pub start: Nanos,
    /// Virtual end time (equal to `start` for instants).
    pub end: Nanos,
}

/// One fixed-width virtual-time window of a lane's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Bucket {
    /// Requests that arrived in the window.
    pub arrivals: u64,
    /// Requests whose response completed in the window.
    pub completions: u64,
    /// Requests dropped at the bounded admission queue in the window.
    pub drops: u64,
    /// Cache accesses that hit in the window.
    pub cache_hits: u64,
    /// Cache accesses that missed in the window.
    pub cache_misses: u64,
    /// Peak admission-queue depth observed in the window.
    pub max_queue_depth: u64,
    /// Peak in-service slot occupancy observed in the window.
    pub max_in_service: u64,
}

impl Bucket {
    fn is_empty(&self) -> bool {
        *self == Bucket::default()
    }
}

#[derive(Debug)]
struct LaneSeries {
    label: String,
    buckets: Vec<Bucket>,
}

/// Configuration of one [`Recorder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObsConfig {
    /// Seed of the stateless per-request sampling decision; derive it
    /// with [`crate::rng::derive_seed`] so traces are reproducible from
    /// the experiment's root seed.
    pub sample_seed: u64,
    /// Fraction of requests whose spans are recorded, in `[0, 1]`.
    /// 0 records no spans at all; 1 records every request.
    pub sample_rate: f64,
    /// Ring capacity of the span buffer; once full, the oldest recorded
    /// span is overwritten (the overwrite count is reported).
    pub span_capacity: usize,
    /// Width of one time-series bucket in virtual time.
    pub bucket_width: Nanos,
    /// Upper bound on buckets per lane; counts past the last window fold
    /// into it, so a longer-than-planned run saturates instead of
    /// growing without bound.
    pub max_buckets: usize,
}

impl ObsConfig {
    /// A configuration with the default buffer shape: 64k spans,
    /// 1 ms buckets, at most 4096 buckets per lane.
    pub fn new(sample_seed: u64, sample_rate: f64) -> Self {
        ObsConfig {
            sample_seed,
            sample_rate,
            span_capacity: 1 << 16,
            bucket_width: Nanos::from_millis(1),
            max_buckets: 4096,
        }
    }

    /// Returns the configuration with a different bucket width.
    pub fn with_bucket_width(mut self, width: Nanos) -> Self {
        self.bucket_width = width;
        self
    }

    /// Returns the configuration with a different span-ring capacity.
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }
}

/// The deterministic span recorder and bucket folder. See the module
/// docs for the contract; construct one per traced run, thread it
/// through the simulation state as an `Option<Recorder>` (the `None`
/// arm is the zero-cost disabled path), and export afterwards.
#[derive(Debug)]
pub struct Recorder {
    sample_seed: u64,
    sample_rate: f64,
    /// `mix(seed, request) < threshold` decides sampling; `all` handles
    /// rate 1.0 exactly (the cast would lose the top of the range).
    threshold: u64,
    all: bool,
    spans: Vec<Span>,
    capacity: usize,
    /// Total spans accepted (recorded plus overwritten).
    accepted: u64,
    bucket_width: Nanos,
    max_buckets: usize,
    lanes: Vec<LaneSeries>,
    core: Option<CoreCounters>,
}

impl Recorder {
    /// Builds a recorder.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a sample rate outside
    /// `[0, 1]`, a zero bucket width, a zero span capacity or a zero
    /// bucket bound — degenerate observers fail loudly like degenerate
    /// models do.
    pub fn try_new(config: ObsConfig) -> Result<Self, SimError> {
        if !config.sample_rate.is_finite() || !(0.0..=1.0).contains(&config.sample_rate) {
            return Err(SimError::InvalidConfig(format!(
                "trace sample rate must be a probability in [0, 1], got {}",
                config.sample_rate
            )));
        }
        if config.bucket_width == Nanos::ZERO {
            return Err(SimError::InvalidConfig(
                "timeline bucket width must be positive".into(),
            ));
        }
        if config.span_capacity == 0 || config.max_buckets == 0 {
            return Err(SimError::InvalidConfig(
                "span capacity and bucket bound must be positive".into(),
            ));
        }
        Ok(Recorder {
            sample_seed: config.sample_seed,
            sample_rate: config.sample_rate,
            threshold: (config.sample_rate * u64::MAX as f64) as u64,
            all: config.sample_rate >= 1.0,
            spans: Vec::new(),
            capacity: config.span_capacity,
            accepted: 0,
            bucket_width: config.bucket_width,
            max_buckets: config.max_buckets,
            lanes: Vec::new(),
            core: None,
        })
    }

    /// Whether the spans of request `request` are recorded — a pure
    /// function of the sample seed and the request id, consuming no
    /// random draws (see [`crate::rng::mix`]).
    pub fn sampled(&self, request: u64) -> bool {
        self.all || rng::mix(self.sample_seed, request) < self.threshold
    }

    /// Registers a lane (a tenant, stage or shard) and returns its id;
    /// registering the same label again returns the existing id.
    /// Registration order is the canonical export order.
    pub fn lane(&mut self, label: &str) -> u32 {
        if let Some(i) = self.lanes.iter().position(|l| l.label == label) {
            return i as u32;
        }
        self.lanes.push(LaneSeries {
            label: label.to_string(),
            buckets: Vec::new(),
        });
        (self.lanes.len() - 1) as u32
    }

    /// Records one span if its request is sampled. Once the ring is
    /// full the oldest span is overwritten.
    pub fn span(&mut self, kind: SpanKind, request: u64, lane: u32, start: Nanos, end: Nanos) {
        if !self.sampled(request) {
            return;
        }
        let span = Span {
            kind,
            request,
            lane,
            start,
            end: end.max(start),
        };
        if self.spans.len() < self.capacity {
            self.spans.push(span);
        } else {
            let slot = (self.accepted % self.capacity as u64) as usize;
            self.spans[slot] = span;
        }
        self.accepted += 1;
    }

    /// Records one instant span (a point occurrence) if sampled.
    pub fn instant(&mut self, kind: SpanKind, request: u64, lane: u32, at: Nanos) {
        self.span(kind, request, lane, at, at);
    }

    /// Total spans accepted by the ring, overwritten ones included.
    pub fn spans_accepted(&self) -> u64 {
        self.accepted
    }

    /// Spans lost to ring overwrites.
    pub fn spans_overwritten(&self) -> u64 {
        self.accepted.saturating_sub(self.capacity as u64)
    }

    /// The retained spans in recording order (oldest first).
    pub fn spans(&self) -> Vec<Span> {
        if self.accepted <= self.capacity as u64 {
            return self.spans.clone();
        }
        let split = (self.accepted % self.capacity as u64) as usize;
        let mut out = Vec::with_capacity(self.capacity);
        out.extend_from_slice(&self.spans[split..]);
        out.extend_from_slice(&self.spans[..split]);
        out
    }

    fn bucket(&mut self, lane: u32, at: Nanos) -> &mut Bucket {
        let idx =
            ((at.as_nanos() / self.bucket_width.as_nanos()) as usize).min(self.max_buckets - 1);
        let buckets = &mut self.lanes[lane as usize].buckets;
        if buckets.len() <= idx {
            buckets.resize_with(idx + 1, Bucket::default);
        }
        &mut buckets[idx]
    }

    /// Counts one arrival on `lane` in the window containing `at`.
    pub fn count_arrival(&mut self, lane: u32, at: Nanos) {
        self.bucket(lane, at).arrivals += 1;
    }

    /// Counts one completed response on `lane` at `at`.
    pub fn count_completion(&mut self, lane: u32, at: Nanos) {
        self.bucket(lane, at).completions += 1;
    }

    /// Counts one admission drop on `lane` at `at`.
    pub fn count_drop(&mut self, lane: u32, at: Nanos) {
        self.bucket(lane, at).drops += 1;
    }

    /// Counts one cache access on `lane` at `at`.
    pub fn count_cache(&mut self, lane: u32, at: Nanos, hit: bool) {
        let bucket = self.bucket(lane, at);
        if hit {
            bucket.cache_hits += 1;
        } else {
            bucket.cache_misses += 1;
        }
    }

    /// Folds a queue-depth / in-service observation into the window's
    /// running maxima.
    pub fn gauge(&mut self, lane: u32, at: Nanos, queue_depth: usize, in_service: usize) {
        let bucket = self.bucket(lane, at);
        bucket.max_queue_depth = bucket.max_queue_depth.max(queue_depth as u64);
        bucket.max_in_service = bucket.max_in_service.max(in_service as u64);
    }

    /// Attaches the run's event-core counter profile to the timeline
    /// artifact.
    ///
    /// Callers whose artifact must be byte-identical across core-lane
    /// counts (the sharded cluster) must **not** attach counters: the
    /// wheel-topology counters legitimately differ per lane count (see
    /// [`CoreCounters`]); surface them on the console instead.
    pub fn set_core_counters(&mut self, counters: CoreCounters) {
        self.core = Some(counters);
    }

    /// The spans in canonical export order: `(start, end, lane, kind,
    /// request)` — independent of any interleaving of recording calls
    /// within one virtual timestamp.
    fn sorted_spans(&self) -> Vec<Span> {
        let mut spans = self.spans();
        spans.sort_by_key(|s| (s.start, s.end, s.lane, s.kind, s.request));
        spans
    }

    /// Serializes the recorded spans as Chrome trace-event JSON
    /// (load in `chrome://tracing` or <https://ui.perfetto.dev>).
    ///
    /// Durations become `ph: "X"` complete events and instants become
    /// thread-scoped `ph: "i"` events; each registered lane is a virtual
    /// thread named by metadata events. Timestamps are microseconds of
    /// virtual time.
    pub fn chrome_trace_json(&self, target: &str) -> String {
        let mut out = String::with_capacity(256 + 128 * self.spans.len());
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [\n");
        out.push_str(&format!(
            "    {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
             \"args\": {{\"name\": \"isolation-bench/{}\"}}}}",
            escape(target)
        ));
        for (i, lane) in self.lanes.iter().enumerate() {
            out.push_str(&format!(
                ",\n    {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"name\": \"{}\"}}}}",
                i,
                escape(&lane.label)
            ));
        }
        for span in self.sorted_spans() {
            let ts = micros(span.start);
            if span.kind.is_instant() {
                out.push_str(&format!(
                    ",\n    {{\"name\": \"{}\", \"cat\": \"mark\", \"ph\": \"i\", \"s\": \"t\", \
                     \"pid\": 0, \"tid\": {}, \"ts\": {ts}, \"args\": {{\"request\": {}}}}}",
                    span.kind.label(),
                    span.lane,
                    span.request
                ));
            } else {
                out.push_str(&format!(
                    ",\n    {{\"name\": \"{}\", \"cat\": \"span\", \"ph\": \"X\", \
                     \"pid\": 0, \"tid\": {}, \"ts\": {ts}, \"dur\": {}, \
                     \"args\": {{\"request\": {}}}}}",
                    span.kind.label(),
                    span.lane,
                    micros(span.end - span.start),
                    span.request
                ));
            }
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Serializes the windowed time-series (and the span census) as the
    /// `isolation-bench/obs/v1` timeline artifact.
    pub fn timeline_json(&self, target: &str, seed: u64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str("  \"schema\": \"isolation-bench/obs/v1\",\n");
        out.push_str(&format!("  \"target\": \"{}\",\n", escape(target)));
        out.push_str(&format!("  \"seed\": {seed},\n"));
        out.push_str(&format!("  \"sample_rate\": {:.6},\n", self.sample_rate));
        out.push_str(&format!(
            "  \"bucket_width_us\": {},\n",
            micros(self.bucket_width)
        ));
        let spans = self.sorted_spans();
        out.push_str("  \"spans\": {\n");
        out.push_str(&format!("    \"accepted\": {},\n", self.accepted));
        out.push_str(&format!("    \"retained\": {},\n", spans.len()));
        out.push_str(&format!(
            "    \"overwritten\": {},\n",
            self.spans_overwritten()
        ));
        out.push_str("    \"by_kind\": {");
        for (i, kind) in SPAN_KINDS.iter().enumerate() {
            let count = spans.iter().filter(|s| s.kind == *kind).count();
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {count}", kind.label()));
        }
        out.push_str("}\n  },\n");
        out.push_str("  \"lanes\": [");
        let width_secs = self.bucket_width.as_secs_f64();
        for (li, lane) in self.lanes.iter().enumerate() {
            if li > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"lane\": \"{}\", \"buckets\": [",
                escape(&lane.label)
            ));
            let mut first = true;
            for (bi, bucket) in lane.buckets.iter().enumerate() {
                if bucket.is_empty() {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let start = self.bucket_width * bi as u64;
                out.push_str(&format!(
                    "\n      {{\"start_us\": {}, \"arrivals\": {}, \"completions\": {}, \
                     \"drops\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
                     \"max_queue_depth\": {}, \"max_in_service\": {}, \
                     \"achieved_per_sec\": {:.3}}}",
                    micros(start),
                    bucket.arrivals,
                    bucket.completions,
                    bucket.drops,
                    bucket.cache_hits,
                    bucket.cache_misses,
                    bucket.max_queue_depth,
                    bucket.max_in_service,
                    bucket.completions as f64 / width_secs
                ));
            }
            if first {
                out.push_str("]}");
            } else {
                out.push_str("\n    ]}");
            }
        }
        out.push_str("\n  ]");
        if let Some(core) = self.core {
            out.push_str(&format!(
                ",\n  \"core\": {{\"pushes\": {}, \"pops\": {}, \"slot_drains\": {}, \
                 \"cascades\": {}, \"spill_promotions\": {}}}",
                core.pushes, core.pops, core.slot_drains, core.cascades, core.spill_promotions
            ));
        }
        out.push_str("\n}\n");
        out
    }
}

/// Formats a virtual duration as microseconds with fixed precision —
/// the one float formatting both artifacts share.
fn micros(t: Nanos) -> String {
    format!("{:.3}", t.as_nanos() as f64 / 1e3)
}

/// Minimal JSON string escaping for labels (quotes, backslashes and
/// control characters; labels are ASCII identifiers in practice).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(rate: f64) -> Recorder {
        Recorder::try_new(ObsConfig::new(99, rate)).unwrap()
    }

    #[test]
    fn degenerate_configs_fail_loudly() {
        assert!(Recorder::try_new(ObsConfig::new(1, f64::NAN)).is_err());
        assert!(Recorder::try_new(ObsConfig::new(1, -0.1)).is_err());
        assert!(Recorder::try_new(ObsConfig::new(1, 1.1)).is_err());
        assert!(Recorder::try_new(ObsConfig::new(1, 0.5).with_bucket_width(Nanos::ZERO)).is_err());
        assert!(Recorder::try_new(ObsConfig::new(1, 0.5).with_span_capacity(0)).is_err());
    }

    #[test]
    fn rate_zero_records_nothing_and_rate_one_records_everything() {
        let mut none = recorder(0.0);
        let mut all = recorder(1.0);
        for request in 0..100 {
            for r in [&mut none, &mut all] {
                r.span(
                    SpanKind::SlotService,
                    request,
                    0,
                    Nanos::from_micros(request),
                    Nanos::from_micros(request + 1),
                );
            }
        }
        assert_eq!(none.spans_accepted(), 0);
        assert_eq!(all.spans_accepted(), 100);
    }

    #[test]
    fn sampling_is_stateless_and_hits_near_the_configured_rate() {
        let a = recorder(0.25);
        let b = recorder(0.25);
        let sampled: Vec<u64> = (0..10_000).filter(|&i| a.sampled(i)).collect();
        // Same seed and rate => same set, regardless of query order.
        assert!((0..10_000).rev().all(|i| b.sampled(i) == a.sampled(i)));
        let frac = sampled.len() as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "sampled fraction {frac}");
        // A different seed picks a different set.
        let c = Recorder::try_new(ObsConfig::new(100, 0.25)).unwrap();
        assert!((0..10_000).any(|i| c.sampled(i) != a.sampled(i)));
    }

    #[test]
    fn the_ring_overwrites_oldest_and_exports_in_chronological_order() {
        let mut r = Recorder::try_new(ObsConfig::new(1, 1.0).with_span_capacity(4)).unwrap();
        for i in 0..6u64 {
            r.instant(SpanKind::Route, i, 0, Nanos::from_micros(i));
        }
        assert_eq!(r.spans_accepted(), 6);
        assert_eq!(r.spans_overwritten(), 2);
        let requests: Vec<u64> = r.spans().iter().map(|s| s.request).collect();
        assert_eq!(requests, vec![2, 3, 4, 5], "oldest two overwritten");
    }

    #[test]
    fn buckets_fold_counts_into_their_windows_and_gauges_take_maxima() {
        let mut r =
            Recorder::try_new(ObsConfig::new(1, 1.0).with_bucket_width(Nanos::from_micros(10)))
                .unwrap();
        let lane = r.lane("tenant-a");
        assert_eq!(lane, 0);
        assert_eq!(r.lane("tenant-a"), 0, "re-registration is idempotent");
        r.count_arrival(lane, Nanos::from_micros(3));
        r.count_arrival(lane, Nanos::from_micros(9));
        r.count_arrival(lane, Nanos::from_micros(10));
        r.count_drop(lane, Nanos::from_micros(12));
        r.count_cache(lane, Nanos::from_micros(12), true);
        r.count_cache(lane, Nanos::from_micros(13), false);
        r.gauge(lane, Nanos::from_micros(5), 7, 2);
        r.gauge(lane, Nanos::from_micros(6), 3, 9);
        let json = r.timeline_json("unit", 7);
        assert!(json.contains("\"schema\": \"isolation-bench/obs/v1\""));
        assert!(json.contains(
            "{\"start_us\": 0.000, \"arrivals\": 2, \"completions\": 0, \"drops\": 0, \
             \"cache_hits\": 0, \"cache_misses\": 0, \"max_queue_depth\": 7, \
             \"max_in_service\": 9, \"achieved_per_sec\": 0.000}"
        ));
        assert!(json.contains("\"start_us\": 10.000, \"arrivals\": 1"));
        assert!(!json.contains("NaN") && !json.contains("inf"));
    }

    #[test]
    fn counts_past_the_bucket_bound_fold_into_the_last_window() {
        let mut cfg = ObsConfig::new(1, 1.0).with_bucket_width(Nanos::from_micros(1));
        cfg.max_buckets = 4;
        let mut r = Recorder::try_new(cfg).unwrap();
        let lane = r.lane("only");
        r.count_arrival(lane, Nanos::from_secs(30));
        assert_eq!(r.lanes[lane as usize].buckets.len(), 4);
        assert_eq!(r.lanes[lane as usize].buckets[3].arrivals, 1);
    }

    #[test]
    fn chrome_trace_shapes_durations_and_instants_correctly() {
        let mut r = recorder(1.0);
        let lane = r.lane("shard\"0");
        r.span(
            SpanKind::SlotService,
            5,
            lane,
            Nanos::from_micros(10),
            Nanos::from_micros(14),
        );
        r.instant(SpanKind::HandOff, 5, lane, Nanos::from_micros(10));
        let json = r.chrome_trace_json("cluster");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"shard\\\"0\""), "label escaped");
        assert!(json.contains(
            "{\"name\": \"slot-service\", \"cat\": \"span\", \"ph\": \"X\", \"pid\": 0, \
             \"tid\": 0, \"ts\": 10.000, \"dur\": 4.000, \"args\": {\"request\": 5}}"
        ));
        assert!(json.contains(
            "{\"name\": \"hand-off\", \"cat\": \"mark\", \"ph\": \"i\", \"s\": \"t\", \
             \"pid\": 0, \"tid\": 0, \"ts\": 10.000, \"args\": {\"request\": 5}}"
        ));
    }

    #[test]
    fn export_order_is_canonical_not_recording_order() {
        let mut a = recorder(1.0);
        let mut b = recorder(1.0);
        let at = Nanos::from_micros(2);
        // Same spans, opposite recording order within one timestamp.
        a.instant(SpanKind::Route, 1, 0, at);
        a.instant(SpanKind::Route, 2, 0, at);
        b.instant(SpanKind::Route, 2, 0, at);
        b.instant(SpanKind::Route, 1, 0, at);
        assert_eq!(a.chrome_trace_json("t"), b.chrome_trace_json("t"));
        assert_eq!(a.timeline_json("t", 0), b.timeline_json("t", 0));
    }

    #[test]
    fn core_counters_appear_only_when_attached() {
        let mut r = recorder(1.0);
        assert!(!r.timeline_json("t", 0).contains("\"core\""));
        r.set_core_counters(CoreCounters {
            pushes: 4,
            pops: 3,
            slot_drains: 2,
            cascades: 1,
            spill_promotions: 0,
        });
        assert!(r.timeline_json("t", 0).contains(
            "\"core\": {\"pushes\": 4, \"pops\": 3, \"slot_drains\": 2, \"cascades\": 1, \
             \"spill_promotions\": 0}"
        ));
    }
}
