//! Shared-resource models used by the device simulations.
//!
//! Two small building blocks appear over and over in the platform models:
//!
//! * [`TokenBucket`] / [`Bandwidth`] — a byte-per-second capacity that turns
//!   a transfer size into a transfer duration, optionally with a per-request
//!   fixed overhead (used for NICs, NVMe devices and virtio queues).
//! * [`QueueModel`] — an M/M/1-style waiting-time estimator used to model
//!   latency inflation as a device approaches saturation.
//! * [`CompletionTimer`] — a batched completion queue for service-slot
//!   pools: completions share coalesced scheduler wake-ups and drain a
//!   whole timing-wheel slot per clock advance instead of costing one
//!   scheduled closure each.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::events::EventQueue;
use crate::time::Nanos;

/// A bandwidth expressed in bytes per second.
///
/// # Example
///
/// ```
/// use simcore::{Bandwidth, Nanos};
///
/// let gbe = Bandwidth::from_gbit_per_sec(10.0);
/// let t = gbe.transfer_time(1_250_000_000); // 1.25 GB over 10 Gbit/s
/// assert_eq!(t, Nanos::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        Bandwidth {
            bytes_per_sec: bytes_per_sec.max(0.0),
        }
    }

    /// Creates a bandwidth from mebibytes per second.
    pub fn from_mib_per_sec(mib: f64) -> Self {
        Self::from_bytes_per_sec(mib * 1024.0 * 1024.0)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        Self::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Bandwidth in mebibytes per second.
    pub fn mib_per_sec(self) -> f64 {
        self.bytes_per_sec / (1024.0 * 1024.0)
    }

    /// Bandwidth in gigabits per second.
    pub fn gbit_per_sec(self) -> f64 {
        self.bytes_per_sec * 8.0 / 1e9
    }

    /// Time to transfer `bytes` at this bandwidth.
    ///
    /// A zero bandwidth yields an effectively infinite (saturated `u64`)
    /// duration rather than panicking.
    pub fn transfer_time(self, bytes: u64) -> Nanos {
        if self.bytes_per_sec <= 0.0 {
            return Nanos::from_nanos(u64::MAX);
        }
        Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Scales the bandwidth by `factor` (e.g. virtualization efficiency).
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes_per_sec * factor.max(0.0))
    }

    /// Returns the smaller of two bandwidths (the bottleneck).
    pub fn bottleneck(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }
}

/// A token-bucket rate limiter operating in virtual time.
///
/// The bucket refills continuously at `rate` and holds at most `burst`
/// bytes. [`TokenBucket::request`] returns how long a request of a given
/// size must wait before it conforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst_bytes: f64,
    tokens: f64,
    last_update: Nanos,
}

impl TokenBucket {
    /// Creates a bucket with the given refill rate and burst capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `burst_bytes` is zero.
    pub fn new(rate: Bandwidth, burst_bytes: u64) -> Result<Self, SimError> {
        if burst_bytes == 0 {
            return Err(SimError::InvalidConfig(
                "token bucket burst must be non-zero".into(),
            ));
        }
        Ok(TokenBucket {
            rate,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_update: Nanos::ZERO,
        })
    }

    /// Requests `bytes` at virtual time `now`; returns the delay before the
    /// request conforms to the configured rate.
    pub fn request(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.refill(now);
        let needed = bytes as f64;
        if self.tokens >= needed {
            self.tokens -= needed;
            return Nanos::ZERO;
        }
        let deficit = needed - self.tokens;
        self.tokens = 0.0;
        if self.rate.bytes_per_sec() <= 0.0 {
            return Nanos::from_nanos(u64::MAX);
        }
        Nanos::from_secs_f64(deficit / self.rate.bytes_per_sec())
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_update {
            return;
        }
        let elapsed = (now - self.last_update).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate.bytes_per_sec()).min(self.burst_bytes);
        self.last_update = now;
    }
}

/// An M/M/1-style queueing model for latency inflation under load.
///
/// The device simulations use this to capture the "standard deviation grows
/// as the platform approaches its throughput ceiling" effect visible in the
/// paper's I/O and network figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueModel {
    /// Mean service time of a single request.
    pub service_time: Nanos,
}

impl QueueModel {
    /// Creates a queue model with the given per-request service time.
    pub fn new(service_time: Nanos) -> Self {
        QueueModel { service_time }
    }

    /// The maximum sustainable request rate (requests per second).
    pub fn capacity_per_sec(&self) -> f64 {
        let s = self.service_time.as_secs_f64();
        if s <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / s
        }
    }

    /// Utilization (`rho`) at the offered request rate, clamped to `[0, 1)`.
    pub fn utilization(&self, offered_per_sec: f64) -> f64 {
        let cap = self.capacity_per_sec();
        if !cap.is_finite() || cap <= 0.0 {
            return 0.0;
        }
        (offered_per_sec / cap).clamp(0.0, 0.999)
    }

    /// Expected sojourn time (waiting + service) at the offered rate using
    /// the M/M/1 formula `W = S / (1 - rho)`.
    pub fn sojourn_time(&self, offered_per_sec: f64) -> Nanos {
        let rho = self.utilization(offered_per_sec);
        self.service_time.scale(1.0 / (1.0 - rho))
    }
}

/// A batched completion queue for service-slot pools.
///
/// Slot-pool simulations used to schedule one boxed closure per in-service
/// request to fire its completion. The timer replaces that with a single
/// timestamp-ordered [`EventQueue`] of completions (the timing wheel) plus
/// **coalesced wake-ups**: the caller keeps at most one scheduler event
/// armed per distinct completion time, and each wake drains *every*
/// completion due in that wheel slot at once.
///
/// Protocol:
/// * [`CompletionTimer::schedule`] registers a completion. When it returns
///   `Some(at)`, the caller must schedule one wake-up with its simulation
///   at `at` (the completion became the earliest pending one); `None`
///   means an already-armed wake covers it.
/// * From the wake-up's action, call [`CompletionTimer::wake`] with the
///   current virtual time: it drains every due completion in
///   deterministic `(timestamp, seq)` order and returns the next time to
///   arm, if a new wake is needed. Wake-ups made redundant by an earlier
///   re-arm are recognised and become no-ops (the simulation scheduler
///   has no cancellation), so stale firings never double-complete work.
///
/// Determinism: everything is a pure function of the call sequence, so
/// simulations built on the timer stay bit-identical across executor
/// worker counts.
#[derive(Debug)]
pub struct CompletionTimer<T> {
    queue: EventQueue<T>,
    /// The earliest outstanding wake-up, `<=` every pending completion
    /// whenever the queue is non-empty.
    armed: Option<Nanos>,
    /// Every wake-up time handed to the caller and not yet fired; lets a
    /// re-arm reuse a still-outstanding wake instead of scheduling a
    /// duplicate.
    outstanding: BinaryHeap<Reverse<Nanos>>,
}

impl<T> CompletionTimer<T> {
    /// Creates an empty timer.
    pub fn new() -> Self {
        CompletionTimer {
            queue: EventQueue::new(),
            armed: None,
            outstanding: BinaryHeap::new(),
        }
    }

    /// Number of pending completions.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot of the underlying timing wheel's operation counters —
    /// the completion queue's share of the event-core telemetry.
    pub fn counters(&self) -> crate::events::CoreCounters {
        self.queue.counters()
    }

    /// Whether no completions are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Registers a completion at `at`. Returns `Some(at)` when the caller
    /// must arm a scheduler wake-up at that time — the completion is
    /// earlier than every outstanding wake — and `None` when an armed
    /// wake already covers it.
    pub fn schedule(&mut self, at: Nanos, item: T) -> Option<Nanos> {
        // The queue clamps timestamps behind its pop frontier; mirror the
        // clamp so the armed wake matches the time the item will drain at.
        let at = at.max(self.queue.frontier());
        self.queue.push(at, item);
        if !self.armed.is_some_and(|armed| at >= armed) {
            self.armed = Some(at);
            self.outstanding.push(Reverse(at));
            return Some(at);
        }
        None
    }

    /// Consumes the timer and returns **every** pending completion in
    /// `(timestamp, seq)` order, regardless of due time — the node-death
    /// path: a failed service pool abandons its in-flight work at once
    /// and the caller resolves each item as failed.
    ///
    /// The caller typically replaces the timer with a fresh one
    /// (`std::mem::take`). Wake-ups armed by the consumed timer that are
    /// still scheduled with the simulation fire against the replacement,
    /// where they drain nothing and arm nothing (the fresh timer starts
    /// unarmed and a stale firing at `now` earlier than the new armed
    /// time is recognised by [`CompletionTimer::wake`]'s stale check), so
    /// abandoning the old wake-ups is safe.
    pub fn into_pending(mut self) -> Vec<(Nanos, T)> {
        let mut pending = Vec::with_capacity(self.queue.len());
        while let Some((at, item)) = self.queue.pop() {
            pending.push((at, item));
        }
        pending
    }

    /// Handles one wake-up firing at virtual time `now`: drains every
    /// completion due at or before `now` into `due` (in `(timestamp,
    /// seq)` order — one whole wheel slot per distinct tick) and returns
    /// the next wake-up the caller must arm, if any.
    ///
    /// A stale firing (its work already drained by an earlier re-arm)
    /// drains nothing and arms nothing.
    pub fn wake(&mut self, now: Nanos, due: &mut Vec<(Nanos, T)>) -> Option<Nanos> {
        // Retire the outstanding wake that just fired.
        if self.outstanding.peek().is_some_and(|Reverse(w)| *w <= now) {
            self.outstanding.pop();
        }
        if self.armed.is_some_and(|armed| armed > now) {
            // The earliest pending completion is past `now` and an armed
            // wake covers it: this firing is stale.
            return None;
        }
        while self.queue.peek_time().is_some_and(|t| t <= now) {
            let (at, item) = self.queue.pop().expect("peeked completion pops");
            due.push((at, item));
        }
        match self.queue.peek_time() {
            None => {
                self.armed = None;
                None
            }
            Some(next) => {
                // Reuse a still-outstanding wake when it fires in time.
                if let Some(&Reverse(w)) = self.outstanding.peek() {
                    if w <= next {
                        self.armed = Some(w);
                        return None;
                    }
                }
                self.armed = Some(next);
                self.outstanding.push(Reverse(next));
                Some(next)
            }
        }
    }
}

impl<T> Default for CompletionTimer<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_gbit_per_sec(8.0);
        assert!((b.bytes_per_sec() - 1e9).abs() < 1.0);
        assert!((b.gbit_per_sec() - 8.0).abs() < 1e-9);
        let m = Bandwidth::from_mib_per_sec(1.0);
        assert_eq!(m.bytes_per_sec(), 1_048_576.0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let b = Bandwidth::from_bytes_per_sec(1_000_000.0);
        assert_eq!(b.transfer_time(1_000_000), Nanos::from_secs(1));
        assert_eq!(b.transfer_time(500_000), Nanos::from_millis(500));
    }

    #[test]
    fn zero_bandwidth_does_not_panic() {
        let b = Bandwidth::from_bytes_per_sec(0.0);
        assert_eq!(b.transfer_time(10).as_nanos(), u64::MAX);
    }

    #[test]
    fn bottleneck_picks_smaller() {
        let a = Bandwidth::from_gbit_per_sec(10.0);
        let b = Bandwidth::from_gbit_per_sec(40.0);
        assert_eq!(a.bottleneck(b), a);
        assert_eq!(b.bottleneck(a), a);
    }

    #[test]
    fn token_bucket_burst_then_throttle() {
        let rate = Bandwidth::from_bytes_per_sec(1000.0);
        let mut tb = TokenBucket::new(rate, 1000).unwrap();
        // The first 1000 bytes conform immediately (burst).
        assert_eq!(tb.request(Nanos::ZERO, 1000), Nanos::ZERO);
        // The next 500 bytes must wait 0.5 s at 1000 B/s.
        let wait = tb.request(Nanos::ZERO, 500);
        assert_eq!(wait, Nanos::from_millis(500));
        // After one second of refill the bucket has capacity again.
        assert_eq!(tb.request(Nanos::from_secs(2), 800), Nanos::ZERO);
    }

    #[test]
    fn token_bucket_rejects_zero_burst() {
        assert!(TokenBucket::new(Bandwidth::from_bytes_per_sec(1.0), 0).is_err());
    }

    #[test]
    fn queue_model_latency_inflates_near_saturation() {
        let q = QueueModel::new(Nanos::from_micros(100));
        assert!((q.capacity_per_sec() - 10_000.0).abs() < 1e-6);
        let idle = q.sojourn_time(100.0);
        let busy = q.sojourn_time(9_000.0);
        assert!(busy > idle);
        assert!(busy.as_micros_f64() > 900.0, "busy = {busy}");
        // Offered load beyond capacity clamps instead of going negative.
        let overloaded = q.sojourn_time(50_000.0);
        assert!(overloaded > busy);
    }

    #[test]
    fn completion_timer_coalesces_same_tick_completions_into_one_wake() {
        let mut timer: CompletionTimer<u32> = CompletionTimer::new();
        let at = Nanos::from_micros(10);
        assert_eq!(timer.schedule(at, 1), Some(at), "first completion arms");
        assert_eq!(timer.schedule(at, 2), None, "same tick reuses the wake");
        assert_eq!(timer.schedule(at + Nanos::from_micros(5), 3), None);
        assert_eq!(timer.len(), 3);
        let mut due = Vec::new();
        // The wake at 10us drains the whole slot and re-arms for 15us.
        let next = timer.wake(at, &mut due);
        assert_eq!(due, vec![(at, 1), (at, 2)]);
        assert_eq!(next, Some(at + Nanos::from_micros(5)));
        due.clear();
        assert_eq!(timer.wake(at + Nanos::from_micros(5), &mut due), None);
        assert_eq!(due, vec![(at + Nanos::from_micros(5), 3)]);
        assert!(timer.is_empty());
    }

    #[test]
    fn an_earlier_completion_rearms_and_the_old_wake_is_reused_or_staled() {
        let mut timer: CompletionTimer<&str> = CompletionTimer::new();
        let (early, late) = (Nanos::from_micros(5), Nanos::from_micros(10));
        assert_eq!(timer.schedule(late, "late"), Some(late));
        assert_eq!(
            timer.schedule(early, "early"),
            Some(early),
            "re-arm earlier"
        );
        let mut due = Vec::new();
        // The early wake drains "early"; the still-outstanding wake at
        // 10us covers "late", so no new wake is needed.
        assert_eq!(timer.wake(early, &mut due), None);
        assert_eq!(due, vec![(early, "early")]);
        due.clear();
        assert_eq!(timer.wake(late, &mut due), None);
        assert_eq!(due, vec![(late, "late")]);
        // A leftover stale firing drains nothing and arms nothing.
        due.clear();
        assert_eq!(timer.wake(late, &mut due), None);
        assert!(due.is_empty());
    }

    #[test]
    fn into_pending_surrenders_everything_and_a_fresh_timer_ignores_stale_wakes() {
        let mut timer: CompletionTimer<u8> = CompletionTimer::new();
        let (a, b) = (Nanos::from_micros(5), Nanos::from_micros(9));
        assert_eq!(timer.schedule(b, 2), Some(b));
        assert_eq!(timer.schedule(a, 1), Some(a));
        // The node dies: every pending completion is surrendered in
        // (timestamp, seq) order, due or not.
        let old = std::mem::take(&mut timer);
        assert_eq!(old.into_pending(), vec![(a, 1), (b, 2)]);
        // The wakes armed before the death still fire against the
        // replacement; both are no-ops.
        let mut due = Vec::new();
        assert_eq!(timer.wake(a, &mut due), None);
        assert_eq!(timer.wake(b, &mut due), None);
        assert!(due.is_empty());
        // The replacement arms and drains normally afterwards.
        let c = Nanos::from_micros(12);
        assert_eq!(timer.schedule(c, 3), Some(c));
        assert_eq!(timer.wake(c, &mut due), None);
        assert_eq!(due, vec![(c, 3)]);
    }

    #[test]
    fn completions_scheduled_behind_the_frontier_drain_immediately() {
        // The fire-at-now clamp, threaded through the timer: after the
        // drain frontier reached 10us, a completion "at 3us" is due at
        // the frontier, and scheduling it re-arms a wake there.
        let mut timer: CompletionTimer<u8> = CompletionTimer::new();
        let frontier = Nanos::from_micros(10);
        assert_eq!(timer.schedule(frontier, 1), Some(frontier));
        let mut due = Vec::new();
        timer.wake(frontier, &mut due);
        assert_eq!(timer.schedule(Nanos::from_micros(3), 2), Some(frontier));
        due.clear();
        assert_eq!(timer.wake(frontier, &mut due), None);
        assert_eq!(due, vec![(frontier, 2)]);
    }
}
