//! Shared-resource models used by the device simulations.
//!
//! Two small building blocks appear over and over in the platform models:
//!
//! * [`TokenBucket`] / [`Bandwidth`] — a byte-per-second capacity that turns
//!   a transfer size into a transfer duration, optionally with a per-request
//!   fixed overhead (used for NICs, NVMe devices and virtio queues).
//! * [`QueueModel`] — an M/M/1-style waiting-time estimator used to model
//!   latency inflation as a device approaches saturation.

use serde::{Deserialize, Serialize};

use crate::error::SimError;
use crate::time::Nanos;

/// A bandwidth expressed in bytes per second.
///
/// # Example
///
/// ```
/// use simcore::{Bandwidth, Nanos};
///
/// let gbe = Bandwidth::from_gbit_per_sec(10.0);
/// let t = gbe.transfer_time(1_250_000_000); // 1.25 GB over 10 Gbit/s
/// assert_eq!(t, Nanos::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Creates a bandwidth from bytes per second.
    pub fn from_bytes_per_sec(bytes_per_sec: f64) -> Self {
        Bandwidth {
            bytes_per_sec: bytes_per_sec.max(0.0),
        }
    }

    /// Creates a bandwidth from mebibytes per second.
    pub fn from_mib_per_sec(mib: f64) -> Self {
        Self::from_bytes_per_sec(mib * 1024.0 * 1024.0)
    }

    /// Creates a bandwidth from gigabits per second.
    pub fn from_gbit_per_sec(gbit: f64) -> Self {
        Self::from_bytes_per_sec(gbit * 1e9 / 8.0)
    }

    /// Bandwidth in bytes per second.
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Bandwidth in mebibytes per second.
    pub fn mib_per_sec(self) -> f64 {
        self.bytes_per_sec / (1024.0 * 1024.0)
    }

    /// Bandwidth in gigabits per second.
    pub fn gbit_per_sec(self) -> f64 {
        self.bytes_per_sec * 8.0 / 1e9
    }

    /// Time to transfer `bytes` at this bandwidth.
    ///
    /// A zero bandwidth yields an effectively infinite (saturated `u64`)
    /// duration rather than panicking.
    pub fn transfer_time(self, bytes: u64) -> Nanos {
        if self.bytes_per_sec <= 0.0 {
            return Nanos::from_nanos(u64::MAX);
        }
        Nanos::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Scales the bandwidth by `factor` (e.g. virtualization efficiency).
    pub fn scale(self, factor: f64) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.bytes_per_sec * factor.max(0.0))
    }

    /// Returns the smaller of two bandwidths (the bottleneck).
    pub fn bottleneck(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }
}

/// A token-bucket rate limiter operating in virtual time.
///
/// The bucket refills continuously at `rate` and holds at most `burst`
/// bytes. [`TokenBucket::request`] returns how long a request of a given
/// size must wait before it conforms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TokenBucket {
    rate: Bandwidth,
    burst_bytes: f64,
    tokens: f64,
    last_update: Nanos,
}

impl TokenBucket {
    /// Creates a bucket with the given refill rate and burst capacity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `burst_bytes` is zero.
    pub fn new(rate: Bandwidth, burst_bytes: u64) -> Result<Self, SimError> {
        if burst_bytes == 0 {
            return Err(SimError::InvalidConfig(
                "token bucket burst must be non-zero".into(),
            ));
        }
        Ok(TokenBucket {
            rate,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_update: Nanos::ZERO,
        })
    }

    /// Requests `bytes` at virtual time `now`; returns the delay before the
    /// request conforms to the configured rate.
    pub fn request(&mut self, now: Nanos, bytes: u64) -> Nanos {
        self.refill(now);
        let needed = bytes as f64;
        if self.tokens >= needed {
            self.tokens -= needed;
            return Nanos::ZERO;
        }
        let deficit = needed - self.tokens;
        self.tokens = 0.0;
        if self.rate.bytes_per_sec() <= 0.0 {
            return Nanos::from_nanos(u64::MAX);
        }
        Nanos::from_secs_f64(deficit / self.rate.bytes_per_sec())
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.last_update {
            return;
        }
        let elapsed = (now - self.last_update).as_secs_f64();
        self.tokens = (self.tokens + elapsed * self.rate.bytes_per_sec()).min(self.burst_bytes);
        self.last_update = now;
    }
}

/// An M/M/1-style queueing model for latency inflation under load.
///
/// The device simulations use this to capture the "standard deviation grows
/// as the platform approaches its throughput ceiling" effect visible in the
/// paper's I/O and network figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueModel {
    /// Mean service time of a single request.
    pub service_time: Nanos,
}

impl QueueModel {
    /// Creates a queue model with the given per-request service time.
    pub fn new(service_time: Nanos) -> Self {
        QueueModel { service_time }
    }

    /// The maximum sustainable request rate (requests per second).
    pub fn capacity_per_sec(&self) -> f64 {
        let s = self.service_time.as_secs_f64();
        if s <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / s
        }
    }

    /// Utilization (`rho`) at the offered request rate, clamped to `[0, 1)`.
    pub fn utilization(&self, offered_per_sec: f64) -> f64 {
        let cap = self.capacity_per_sec();
        if !cap.is_finite() || cap <= 0.0 {
            return 0.0;
        }
        (offered_per_sec / cap).clamp(0.0, 0.999)
    }

    /// Expected sojourn time (waiting + service) at the offered rate using
    /// the M/M/1 formula `W = S / (1 - rho)`.
    pub fn sojourn_time(&self, offered_per_sec: f64) -> Nanos {
        let rho = self.utilization(offered_per_sec);
        self.service_time.scale(1.0 / (1.0 - rho))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::from_gbit_per_sec(8.0);
        assert!((b.bytes_per_sec() - 1e9).abs() < 1.0);
        assert!((b.gbit_per_sec() - 8.0).abs() < 1e-9);
        let m = Bandwidth::from_mib_per_sec(1.0);
        assert_eq!(m.bytes_per_sec(), 1_048_576.0);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let b = Bandwidth::from_bytes_per_sec(1_000_000.0);
        assert_eq!(b.transfer_time(1_000_000), Nanos::from_secs(1));
        assert_eq!(b.transfer_time(500_000), Nanos::from_millis(500));
    }

    #[test]
    fn zero_bandwidth_does_not_panic() {
        let b = Bandwidth::from_bytes_per_sec(0.0);
        assert_eq!(b.transfer_time(10).as_nanos(), u64::MAX);
    }

    #[test]
    fn bottleneck_picks_smaller() {
        let a = Bandwidth::from_gbit_per_sec(10.0);
        let b = Bandwidth::from_gbit_per_sec(40.0);
        assert_eq!(a.bottleneck(b), a);
        assert_eq!(b.bottleneck(a), a);
    }

    #[test]
    fn token_bucket_burst_then_throttle() {
        let rate = Bandwidth::from_bytes_per_sec(1000.0);
        let mut tb = TokenBucket::new(rate, 1000).unwrap();
        // The first 1000 bytes conform immediately (burst).
        assert_eq!(tb.request(Nanos::ZERO, 1000), Nanos::ZERO);
        // The next 500 bytes must wait 0.5 s at 1000 B/s.
        let wait = tb.request(Nanos::ZERO, 500);
        assert_eq!(wait, Nanos::from_millis(500));
        // After one second of refill the bucket has capacity again.
        assert_eq!(tb.request(Nanos::from_secs(2), 800), Nanos::ZERO);
    }

    #[test]
    fn token_bucket_rejects_zero_burst() {
        assert!(TokenBucket::new(Bandwidth::from_bytes_per_sec(1.0), 0).is_err());
    }

    #[test]
    fn queue_model_latency_inflates_near_saturation() {
        let q = QueueModel::new(Nanos::from_micros(100));
        assert!((q.capacity_per_sec() - 10_000.0).abs() < 1e-6);
        let idle = q.sojourn_time(100.0);
        let busy = q.sojourn_time(9_000.0);
        assert!(busy > idle);
        assert!(busy.as_micros_f64() > 900.0, "busy = {busy}");
        // Offered load beyond capacity clamps instead of going negative.
        let overloaded = q.sojourn_time(50_000.0);
        assert!(overloaded > busy);
    }
}
