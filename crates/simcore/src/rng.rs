//! Seeded random number generation for reproducible experiments.
//!
//! Every experiment in the harness derives all of its stochastic behaviour
//! from a single root seed, split per platform and per run, so two
//! invocations with the same seed produce bit-identical figures.

/// One splitmix64 step: advances the state and returns the mixed output.
/// This is the same finalizer [`SimRng::seed_from`] uses for state
/// expansion and the canonical mixing function for seed derivation.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a label, used to fold experiment/platform names into a
/// derived seed.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Mixes a seed and a salt into a uniformly distributed 64-bit value.
///
/// The mix is **stateless** — a pure function of its two arguments — so a
/// per-item decision (e.g. "is request `i` trace-sampled?") can be made
/// anywhere, in any order, without consuming a draw from any simulation
/// stream. That is what keeps trace sampling from perturbing the common
/// random numbers the sweeps are coupled by: sampling on or off, every
/// arrival/service/key stream sees exactly the same draw sequence.
pub fn mix(seed: u64, salt: u64) -> u64 {
    let mut state = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let first = splitmix64(&mut state);
    first ^ splitmix64(&mut state)
}

/// Derives the 64-bit seed of one `(experiment, platform, trial)` cell of
/// the evaluation grid from the root seed.
///
/// The derivation is **stateless**: it depends only on its four arguments,
/// never on how many other cells were derived before it or in which order.
/// That is the property the parallel experiment executor relies on to make
/// results bit-identical regardless of worker count or completion order.
///
/// Each component is folded in with a full splitmix64 round, so cells that
/// differ in any single component (including label pairs with the same
/// concatenation, e.g. `("ab", "c")` vs `("a", "bc")`) get independent
/// streams.
pub fn derive_seed(root_seed: u64, experiment: &str, platform: &str, trial: u64) -> u64 {
    let mut state = root_seed;
    let mut seed = splitmix64(&mut state);
    state ^= fnv1a(experiment);
    seed ^= splitmix64(&mut state);
    state ^= fnv1a(platform);
    seed ^= splitmix64(&mut state);
    state ^= trial;
    seed ^ splitmix64(&mut state)
}

/// Derives the independent random stream of one `(experiment, platform,
/// trial)` cell from the root seed; see [`derive_seed`].
///
/// # Example
///
/// ```
/// use simcore::rng;
///
/// let mut a = rng::derive(2021, "fig11_iperf", "native", 0);
/// let mut b = rng::derive(2021, "fig11_iperf", "native", 0);
/// let mut c = rng::derive(2021, "fig11_iperf", "native", 1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_ne!(b.next_u64(), c.next_u64());
/// ```
pub fn derive(root_seed: u64, experiment: &str, platform: &str, trial: u64) -> SimRng {
    SimRng::seed_from(derive_seed(root_seed, experiment, platform, trial))
}

/// A seeded random number generator with the sampling helpers the cost
/// models need (normal, log-normal, exponential, Pareto, Zipf).
///
/// The generator is a self-contained xoshiro256++ (seeded by splitmix64
/// expansion of the 64-bit seed) so the workspace carries no external RNG
/// dependency; the distributions are the standard textbook transforms
/// (Box–Muller, inverse CDF) which is all the cost models require.
///
/// # Example
///
/// ```
/// use simcore::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // splitmix64 expansion, the canonical way to seed xoshiro state.
        let mut s = seed;
        SimRng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// Derives an independent child generator for a named sub-domain.
    ///
    /// The label is hashed into the child's seed so that, for example, the
    /// "docker" and "gvisor" streams of the same experiment never share a
    /// sequence even though they originate from the same root seed.
    pub fn split(&mut self, label: &str) -> SimRng {
        let salt = self.next_u64();
        SimRng::seed_from(fnv1a(label) ^ salt)
    }

    /// Returns the next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform(&mut self, low: f64, high: f64) -> f64 {
        assert!(low <= high, "uniform bounds must be ordered");
        if low == high {
            return low;
        }
        low + self.uniform01() * (high - low)
    }

    /// Uniform integer sample in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.uniform01() < p
    }

    /// Normal (Gaussian) sample via the Box–Muller transform.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1 = self.uniform01().max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Normal sample truncated below at zero, convenient for latencies.
    pub fn normal_pos(&mut self, mean: f64, std_dev: f64) -> f64 {
        self.normal(mean, std_dev).max(0.0)
    }

    /// Log-normal sample parameterized by the mean and standard deviation of
    /// the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Exponential sample with the given rate (`lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return 0.0;
        }
        let u = self.uniform01().max(f64::MIN_POSITIVE);
        -u.ln() / lambda
    }

    /// Pareto sample with scale `x_m` and shape `alpha`.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        if alpha <= 0.0 {
            return x_m;
        }
        let u = self.uniform01().max(f64::MIN_POSITIVE);
        x_m / u.powf(1.0 / alpha)
    }

    /// Zipfian rank sample over `n` items with skew `theta` (0 = uniform).
    ///
    /// Uses the rejection-free approximation from Gray et al. that the YCSB
    /// workload generator is also based on, so the key-popularity profile of
    /// the Memcached experiment matches the original benchmark.
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        if n <= 1 {
            return 0;
        }
        if theta <= 0.0 {
            return self.index(n);
        }
        let n_f = n as f64;
        let zetan: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n_f).powf(1.0 - theta)) / (1.0 - zeta(2, theta) / zetan);
        let u = self.uniform01();
        let uz = u * zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(theta) {
            return 1;
        }
        let rank = (n_f * (eta * u - eta + 1.0).powf(alpha)) as usize;
        rank.min(n - 1)
    }
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn same_seed_same_stream_across_all_samplers() {
        let mut a = SimRng::seed_from(2021);
        let mut b = SimRng::seed_from(2021);
        for _ in 0..64 {
            assert_eq!(a.uniform01(), b.uniform01());
            assert_eq!(a.uniform(1.0, 9.0), b.uniform(1.0, 9.0));
            assert_eq!(a.index(17), b.index(17));
            assert_eq!(a.normal(5.0, 2.0), b.normal(5.0, 2.0));
            assert_eq!(a.exponential(0.5), b.exponential(0.5));
            assert_eq!(a.pareto(1.0, 2.0), b.pareto(1.0, 2.0));
            assert_eq!(a.zipf(100, 0.99), b.zipf(100, 0.99));
        }
    }

    #[test]
    fn split_is_deterministic_for_same_label() {
        let mut root_a = SimRng::seed_from(2021);
        let mut root_b = SimRng::seed_from(2021);
        let mut docker_a = root_a.split("docker");
        let mut docker_b = root_b.split("docker");
        let xs: Vec<u64> = (0..16).map(|_| docker_a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| docker_b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn split_streams_differ_by_label() {
        let mut root_a = SimRng::seed_from(9);
        let mut root_b = SimRng::seed_from(9);
        let mut docker = root_a.split("docker");
        let mut gvisor = root_b.split("gvisor");
        let xs: Vec<u64> = (0..8).map(|_| docker.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| gvisor.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn mix_is_stateless_and_sensitive_to_both_arguments() {
        assert_eq!(mix(7, 42), mix(7, 42));
        assert_ne!(mix(7, 42), mix(8, 42));
        assert_ne!(mix(7, 42), mix(7, 43));
        // Sequential salts must look independent, not sequential: the
        // low bit of the mix should flip roughly half the time.
        let flips = (0..1_000u64)
            .filter(|&i| (mix(11, i) ^ mix(11, i + 1)) & 1 == 1)
            .count();
        assert!((350..650).contains(&flips), "low-bit flips: {flips}");
    }

    #[test]
    fn derive_is_stateless_and_order_independent() {
        let forward: Vec<u64> = (0..8)
            .map(|t| derive_seed(2021, "fig05_ffmpeg", "docker", t))
            .collect();
        let backward: Vec<u64> = (0..8)
            .rev()
            .map(|t| derive_seed(2021, "fig05_ffmpeg", "docker", t))
            .rev()
            .collect();
        assert_eq!(forward, backward);
    }

    #[test]
    fn derive_changes_with_every_component() {
        let base = derive_seed(1, "exp", "plat", 0);
        assert_ne!(base, derive_seed(2, "exp", "plat", 0));
        assert_ne!(base, derive_seed(1, "exp2", "plat", 0));
        assert_ne!(base, derive_seed(1, "exp", "plat2", 0));
        assert_ne!(base, derive_seed(1, "exp", "plat", 1));
    }

    #[test]
    fn derive_distinguishes_label_boundaries() {
        assert_ne!(
            derive_seed(7, "ab", "c", 0),
            derive_seed(7, "a", "bc", 0),
            "concatenation-equal label pairs must not collide"
        );
        assert_ne!(derive_seed(7, "", "abc", 0), derive_seed(7, "abc", "", 0));
    }

    #[test]
    fn derived_streams_are_reproducible() {
        let mut a = derive(42, "fig08_stream", "native", 3);
        let mut b = derive(42, "fig08_stream", "native", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn normal_mean_is_close() {
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(50.0, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 50.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn normal_with_zero_sigma_is_deterministic() {
        let mut rng = SimRng::seed_from(1);
        assert_eq!(rng.normal(42.0, 0.0), 42.0);
    }

    #[test]
    fn exponential_mean_is_close_to_inverse_rate() {
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(0.1)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean was {mean}");
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let mut rng = SimRng::seed_from(3);
        let n = 10_000;
        let mut low = 0usize;
        for _ in 0..n {
            if rng.zipf(1000, 0.99) < 100 {
                low += 1;
            }
        }
        // With theta=0.99 far more than 10% of samples land in the first 10%
        // of the key space.
        assert!(low > n / 2, "only {low} of {n} samples in hot range");
    }

    #[test]
    fn zipf_zero_theta_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(4);
        let n = 10_000;
        let mut low = 0usize;
        for _ in 0..n {
            if rng.zipf(1000, 0.0) < 100 {
                low += 1;
            }
        }
        assert!(low < n / 5, "{low} of {n} samples in first decile");
    }

    #[test]
    fn chance_handles_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SimRng::seed_from(6);
        for _ in 0..1000 {
            let x = rng.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
    }

    #[test]
    fn pareto_never_below_scale() {
        let mut rng = SimRng::seed_from(7);
        for _ in 0..1000 {
            assert!(rng.pareto(3.0, 2.0) >= 3.0);
        }
    }
}
