//! Statistics used by the benchmark harness.
//!
//! The paper reports "average over the runs with error bars showing the
//! standard deviation", plus CDFs for the start-up experiments and a 90th
//! percentile for the netperf latency figure. This module implements the
//! corresponding estimators: [`RunningStats`] (Welford online mean /
//! variance), [`Summary`], percentile queries over an empirical [`Cdf`],
//! and fixed-width [`Histogram`]s.

use serde::{Deserialize, Serialize};

use crate::error::SimError;

/// Online mean/variance/min/max accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use simcore::stats::RunningStats;
///
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.std_dev(), 2.0);
/// ```
/// Min/max are stored as `Option` rather than `±inf` sentinels so an empty
/// accumulator contains only finite values — serializing one can never leak
/// `inf` into JSON emitters, and the derived `Default` agrees with [`new`].
///
/// [`new`]: RunningStats::new
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: Option<f64>,
    max: Option<f64>,
}

impl Default for RunningStats {
    fn default() -> Self {
        RunningStats::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: None,
            max: None,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = Some(self.min.map_or(x, |m| m.min(x)));
        self.max = Some(self.max.map_or(x, |m| m.max(x)));
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std-dev divided by the mean's magnitude).
    ///
    /// Dividing by `|mean|` keeps the ratio a non-negative dispersion
    /// measure for negative-mean samples too.
    pub fn cv(&self) -> f64 {
        if self.mean().abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / self.mean().abs()
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        self.min
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        self.max
    }

    /// Produces an owned summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min().unwrap_or(0.0),
            max: self.max().unwrap_or(0.0),
        }
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A point-in-time snapshot of a [`RunningStats`] accumulator.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Empirical cumulative distribution function over a sample set.
///
/// Used by the boot-time experiments, which the paper presents as CDFs of
/// 300 startups per platform.
///
/// # Example
///
/// ```
/// use simcore::stats::Cdf;
///
/// let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// assert_eq!(cdf.percentile(50.0), 2.0);
/// assert_eq!(cdf.percentile(100.0), 4.0);
/// assert!((cdf.fraction_below(2.5) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyDataset`] when `samples` is empty.
    pub fn from_samples(mut samples: Vec<f64>) -> Result<Self, SimError> {
        if samples.is_empty() {
            return Err(SimError::EmptyDataset(
                "cdf requires at least one sample".into(),
            ));
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Ok(Cdf { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: construction rejects empty sample sets.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Returns the value at percentile `p` (0–100, nearest-rank).
    pub fn percentile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 100.0);
        if p == 0.0 {
            return self.sorted[0];
        }
        let rank = ((p / 100.0) * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Median (50th percentile).
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Fraction of samples strictly below `x`.
    pub fn fraction_below(&self, x: f64) -> f64 {
        let below = self.sorted.partition_point(|v| *v < x);
        below as f64 / self.sorted.len() as f64
    }

    /// Returns `(value, cumulative_fraction)` pairs suitable for plotting.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n))
            .collect()
    }

    /// The underlying sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Mean of the samples.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }
}

/// Fixed-width histogram over a closed range.
///
/// # Example
///
/// ```
/// use simcore::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
/// h.record(1.0);
/// h.record(9.5);
/// assert_eq!(h.total(), 2);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[low, high)`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `bins == 0` or `low >= high`.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, SimError> {
        if bins == 0 {
            return Err(SimError::InvalidConfig(
                "histogram needs at least one bin".into(),
            ));
        }
        if low >= high {
            return Err(SimError::InvalidConfig(format!(
                "histogram bounds must satisfy low < high, got {low} >= {high}"
            )));
        }
        Ok(Histogram {
            low,
            high,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Records an observation; out-of-range values go to under/overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.low {
            self.underflow += 1;
            return;
        }
        if x >= self.high {
            self.overflow += 1;
            if let Some(c) = self.counts.last_mut() {
                *c += 1;
            }
            return;
        }
        let width = (self.high - self.low) / self.counts.len() as f64;
        let idx = ((x - self.low) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Total number of observations (including out-of-range).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// In-range bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Number of observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_known_values() {
        let s: RunningStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        assert_eq!(s.count(), 8);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn default_agrees_with_new() {
        // Regression: the derived Default used to start min/max at 0.0,
        // which silently clamped the observed range of all-positive or
        // all-negative samples recorded into a Default-constructed value.
        assert_eq!(RunningStats::default(), RunningStats::new());
        let mut d = RunningStats::default();
        let mut n = RunningStats::new();
        for x in [3.5, 7.0, -2.0] {
            d.record(x);
            n.record(x);
        }
        assert_eq!(d, n);
        assert_eq!(d.min(), Some(-2.0));
        assert_eq!(d.max(), Some(7.0));
    }

    #[test]
    fn empty_summary_is_finite() {
        let summary = RunningStats::new().summary();
        assert!(summary.min.is_finite());
        assert!(summary.max.is_finite());
        assert!(summary.mean.is_finite());
        assert!(summary.std_dev.is_finite());
    }

    #[test]
    fn cv_is_non_negative_for_negative_means() {
        // Regression: cv() used to divide by the signed mean, reporting a
        // negative coefficient of variation for negative-mean samples.
        let s: RunningStats = [-10.0, -12.0, -14.0].into_iter().collect();
        assert!(s.mean() < 0.0);
        assert!(s.cv() > 0.0, "cv {} must be positive", s.cv());
        let mirrored: RunningStats = [10.0, 12.0, 14.0].into_iter().collect();
        assert!((s.cv() - mirrored.cv()).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let all: RunningStats = data.iter().copied().collect();
        let mut a: RunningStats = data[..40].iter().copied().collect();
        let b: RunningStats = data[40..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut empty = RunningStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cdf_percentiles() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from).collect()).unwrap();
        assert_eq!(cdf.percentile(1.0), 1.0);
        assert_eq!(cdf.percentile(50.0), 50.0);
        assert_eq!(cdf.percentile(90.0), 90.0);
        assert_eq!(cdf.percentile(100.0), 100.0);
        assert_eq!(cdf.median(), 50.0);
    }

    #[test]
    fn cdf_rejects_empty_input() {
        assert!(matches!(
            Cdf::from_samples(vec![]),
            Err(SimError::EmptyDataset(_))
        ));
    }

    #[test]
    fn cdf_single_sample_is_every_percentile() {
        let cdf = Cdf::from_samples(vec![7.5]).unwrap();
        for p in [0.0, 0.1, 25.0, 50.0, 99.9, 100.0] {
            assert_eq!(cdf.percentile(p), 7.5);
        }
        assert_eq!(cdf.median(), 7.5);
        assert_eq!(cdf.len(), 1);
        assert!(!cdf.is_empty());
    }

    #[test]
    fn cdf_percentile_clamps_out_of_range_queries() {
        let cdf = Cdf::from_samples(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(cdf.percentile(-10.0), 1.0);
        assert_eq!(cdf.percentile(1e9), 3.0);
        assert_eq!(cdf.percentile(f64::NAN), 1.0);
    }

    #[test]
    fn merge_empty_into_populated_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.clone();
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let b: RunningStats = [4.0, 6.0].into_iter().collect();
        let mut a = RunningStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), 5.0);
        assert_eq!(a.min(), Some(4.0));
        assert_eq!(a.max(), Some(6.0));
    }

    #[test]
    fn merge_many_shards_matches_sequential() {
        let data: Vec<f64> = (0..240).map(|i| f64::from(i) * 0.37 - 20.0).collect();
        let all: RunningStats = data.iter().copied().collect();
        let mut merged = RunningStats::new();
        for shard in data.chunks(7) {
            let s: RunningStats = shard.iter().copied().collect();
            merged.merge(&s);
        }
        assert_eq!(merged.count(), all.count());
        assert!((merged.mean() - all.mean()).abs() < 1e-9);
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(merged.min(), all.min());
        assert_eq!(merged.max(), all.max());
    }

    #[test]
    fn cdf_fraction_below_and_points() {
        let cdf = Cdf::from_samples(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(cdf.fraction_below(10.0), 0.0);
        assert_eq!(cdf.fraction_below(25.0), 0.5);
        assert_eq!(cdf.fraction_below(1000.0), 1.0);
        let pts = cdf.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3], (40.0, 1.0));
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 100.0, 10).unwrap();
        for x in [5.0, 15.0, 15.5, 99.9, 150.0, -3.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 99.9 plus clamped overflow 150.0
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(0.0, 0.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }
}
