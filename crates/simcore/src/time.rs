//! Virtual time used throughout the simulation.
//!
//! All simulated latencies and durations are expressed as [`Nanos`], a
//! nanosecond-precision unsigned quantity. Keeping a dedicated newtype (as
//! opposed to bare `u64` or `std::time::Duration`) makes unit mistakes a
//! compile error and keeps arithmetic saturating so cost models can never
//! underflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A simulated duration or point in virtual time, in nanoseconds.
///
/// # Example
///
/// ```
/// use simcore::Nanos;
///
/// let syscall = Nanos::from_nanos(180);
/// let exit = Nanos::from_micros(1);
/// let total = syscall + exit;
/// assert_eq!(total.as_nanos(), 1_180);
/// assert!((total.as_micros_f64() - 1.18).abs() < 1e-9);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Nanos(u64);

impl Nanos {
    /// The zero duration.
    pub const ZERO: Nanos = Nanos(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at zero for
    /// negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            Nanos(0)
        } else {
            Nanos((s * 1e9).round() as u64)
        }
    }

    /// Creates a duration from fractional microseconds, saturating at zero
    /// for negative inputs.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us / 1e6)
    }

    /// Creates a duration from fractional milliseconds, saturating at zero
    /// for negative inputs.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a floating point factor, saturating at
    /// zero for negative factors.
    pub fn scale(self, factor: f64) -> Nanos {
        Nanos::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Nanos) -> Nanos {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: Nanos) -> Nanos {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Nanos {
    fn add_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for Nanos {
    fn sub_assign(&mut self, rhs: Nanos) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    fn mul(self, rhs: u64) -> Nanos {
        Nanos(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs.max(1))
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, |acc, x| acc + x)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl From<u64> for Nanos {
    fn from(ns: u64) -> Self {
        Nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion_roundtrip() {
        assert_eq!(Nanos::from_micros(2).as_nanos(), 2_000);
        assert_eq!(Nanos::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert!((Nanos::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((Nanos::from_millis(5).as_millis_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn negative_float_saturates_to_zero() {
        assert_eq!(Nanos::from_secs_f64(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_secs_f64(f64::NAN), Nanos::ZERO);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = Nanos::from_nanos(10);
        let b = Nanos::from_nanos(30);
        assert_eq!(a - b, Nanos::ZERO);
        assert_eq!((a + b).as_nanos(), 40);
        assert_eq!((a * 4).as_nanos(), 40);
        assert_eq!((b / 3).as_nanos(), 10);
        assert_eq!(b / 0, b); // divide-by-zero clamps the divisor to one
    }

    #[test]
    fn scale_by_factor() {
        let d = Nanos::from_micros(100);
        assert_eq!(d.scale(2.0).as_nanos(), 200_000);
        assert_eq!(d.scale(-1.0), Nanos::ZERO);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(Nanos::from_nanos(12).to_string(), "12ns");
        assert_eq!(Nanos::from_micros(12).to_string(), "12.000us");
        assert_eq!(Nanos::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Nanos::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: Nanos = (1..=4).map(Nanos::from_micros).sum();
        assert_eq!(total.as_nanos(), 10_000);
    }

    #[test]
    fn min_max() {
        let a = Nanos::from_nanos(5);
        let b = Nanos::from_nanos(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
