//! A minimal comment- and string-aware Rust lexer.
//!
//! The determinism rules only need a faithful *token* view of a source
//! file: identifiers, integer literals and punctuation, with everything
//! inside string literals, character literals and comments reliably kept
//! out of the token stream (a `"Instant::now"` inside a test fixture or a
//! doc comment must never fire a rule). Comments are captured separately
//! because suppression directives (`// simlint::allow(...)`) live there.
//!
//! The lexer handles the full set of Rust literal shapes that matter for
//! not mis-tokenizing real sources: line and (nested) block comments,
//! plain/byte/raw/raw-byte strings with arbitrary `#` fences, character
//! and byte-character literals with escapes, lifetimes vs. char literals,
//! raw identifiers, and integer/float literals with `_` separators,
//! radix prefixes and type suffixes. It does **not** attempt to parse —
//! the rule engine works on token patterns.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// An integer literal; `value` carries the decoded decimal value when
    /// the literal is a plain base-10 integer that fits in a `u64`.
    Int,
    /// A float literal (never rule-relevant, kept for stream fidelity).
    Float,
    /// A single punctuation character, or the two-character path
    /// separator `::` which the rules match on constantly.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token class.
    pub kind: TokenKind,
    /// The token text (for `Ident`/`Punct`: verbatim; for numbers: the
    /// raw literal text).
    pub text: String,
    /// Decoded value for plain decimal integer literals.
    pub value: Option<u64>,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// One comment (line or block, doc or plain) with its starting line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//`/`/*` framing.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-literal-string tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (suppression directives live here).
    pub comments: Vec<Comment>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `source`, returning the token and comment streams.
pub fn lex(source: &str) -> Lexed {
    Lexer {
        b: source.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.b.get(self.i + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
        }
        self.i += 1;
    }

    fn push(&mut self, kind: TokenKind, text: String, value: Option<u64>, line: u32) {
        self.out.tokens.push(Token {
            kind,
            text,
            value,
            line,
        });
    }

    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string_literal(),
                b'\'' => self.quote(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(c) => self.ident_or_prefixed_literal(),
                b':' if self.peek(1) == b':' => {
                    let line = self.line;
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Punct, "::".into(), None, line);
                }
                _ => {
                    let line = self.line;
                    self.bump();
                    self.push(TokenKind::Punct, (c as char).to_string(), None, line);
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i + 2;
        while self.i < self.b.len() && self.peek(0) != b'\n' {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.i + 2;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut end = self.i;
        while self.i < self.b.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                end = self.i;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        let end = end.max(start);
        let text = String::from_utf8_lossy(&self.b[start..end]).into_owned();
        self.out.comments.push(Comment { text, line });
    }

    /// A plain (or byte) string literal starting at the opening `"`.
    fn string_literal(&mut self) {
        self.bump(); // opening quote
        while self.i < self.b.len() {
            match self.peek(0) {
                b'\\' => {
                    self.bump();
                    self.bump();
                }
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// A raw string body starting at the first `#` or `"` after `r`/`br`.
    fn raw_string_literal(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        if self.peek(0) != b'"' {
            return; // not actually a raw string; caller already consumed `r`
        }
        self.bump();
        // Scan for `"` followed by `hashes` hash marks.
        while self.i < self.b.len() {
            if self.peek(0) == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != b'#' {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    for _ in 0..=hashes {
                        self.bump();
                    }
                    return;
                }
            }
            self.bump();
        }
    }

    /// Either a lifetime (`'a`, not tokenized) or a char literal (`'x'`,
    /// `'\n'`, `'"'`), which is skipped like a string.
    fn quote(&mut self) {
        self.bump(); // the opening '
        if self.peek(0) == b'\\' {
            // Escaped char literal: skip escape, then to the closing quote.
            self.bump();
            self.bump();
            while self.i < self.b.len() && self.peek(0) != b'\'' {
                self.bump();
            }
            self.bump();
            return;
        }
        if is_ident_start(self.peek(0)) {
            // Could be 'a' (char) or 'a / 'static (lifetime): scan the
            // ident run; a closing quote right after makes it a char.
            let mut j = 1;
            while is_ident_continue(self.peek(j)) {
                j += 1;
            }
            let is_char = self.peek(j) == b'\'';
            for _ in 0..j {
                self.bump();
            }
            if is_char {
                self.bump(); // closing quote
            }
            return;
        }
        // Some other single char ('%', '√', ...): skip to the closing quote.
        while self.i < self.b.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        self.bump();
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        let mut decimal = true;
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            decimal = false;
            self.bump();
            self.bump();
            while self.peek(0).is_ascii_alphanumeric() || self.peek(0) == b'_' {
                self.bump();
            }
        } else {
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        let mut float = false;
        if decimal && self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            float = true;
            self.bump();
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        if decimal && matches!(self.peek(0), b'e' | b'E') && {
            let j = if matches!(self.peek(1), b'+' | b'-') {
                2
            } else {
                1
            };
            self.peek(j).is_ascii_digit()
        } {
            float = true;
            self.bump();
            if matches!(self.peek(0), b'+' | b'-') {
                self.bump();
            }
            while self.peek(0).is_ascii_digit() || self.peek(0) == b'_' {
                self.bump();
            }
        }
        // Type suffix (u64, f32, usize, ...).
        let suffix_start = self.i;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        let suffix = &self.b[suffix_start..self.i];
        if float || suffix.first() == Some(&b'f') {
            self.push(TokenKind::Float, text, None, line);
            return;
        }
        let value = if decimal {
            String::from_utf8_lossy(&self.b[start..suffix_start])
                .replace('_', "")
                .parse::<u64>()
                .ok()
        } else {
            None
        };
        self.push(TokenKind::Int, text, value, line);
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        // String-literal prefixes must win over plain identifiers.
        let (p0, p1, p2) = (self.peek(0), self.peek(1), self.peek(2));
        match (p0, p1) {
            // r"..." / r#"..."# — but r#ident is a raw identifier.
            (b'r', b'"') => {
                self.bump();
                self.raw_string_literal();
                return;
            }
            (b'r', b'#') if !is_ident_start(p2) => {
                self.bump();
                self.raw_string_literal();
                return;
            }
            (b'r', b'#') => {
                // Raw identifier r#type: emit the ident without the prefix.
                self.bump();
                self.bump();
                let istart = self.i;
                while is_ident_continue(self.peek(0)) {
                    self.bump();
                }
                let text = String::from_utf8_lossy(&self.b[istart..self.i]).into_owned();
                self.push(TokenKind::Ident, text, None, line);
                return;
            }
            (b'b' | b'c', b'"') => {
                self.bump();
                self.string_literal();
                return;
            }
            (b'b', b'\'') => {
                self.bump();
                self.quote();
                return;
            }
            (b'b', b'r') if p2 == b'"' || p2 == b'#' => {
                self.bump();
                self.bump();
                self.raw_string_literal();
                return;
            }
            _ => {}
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let text = String::from_utf8_lossy(&self.b[start..self.i]).into_owned();
        self.push(TokenKind::Ident, text, None, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn tokens_inside_strings_and_comments_do_not_surface() {
        let src = r###"
            // Instant::now in a line comment
            /* HashMap.iter() in a /* nested */ block comment */
            let a = "Instant::now()";
            let b = r#"thread_rng " quote inside"#;
            let c = b"SystemTime";
            let d = 'x';
            let e = '"';
            fn real_token() {}
        "###;
        let ids = idents(src);
        assert!(ids.contains(&"real_token".to_string()));
        for banned in ["Instant", "HashMap", "thread_rng", "SystemTime"] {
            assert!(!ids.contains(&banned.to_string()), "{banned} leaked");
        }
    }

    #[test]
    fn line_numbers_are_one_based_and_track_newlines() {
        let src = "fn a() {}\nfn b() {}\n\nfn c() {}\n";
        let toks = lex(src).tokens;
        let line_of = |name: &str| {
            toks.iter()
                .find(|t| t.text == name)
                .map(|t| t.line)
                .unwrap()
        };
        assert_eq!(line_of("a"), 1);
        assert_eq!(line_of("b"), 2);
        assert_eq!(line_of("c"), 4);
    }

    #[test]
    fn multiline_strings_advance_the_line_counter() {
        let src = "let s = \"one\ntwo\nthree\";\nfn after() {}\n";
        let toks = lex(src).tokens;
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 4);
    }

    #[test]
    fn integer_literals_decode_decimal_values() {
        let toks = lex("let n = 23; let m = 1_000u64; let h = 0xff; let f = 2.5;").tokens;
        let ints: Vec<(String, Option<u64>)> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Int)
            .map(|t| (t.text.clone(), t.value))
            .collect();
        assert_eq!(ints[0], ("23".into(), Some(23)));
        assert_eq!(ints[1], ("1_000u64".into(), Some(1000)));
        assert_eq!(ints[2], ("0xff".into(), None));
        assert!(toks.iter().any(|t| t.kind == TokenKind::Float));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // 'a in a generic position must not swallow `>` as string content.
        let ids = idents("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn comments_are_captured_with_their_lines() {
        let src = "// first\nfn x() {}\n// simlint::allow(D001, reason = \"t\")\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[1].line, 3);
        assert!(lexed.comments[1].text.contains("simlint::allow"));
    }

    #[test]
    fn path_separator_is_one_token() {
        let toks = lex("Instant::now()").tokens;
        assert_eq!(toks[0].text, "Instant");
        assert_eq!(toks[1].text, "::");
        assert_eq!(toks[2].text, "now");
    }

    #[test]
    fn raw_identifiers_lex_as_plain_identifiers() {
        let ids = idents("let r#type = 1; let r2 = r#\"raw Instant::now\"#;");
        assert!(ids.contains(&"type".to_string()));
        assert!(!ids.contains(&"Instant".to_string()));
    }
}
