//! # simlint
//!
//! A determinism static-analysis pass over the `isolation-bench`
//! workspace sources.
//!
//! Every figure this repository produces must be **byte-identical for any
//! worker count, lane count or lock-step window** — an invariant the
//! replay tests can only check after the fact, one divergence at a time.
//! `simlint` enforces it at the source level instead: a hand-rolled,
//! comment- and string-aware Rust lexer ([`lexer`]) feeds a small rule
//! engine ([`rules`]) that rejects the hazards which historically break
//! bit-identity — wall-clock reads, hasher-ordered iteration, ambient
//! randomness, stray thread spawns, and the stale hardcoded experiment
//! counts that bit two previous PRs.
//!
//! ```text
//! cargo run -p simlint -- --check            # exit non-zero on findings
//! cargo run -p simlint -- --json SIMLINT.json
//! ```
//!
//! Legitimate sites are suppressed in place, with a mandatory reason:
//!
//! ```text
//! // simlint::allow(D004, reason = "bounded smoke test of real-thread locking")
//! ```
//!
//! See [`rules`] for the rule table and [`Workspace::scan`] for the
//! entry point the CLI and the self-audit test share.

pub mod lexer;
pub mod report;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{Finding, Suppressed};

/// Top-level directories scanned, relative to the workspace root.
/// `vendor/` (external stand-ins) and `target/` are deliberately out.
const SCAN_DIRS: &[&str] = &[
    "src", "crates", "tests", "examples", "benches", "ci", ".github",
];

/// The result of scanning a workspace tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `simlint::allow(...)`, same order.
    pub suppressed: Vec<Suppressed>,
    /// Number of files lexed/scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the tree is free of unsuppressed findings.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// A workspace tree to lint.
#[derive(Debug)]
pub struct Workspace {
    root: PathBuf,
}

impl Workspace {
    /// Creates a scanner rooted at the workspace directory (the one
    /// holding the top-level `Cargo.toml`).
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Workspace { root: root.into() }
    }

    /// Scans the tree and returns every finding, deterministically: the
    /// walk order is sorted, so two runs over the same tree produce the
    /// same report bytes.
    pub fn scan(&self) -> std::io::Result<Report> {
        let mut report = Report::default();
        for dir in SCAN_DIRS {
            let path = self.root.join(dir);
            if path.is_dir() {
                self.walk(&path, &mut report)?;
            }
        }
        report
            .findings
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        report.suppressed.sort_by(|a, b| {
            (&a.finding.file, a.finding.line, a.finding.rule).cmp(&(
                &b.finding.file,
                b.finding.line,
                b.finding.rule,
            ))
        });
        Ok(report)
    }

    fn walk(&self, dir: &Path, report: &mut Report) -> std::io::Result<()> {
        let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for entry in entries {
            if entry.is_dir() {
                let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
                if matches!(name, "target" | "vendor" | ".git") {
                    continue;
                }
                self.walk(&entry, report)?;
                continue;
            }
            let Some(ext) = entry.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            let rel = self.relative_label(&entry);
            match ext {
                "rs" => {
                    let source = fs::read_to_string(&entry)?;
                    rules::lint_rust_source(
                        &rel,
                        &source,
                        &mut report.findings,
                        &mut report.suppressed,
                    );
                    report.files_scanned += 1;
                }
                "sh" | "yml" | "yaml" => {
                    let source = fs::read_to_string(&entry)?;
                    rules::lint_text_source(
                        &rel,
                        &source,
                        &mut report.findings,
                        &mut report.suppressed,
                    );
                    report.files_scanned += 1;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Workspace-relative path with forward slashes, for stable reports.
    fn relative_label(&self, path: &Path) -> String {
        path.strip_prefix(&self.root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/")
    }
}
