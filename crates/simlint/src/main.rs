//! The `simlint` CLI: scan the workspace, print findings, optionally
//! emit the JSON artifact, and (with `--check`) gate on cleanliness.

use std::path::PathBuf;
use std::process::ExitCode;

use simlint::{report, Workspace};

const USAGE: &str = "\
simlint — determinism static analysis for the isolation-bench workspace

USAGE:
    cargo run -p simlint -- [OPTIONS]

OPTIONS:
    --check          exit non-zero if any unsuppressed finding remains
    --json <PATH>    write the machine-readable report to PATH
    --root <DIR>     workspace root to scan (default: auto-detected)
    --quiet          suppress per-finding terminal output
    --help           print this help
";

fn main() -> ExitCode {
    let mut check = false;
    let mut quiet = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--quiet" => quiet = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return fail("--json requires a path"),
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return fail("--root requires a directory"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let report = match Workspace::new(&root).scan() {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan of {} failed: {e}", root.display())),
    };

    if !quiet {
        print!("{}", report::to_text(&report));
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report::to_json(&report)) {
            return fail(&format!("writing {} failed: {e}", path.display()));
        }
    }
    if check && !report.clean() {
        eprintln!(
            "simlint: --check failed with {} finding(s)",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Under `cargo run` the manifest dir is `crates/simlint`, so the
/// workspace root is two levels up; otherwise fall back to the cwd.
fn default_root() -> PathBuf {
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let p = PathBuf::from(manifest);
        if let Some(root) = p.parent().and_then(|p| p.parent()) {
            if root.join("Cargo.toml").is_file() {
                return root.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("simlint: {msg}");
    ExitCode::FAILURE
}
