//! Human-readable and machine-readable rendering of a lint [`Report`].
//!
//! The JSON is hand-rolled (like the harness's bench artifacts) so the
//! lint tool stays dependency-free; `ci/check_bench.sh` greps the
//! emitted `"schema"` and `"clean"` fields to gate the
//! `lint-determinism` CI job.

use crate::rules::{describe, Finding, RULE_IDS};
use crate::Report;

/// Schema tag stamped into the JSON artifact.
pub const SCHEMA: &str = "isolation-bench/simlint/v1";

/// Renders findings as `file:line: RULE: message [context]` lines plus a
/// one-line summary — the terminal output of `cargo run -p simlint`.
pub fn to_text(report: &Report) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}: {}: {} [{}]\n",
            f.file, f.line, f.rule, f.message, f.context
        ));
    }
    out.push_str(&format!(
        "simlint: {} finding(s), {} suppressed, {} file(s) scanned\n",
        report.findings.len(),
        report.suppressed.len(),
        report.files_scanned
    ));
    out
}

/// Renders the machine-readable JSON artifact.
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": {},\n", quote(SCHEMA)));
    out.push_str(&format!("  \"clean\": {},\n", report.clean()));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"rules\": [");
    for (i, rule) in RULE_IDS.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"id\": {}, \"summary\": {}}}",
            quote(rule),
            quote(describe(rule))
        ));
    }
    out.push_str("],\n");
    out.push_str("  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str(&finding_json(f, None));
        out.push_str(if i + 1 < report.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"suppressed\": [\n");
    for (i, s) in report.suppressed.iter().enumerate() {
        out.push_str(&finding_json(&s.finding, Some(&s.reason)));
        out.push_str(if i + 1 < report.suppressed.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

fn finding_json(f: &Finding, reason: Option<&str>) -> String {
    let mut s = format!(
        "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"context\": {}, \"message\": {}",
        quote(f.rule),
        quote(&f.file),
        f.line,
        quote(&f.context),
        quote(&f.message)
    );
    if let Some(reason) = reason {
        s.push_str(&format!(", \"reason\": {}", quote(reason)));
    }
    s.push('}');
    s
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    #[test]
    fn json_escapes_quotes_and_reports_clean_verdict() {
        let mut report = Report {
            files_scanned: 1,
            ..Report::default()
        };
        assert!(to_json(&report).contains("\"clean\": true"));
        report.findings.push(Finding {
            rule: "D001",
            file: "a \"b\".rs".into(),
            line: 3,
            context: "Instant::now".into(),
            message: "msg".into(),
        });
        let json = to_json(&report);
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("a \\\"b\\\".rs"));
        assert!(json.contains(&format!("\"schema\": \"{SCHEMA}\"")));
    }
}
