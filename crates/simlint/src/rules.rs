//! The determinism rule set and the engine that applies it to one file.
//!
//! Every rule guards the workspace's core invariant: **figure bytes are
//! identical for any worker count, lane count or lock-step window**. The
//! rules reject the source-level hazards that historically break that
//! invariant, before a replay test ever has to catch the divergence:
//!
//! | Rule | Hazard |
//! |---|---|
//! | D001 | Wall-clock reads (`Instant::now`, `SystemTime`) outside the harness/bench timing allowlist |
//! | D002 | Order-sensitive iteration over `HashMap`/`HashSet` bindings |
//! | D003 | Ambient randomness (`thread_rng`, `OsRng`, entropy seeding) instead of `simcore::rng::derive` |
//! | D004 | `std::thread` spawns outside `harness::executor` and the bench crate |
//! | D005 | Hardcoded experiment counts in tests/CI instead of `ExperimentId::all().len()` / the artifact's `experiment_count` |
//! | D000 | Malformed suppression directives (missing or empty `reason`) |
//!
//! A finding at a site that is genuinely fine is suppressed per-site with
//! a mandatory reason:
//!
//! ```text
//! // simlint::allow(D004, reason = "bounded smoke test of the lock under real threads")
//! ```
//!
//! The directive covers its own line and the next source line. A
//! directive with no reason (or an unknown rule id) is itself a finding
//! (D000) and suppresses nothing.

use crate::lexer::{self, Comment, Token, TokenKind};

/// Identifiers treated as "experiment count" context for D005.
const D005_KEYWORDS: &[&str] = &["experiment", "slug", "figures"];

/// Integer literals below this are assumed structural (platform counts,
/// small indices); the experiment grid is far past it and only grows.
const D005_MIN_COUNT: u64 = 10;

/// `HashMap`/`HashSet` methods whose result order is the hasher's.
const D002_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Identifiers that reach ambient (non-derived) entropy.
const D003_IDENTS: &[&str] = &[
    "thread_rng",
    "ThreadRng",
    "OsRng",
    "from_entropy",
    "from_os_rng",
    "getrandom",
    "StdRng",
    "SmallRng",
    "RandomState",
];

/// All enforced rule ids, in report order.
pub const RULE_IDS: &[&str] = &["D000", "D001", "D002", "D003", "D004", "D005"];

/// Returns the one-line description of a rule id.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        "D000" => "suppression directive is malformed (a non-empty reason is required)",
        "D001" => "wall-clock read outside the harness/bench timing allowlist",
        "D002" => "order-sensitive iteration over a HashMap/HashSet binding",
        "D003" => "randomness not derived through simcore::rng::derive",
        "D004" => "std::thread spawn outside harness::executor and the bench crate",
        "D005" => "hardcoded experiment count; derive it from ExperimentId::all() or the artifact's experiment_count",
        _ => "unknown rule",
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D001`...).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The offending token context (a short source-derived snippet).
    pub context: String,
    /// Human explanation of the hazard at this site.
    pub message: String,
}

/// A finding that was silenced by a valid `simlint::allow` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppressed {
    /// The silenced finding.
    pub finding: Finding,
    /// The directive's mandatory reason.
    pub reason: String,
}

/// A parsed, well-formed `simlint::allow(D00x, reason = "...")` directive.
#[derive(Debug, Clone)]
struct Directive {
    rule: String,
    reason: String,
    line: u32,
}

/// Where a file sits in the workspace, which decides which rules apply.
#[derive(Debug, Clone, Copy)]
pub struct FilePolicy {
    /// D001 (wall clock) exempt: the executor's wall-clock timing table
    /// and the bench crate measure *host* time by design.
    pub timing_allowed: bool,
    /// D004 (thread spawn) exempt: the executor owns worker threads; the
    /// bench crate drives them.
    pub threads_allowed: bool,
    /// D005 applies only to tests and CI configuration.
    pub count_checked: bool,
}

/// Classifies a workspace-relative path (forward slashes).
pub fn policy_for(path: &str) -> FilePolicy {
    let timing_allowed =
        path.starts_with("crates/bench/") || path == "crates/harness/src/executor.rs";
    FilePolicy {
        timing_allowed,
        threads_allowed: timing_allowed,
        count_checked: path.starts_with("tests/")
            || path.contains("/tests/")
            || path.starts_with("ci/")
            || path.starts_with(".github/"),
    }
}

/// Lints one Rust source file; appends unsuppressed findings and
/// suppressed ones (with their reasons) to the two sinks.
pub fn lint_rust_source(
    path: &str,
    source: &str,
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<Suppressed>,
) {
    let policy = policy_for(path);
    let lexed = lexer::lex(source);
    let (directives, mut raw) = parse_directives(path, &lexed.comments);

    let toks = &lexed.tokens;
    if !policy.timing_allowed {
        d001_wall_clock(path, toks, &mut raw);
    }
    d002_hash_iteration(path, toks, &mut raw);
    d003_ambient_randomness(path, toks, &mut raw);
    if !policy.threads_allowed {
        d004_thread_spawn(path, toks, &mut raw);
    }
    if policy.count_checked {
        d005_hardcoded_count_rust(path, toks, &mut raw);
    }

    route(raw, &directives, findings, suppressed);
}

/// Lints one shell/YAML file (D005 only): a line that talks about
/// experiments/slugs and carries a standalone count literal is a
/// hardcode waiting to go stale.
pub fn lint_text_source(
    path: &str,
    source: &str,
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<Suppressed>,
) {
    let policy = policy_for(path);
    if !policy.count_checked {
        return;
    }
    let mut comments = Vec::new();
    let mut raw = Vec::new();
    for (idx, full_line) in source.lines().enumerate() {
        let line = idx as u32 + 1;
        let (code, comment) = match full_line.find('#') {
            Some(pos) => (&full_line[..pos], &full_line[pos + 1..]),
            None => (full_line, ""),
        };
        if !comment.is_empty() {
            comments.push(Comment {
                text: comment.to_string(),
                line,
            });
        }
        let lower = code.to_ascii_lowercase();
        if !D005_KEYWORDS.iter().any(|k| lower.contains(k)) {
            continue;
        }
        if let Some(count) = standalone_count(code) {
            raw.push(Finding {
                rule: "D005",
                file: path.to_string(),
                line,
                context: code.trim().chars().take(80).collect(),
                message: format!(
                    "hardcoded experiment count {count}; read it from the artifact's \
                     experiment_count (or derive it from the source of ExperimentId::all())"
                ),
            });
        }
    }
    let (directives, mut malformed) = parse_directives(path, &comments);
    raw.append(&mut malformed);
    route(raw, &directives, findings, suppressed);
}

/// Finds the first standalone decimal integer >= [`D005_MIN_COUNT`] in a
/// text line: a digit run not embedded in a word and not glued to `-`,
/// `.` or `/` (version tags, ranges, flags and paths are not counts).
fn standalone_count(code: &str) -> Option<u64> {
    let b = code.as_bytes();
    let mut i = 0;
    while i < b.len() {
        if b[i].is_ascii_digit() {
            let start = i;
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let before = if start == 0 { b' ' } else { b[start - 1] };
            let after = *b.get(i).unwrap_or(&b' ');
            let glued = |c: u8| is_word(c) || matches!(c, b'-' | b'.' | b'/');
            if !glued(before) && !glued(after) {
                if let Ok(v) = code[start..i].parse::<u64>() {
                    if v >= D005_MIN_COUNT {
                        return Some(v);
                    }
                }
            }
        } else {
            i += 1;
        }
    }
    None
}

fn is_word(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Applies directives: a matching directive on the finding's line or the
/// line above silences it (with its reason recorded); everything else is
/// reported. D000 findings are never suppressible.
fn route(
    raw: Vec<Finding>,
    directives: &[Directive],
    findings: &mut Vec<Finding>,
    suppressed: &mut Vec<Suppressed>,
) {
    for f in raw {
        let cover = directives.iter().find(|d| {
            f.rule != "D000" && d.rule == f.rule && (d.line == f.line || d.line + 1 == f.line)
        });
        match cover {
            Some(d) => suppressed.push(Suppressed {
                finding: f,
                reason: d.reason.clone(),
            }),
            None => findings.push(f),
        }
    }
}

/// Parses `simlint::allow(...)` directives out of the comment stream;
/// malformed ones come back as D000 findings.
fn parse_directives(path: &str, comments: &[Comment]) -> (Vec<Directive>, Vec<Finding>) {
    let mut directives = Vec::new();
    let mut malformed = Vec::new();
    for c in comments {
        // A directive must *start* the comment (after doc markers):
        // prose that merely mentions `simlint::allow(...)` is not one.
        let lead = c.text.trim_start_matches(['/', '!', ' ', '\t']);
        let Some(rest) = lead.strip_prefix("simlint::allow") else {
            continue;
        };
        match parse_allow_args(rest) {
            Ok((rule, reason)) => directives.push(Directive {
                rule,
                reason,
                line: c.line,
            }),
            Err(why) => malformed.push(Finding {
                rule: "D000",
                file: path.to_string(),
                line: c.line,
                context: c.text.trim().chars().take(80).collect(),
                message: format!(
                    "malformed simlint::allow directive ({why}); expected \
                     simlint::allow(D00x, reason = \"...\")"
                ),
            }),
        }
    }
    (directives, malformed)
}

/// Parses the `(D00x, reason = "...")` tail of a directive.
fn parse_allow_args(rest: &str) -> Result<(String, String), &'static str> {
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(`");
    };
    let Some(close) = rest.find(')') else {
        return Err("missing `)`");
    };
    let args = &rest[..close];
    let Some((rule, tail)) = args.split_once(',') else {
        return Err("missing mandatory `reason = \"...\"`");
    };
    let rule = rule.trim().to_string();
    if !RULE_IDS.contains(&rule.as_str()) || rule == "D000" {
        return Err("unknown rule id");
    }
    let tail = tail.trim();
    let Some(tail) = tail.strip_prefix("reason") else {
        return Err("missing mandatory `reason = \"...\"`");
    };
    let tail = tail.trim_start();
    let Some(tail) = tail.strip_prefix('=') else {
        return Err("missing `=` after reason");
    };
    let tail = tail.trim();
    let reason = tail
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or("reason must be a quoted string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty");
    }
    Ok((rule, reason.trim().to_string()))
}

fn ident_is(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == text
}

fn punct_is(t: &Token, text: &str) -> bool {
    t.kind == TokenKind::Punct && t.text == text
}

/// D001: `Instant::now`, or any mention of `SystemTime`/`UNIX_EPOCH`.
fn d001_wall_clock(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let hit = if ident_is(t, "Instant") {
            matches!(
                (toks.get(i + 1), toks.get(i + 2)),
                (Some(sep), Some(now)) if punct_is(sep, "::") && ident_is(now, "now")
            )
            .then(|| "Instant::now".to_string())
        } else if t.kind == TokenKind::Ident && (t.text == "SystemTime" || t.text == "UNIX_EPOCH") {
            Some(t.text.clone())
        } else {
            None
        };
        if let Some(context) = hit {
            out.push(Finding {
                rule: "D001",
                file: path.to_string(),
                line: t.line,
                context,
                message: "wall-clock read in simulation code: virtual time must come from the \
                          event core (simcore::Nanos), never the host clock"
                    .to_string(),
            });
        }
    }
}

/// D002: iteration-order-sensitive calls on bindings declared with a
/// `HashMap`/`HashSet` type (annotation or constructor), including
/// `for _ in &binding` loops.
fn d002_hash_iteration(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    let tainted = hash_typed_bindings(toks);
    if tainted.is_empty() {
        return;
    }
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        // binding . method (
        if t.kind == TokenKind::Ident && tainted.contains(&t.text.as_str()) {
            if let (Some(dot), Some(m), Some(paren)) =
                (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
            {
                if punct_is(dot, ".")
                    && m.kind == TokenKind::Ident
                    && D002_METHODS.contains(&m.text.as_str())
                    && punct_is(paren, "(")
                {
                    out.push(d002_finding(path, m.line, &t.text, &m.text));
                    i += 4;
                    continue;
                }
            }
        }
        // for _ in [& [mut]] chain . binding {
        if ident_is(t, "in") {
            let mut j = i + 1;
            while toks.get(j).map(|t| punct_is(t, "&")).unwrap_or(false)
                || toks.get(j).map(|t| ident_is(t, "mut")).unwrap_or(false)
            {
                j += 1;
            }
            // Walk an ident (`.` ident)* chain; the final segment decides.
            let mut last: Option<&Token> = None;
            while let Some(seg) = toks.get(j) {
                if seg.kind != TokenKind::Ident {
                    break;
                }
                last = Some(seg);
                if toks.get(j + 1).map(|t| punct_is(t, ".")).unwrap_or(false)
                    && toks
                        .get(j + 2)
                        .map(|t| t.kind == TokenKind::Ident)
                        .unwrap_or(false)
                {
                    j += 2;
                } else {
                    j += 1;
                    break;
                }
            }
            if let (Some(seg), Some(next)) = (last, toks.get(j)) {
                if tainted.contains(&seg.text.as_str()) && punct_is(next, "{") {
                    out.push(d002_finding(path, seg.line, &seg.text, "for-in"));
                }
            }
        }
        i += 1;
    }
}

fn d002_finding(path: &str, line: u32, binding: &str, method: &str) -> Finding {
    Finding {
        rule: "D002",
        file: path.to_string(),
        line,
        context: format!("{binding}.{method}"),
        message: format!(
            "`{binding}` is HashMap/HashSet-typed: its iteration order follows the hasher, \
             not the data — fold through a sorted/BTree view instead, or sort before use"
        ),
    }
}

/// Collects names declared with a hash-container type in this file:
/// `name: ...HashMap<...>` / `name: ...HashSet<...>` annotations (struct
/// fields, params) and `let [mut] name = ...HashMap::...` constructors.
fn hash_typed_bindings(toks: &[Token]) -> Vec<&str> {
    let mut names: Vec<&str> = Vec::new();
    let is_hash = |t: &Token| ident_is(t, "HashMap") || ident_is(t, "HashSet");
    for (i, t) in toks.iter().enumerate() {
        // `let [mut] name = ... ;` with a hash constructor in the rhs.
        if ident_is(t, "let") {
            let mut j = i + 1;
            if toks.get(j).map(|t| ident_is(t, "mut")).unwrap_or(false) {
                j += 1;
            }
            let Some(name) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
                continue;
            };
            let mut k = j + 1;
            while let Some(tk) = toks.get(k) {
                if punct_is(tk, ";") || punct_is(tk, "{") || k > j + 48 {
                    break;
                }
                if is_hash(tk) {
                    names.push(name.text.as_str());
                    break;
                }
                k += 1;
            }
            continue;
        }
        // `name : <type window mentioning HashMap/HashSet>`. The window
        // stops at the first separator, including `,`: the container in
        // a field/param type appears before any of its generic commas
        // (`map: HashMap<Vec<u8>, Entry>` taints, the *next* field after
        // a comma must not).
        if t.kind == TokenKind::Ident && toks.get(i + 1).map(|t| punct_is(t, ":")).unwrap_or(false)
        {
            for tk in toks.iter().take(i + 18).skip(i + 2) {
                if tk.kind == TokenKind::Punct
                    && matches!(tk.text.as_str(), ";" | "=" | "{" | "}" | "," | ")")
                {
                    break;
                }
                if is_hash(tk) {
                    names.push(t.text.as_str());
                    break;
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// D003: identifiers that reach ambient entropy, or a `rand::` path.
fn d003_ambient_randomness(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        let hit = if t.kind == TokenKind::Ident && D003_IDENTS.contains(&t.text.as_str()) {
            Some(t.text.clone())
        } else if ident_is(t, "rand") && toks.get(i + 1).map(|n| punct_is(n, "::")).unwrap_or(false)
        {
            Some("rand::".to_string())
        } else {
            None
        };
        if let Some(context) = hit {
            out.push(Finding {
                rule: "D003",
                file: path.to_string(),
                line: t.line,
                context,
                message: "ambient randomness: every stochastic stream must be derived from the \
                          root seed via simcore::rng::derive so replays are bit-identical"
                    .to_string(),
            });
        }
    }
}

/// D004: `thread::spawn`, `thread::scope`, `thread::Builder`.
fn d004_thread_spawn(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in toks.iter().enumerate() {
        if !ident_is(t, "thread") {
            continue;
        }
        let (Some(sep), Some(call)) = (toks.get(i + 1), toks.get(i + 2)) else {
            continue;
        };
        if punct_is(sep, "::")
            && (ident_is(call, "spawn") || ident_is(call, "scope") || ident_is(call, "Builder"))
        {
            out.push(Finding {
                rule: "D004",
                file: path.to_string(),
                line: t.line,
                context: format!("thread::{}", call.text),
                message: "thread spawn outside harness::executor: OS scheduling order is \
                          nondeterministic — run work through the executor's canonical-merge \
                          workers instead"
                    .to_string(),
            });
        }
    }
}

/// D005 (Rust): a `.len()` on an experiment/figures/slug chain compared
/// against a count literal, or a keyword binding assigned/compared to one.
fn d005_hardcoded_count_rust(path: &str, toks: &[Token], out: &mut Vec<Finding>) {
    let keyword = |t: &Token| {
        t.kind == TokenKind::Ident && {
            let lower = t.text.to_ascii_lowercase();
            D005_KEYWORDS.iter().any(|k| lower.contains(k))
        }
    };
    // Counts live in [10, 999]: below is structural (platform counts,
    // indices), above is a seed (the ubiquitous `quick(2021)`), and the
    // grid sits at 23 and grows slowly.
    let count_int = |t: &Token| {
        t.kind == TokenKind::Int && (D005_MIN_COUNT..1000).contains(&t.value.unwrap_or(0))
    };
    let comparator =
        |t: &Token| t.kind == TokenKind::Punct && matches!(t.text.as_str(), "=" | "<" | ">" | "!");
    let mut fired_lines: Vec<u32> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        // Pattern A: a `.len()` call with an experiment/figures/slug ident
        // shortly before it and a count literal nearby — the
        // `assert_eq!(x.figures.len(), 23)` shape in both operand orders.
        if ident_is(t, "len")
            && toks.get(i + 1).map(|t| punct_is(t, "(")).unwrap_or(false)
            && toks.get(i + 2).map(|t| punct_is(t, ")")).unwrap_or(false)
        {
            let back = i.saturating_sub(8);
            if toks[back..i].iter().any(keyword) {
                let window = &toks[back..(i + 8).min(toks.len())];
                if let Some(int) = window.iter().find(|t| count_int(t)) {
                    fire(path, int, out, &mut fired_lines);
                }
            }
        }
        // Pattern B: a keyword binding assigned or compared to a count
        // literal (`experiment_count == 23`, `const EXPERIMENTS: usize = 23`).
        if keyword(t) {
            let end = (i + 5).min(toks.len());
            let mut j = i + 1;
            while j < end && !comparator(&toks[j]) && !punct_is(&toks[j], ";") {
                j += 1;
            }
            if j < end && comparator(&toks[j]) {
                while j < toks.len() && comparator(&toks[j]) {
                    j += 1;
                }
                if let Some(int) = toks.get(j).filter(|t| count_int(t)) {
                    fire(path, int, out, &mut fired_lines);
                }
            }
        }
        // Pattern C: an equality assert whose argument window pairs a
        // keyword ident with a count literal (`assert_eq!(count, 23)`
        // where `count` talks about experiments).
        if ident_is(t, "assert_eq") || ident_is(t, "assert_ne") {
            let window = &toks[i..(i + 16).min(toks.len())];
            let end = window
                .iter()
                .position(|t| punct_is(t, ";"))
                .unwrap_or(window.len());
            let window = &window[..end];
            if window.iter().any(keyword) {
                if let Some(int) = window.iter().find(|t| count_int(t)) {
                    fire(path, int, out, &mut fired_lines);
                }
            }
        }
    }

    fn fire(path: &str, int: &Token, out: &mut Vec<Finding>, fired: &mut Vec<u32>) {
        if fired.contains(&int.line) {
            return;
        }
        fired.push(int.line);
        out.push(Finding {
            rule: "D005",
            file: path.to_string(),
            line: int.line,
            context: int.text.clone(),
            message: format!(
                "hardcoded experiment count {}; assert against ExperimentId::all().len() \
                 (or the artifact's experiment_count) so the expectation can never go stale",
                int.text
            ),
        });
    }
}
