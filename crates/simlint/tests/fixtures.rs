//! Fixture-based positive/negative coverage for every determinism rule.
//!
//! Each fixture is an in-memory source handed to the rule engine under a
//! chosen workspace-relative path (the path decides allowlists and rule
//! scope), so the battery needs no filesystem and stays byte-stable.

use simlint::rules::{lint_rust_source, lint_text_source, Finding, Suppressed};

/// Runs the Rust engine over one fixture.
fn lint(path: &str, src: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    lint_rust_source(path, src, &mut findings, &mut suppressed);
    (findings, suppressed)
}

/// Runs the shell/YAML engine over one fixture.
fn lint_text(path: &str, src: &str) -> (Vec<Finding>, Vec<Suppressed>) {
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    lint_text_source(path, src, &mut findings, &mut suppressed);
    (findings, suppressed)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_fires_on_wall_clock_reads_in_simulation_code() {
    let src = r#"
        fn measure() {
            let start = Instant::now();
            let epoch = SystemTime::now();
        }
    "#;
    let (findings, _) = lint("crates/workloads/src/loadgen.rs", src);
    assert_eq!(rules_of(&findings), vec!["D001", "D001"]);
    assert_eq!(findings[0].line, 3);
    assert_eq!(findings[0].context, "Instant::now");
}

#[test]
fn d001_does_not_fire_in_the_timing_allowlist_or_on_virtual_time() {
    let wall = "fn t() { let s = Instant::now(); }";
    assert!(lint("crates/bench/src/bin/cluster.rs", wall).0.is_empty());
    assert!(lint("crates/harness/src/executor.rs", wall).0.is_empty());
    // Virtual time helpers named `now` on the simulation clock are fine.
    let sim = "fn t(sim: &Simulation) { let now = sim.now(); let i = Nanos::from_millis(4); }";
    assert!(lint("crates/simcore/src/events.rs", sim).0.is_empty());
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_fires_on_hash_container_iteration() {
    let src = r#"
        use std::collections::{HashMap, HashSet};
        struct S { map: HashMap<Vec<u8>, u64>, tags: HashSet<String> }
        impl S {
            fn sum(&self) -> u64 { self.map.values().sum() }
            fn walk(&self) { for t in &self.tags { drop(t); } }
            fn local() {
                let mut seen = HashMap::new();
                seen.insert(1, 2);
                for (k, v) in seen.iter() { drop((k, v)); }
            }
        }
    "#;
    let (findings, _) = lint("crates/kvstore/src/shard.rs", src);
    assert_eq!(rules_of(&findings), vec!["D002", "D002", "D002"]);
    assert!(findings[0].context.contains("map.values"));
    assert!(findings[1].context.contains("tags"));
    assert!(findings[2].context.contains("seen.iter"));
}

#[test]
fn d002_ignores_ordered_containers_and_point_lookups() {
    let src = r#"
        use std::collections::{BTreeMap, HashMap};
        struct S { sorted: BTreeMap<u64, u64>, map: HashMap<u64, u64>, lru: Vec<u64> }
        impl S {
            fn ok(&mut self) -> u64 {
                let a: u64 = self.sorted.values().sum();
                let b = self.map.get(&1).copied().unwrap_or(0);
                self.map.insert(2, 3);
                self.map.remove(&4);
                let c = self.lru.iter().sum::<u64>();
                a + b + c
            }
        }
    "#;
    let (findings, _) = lint("crates/kvstore/src/shard.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

#[test]
fn d002_field_taint_stops_at_the_next_struct_field() {
    // `lru` sits right before a HashMap field: the type window must not
    // leak across the comma and taint the VecDeque.
    let src = r#"
        use std::collections::HashMap;
        struct S { lru: VecDeque<Vec<u8>>, counts: HashMap<Vec<u8>, u32> }
        impl S {
            fn scan(&self) -> bool { self.lru.iter().any(|k| k.is_empty()) }
        }
    "#;
    let (findings, _) = lint("crates/kvstore/src/shard.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_fires_on_ambient_randomness() {
    let src = r#"
        fn entropy() {
            let mut rng = thread_rng();
            let r = rand::random::<u64>();
            let o = OsRng.next_u64();
        }
    "#;
    let (findings, _) = lint("crates/workloads/src/ycsb.rs", src);
    assert_eq!(rules_of(&findings), vec!["D003", "D003", "D003"]);
}

#[test]
fn d003_does_not_fire_on_derived_streams() {
    let src = r#"
        fn derived(cfg: &RunConfig) {
            let mut rng = simcore::rng::derive(cfg.seed, "fig11_iperf", "native", 0);
            let mut child = rng.split("arrivals");
            let x = child.next_u64();
        }
    "#;
    let (findings, _) = lint("crates/workloads/src/ycsb.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_fires_on_thread_spawns_outside_the_executor() {
    let src = r#"
        fn fan_out() {
            let h = std::thread::spawn(|| 1);
            std::thread::scope(|s| { s.spawn(|| 2); });
        }
    "#;
    let (findings, _) = lint("crates/workloads/src/cluster.rs", src);
    assert_eq!(rules_of(&findings), vec!["D004", "D004"]);
    assert_eq!(findings[0].context, "thread::spawn");
}

#[test]
fn d004_does_not_fire_in_the_executor_or_bench() {
    let src = "fn f() { std::thread::scope(|s| { s.spawn(|| 1); }); }";
    assert!(lint("crates/harness/src/executor.rs", src).0.is_empty());
    assert!(lint("crates/bench/src/bin/event_loop.rs", src).0.is_empty());
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_fires_on_hardcoded_experiment_counts_in_tests() {
    let src = r#"
        fn check(serial: &Report) {
            assert_eq!(serial.figures.len(), 23);
        }
    "#;
    let (findings, _) = lint("tests/event_loop.rs", src);
    assert_eq!(rules_of(&findings), vec!["D005"]);
    assert_eq!(findings[0].context, "23");

    let assert_style = "fn c(experiment_count: usize) { assert_eq!(experiment_count, 21); }";
    let (findings, _) = lint("tests/grid.rs", assert_style);
    assert_eq!(rules_of(&findings), vec!["D005"]);
}

#[test]
fn d005_does_not_fire_on_derived_counts_or_outside_tests() {
    let derived = r#"
        fn check(serial: &Report) {
            assert_eq!(serial.figures.len(), ExperimentId::all().len());
        }
    "#;
    assert!(lint("tests/event_loop.rs", derived).0.is_empty());
    // Small structural literals (platform counts, indices) are fine...
    let small = "fn c(fig: &Figure) { assert_eq!(fig.series.len(), 6); }";
    assert!(lint("tests/paper_shape.rs", small).0.is_empty());
    // ...seeds are fine...
    let seed = "fn c() { let cfg = RunConfig::quick(2021); let f = figures::run(E, &cfg); }";
    assert!(lint("tests/paper_shape.rs", seed).0.is_empty());
    // ...and the same hardcode outside tests/CI is out of scope.
    let src = "fn c(serial: &Report) { assert_eq!(serial.figures.len(), 23); }";
    assert!(lint("crates/harness/src/grid.rs", src).0.is_empty());
}

#[test]
fn d005_fires_in_shell_and_yaml_ci_configuration() {
    let sh = "MIN_SLUGS=23\nif [ \"$count\" -lt \"$MIN_SLUGS\" ]; then exit 1; fi\n";
    let (findings, _) = lint_text("ci/check_bench.sh", sh);
    assert_eq!(rules_of(&findings), vec!["D005"]);
    assert_eq!(findings[0].line, 1);

    let yml =
        "jobs:\n  check:\n    steps:\n      - run: test \"$(grep -c slug out.json)\" -eq 23\n";
    let (findings, _) = lint_text(".github/workflows/ci.yml", yml);
    assert_eq!(rules_of(&findings), vec!["D005"]);
}

#[test]
fn d005_text_scan_ignores_comments_versions_and_derived_floors() {
    let sh = concat!(
        "# the grid has 23 experiments today (comment only)\n",
        "MIN_SLUGS=\"$(grep -cE '=> \"[a-z0-9_]+\",$' \"$ROOT/crates/harness/src/experiment.rs\")\"\n",
        "uses: actions/checkout@v4\n",
        "echo \"covers $count of $declared experiments\"\n",
    );
    let (findings, _) = lint_text("ci/check_bench.sh", sh);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
}

// ---------------------------------------------------- tricky lexing

#[test]
fn rule_tokens_inside_strings_comments_and_raw_strings_never_fire() {
    let src = r####"
        //! Docs may mention Instant::now, thread_rng and map.values().
        fn log() {
            // Instant::now() in a comment
            /* thread::spawn in a /* nested */ block */
            let a = "Instant::now() and SystemTime in a string";
            let b = r#"thread_rng() and rand::random in a raw string"#;
            let c = b"OsRng in a byte string";
            let d = "assert_eq!(figures.len(), 23) in a string";
            println!("{a}{b}{c:?}{d}");
        }
    "####;
    let (findings, suppressed) = lint("tests/fixture.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
    assert!(suppressed.is_empty());
}

// ---------------------------------------------------- suppressions

#[test]
fn a_reasoned_suppression_silences_the_next_line_and_is_recorded() {
    let src = r#"
        fn fan_out() {
            // simlint::allow(D004, reason = "bounded concurrency smoke test")
            let h = std::thread::spawn(|| 1);
        }
    "#;
    let (findings, suppressed) = lint("crates/kvstore/src/store.rs", src);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].finding.rule, "D004");
    assert_eq!(suppressed[0].reason, "bounded concurrency smoke test");
}

#[test]
fn suppression_requires_a_reason() {
    // No reason at all, and an empty reason: both are D000 and the
    // original finding still fires.
    for bad in [
        "// simlint::allow(D004)",
        "// simlint::allow(D004, reason = \"\")",
        "// simlint::allow(D004, reason = \"   \")",
    ] {
        let src = format!("fn f() {{\n{bad}\nlet h = std::thread::spawn(|| 1);\n}}\n");
        let (findings, suppressed) = lint("crates/kvstore/src/store.rs", &src);
        assert_eq!(
            rules_of(&findings),
            vec!["D000", "D004"],
            "directive {bad:?} must not suppress"
        );
        assert!(suppressed.is_empty());
    }
}

#[test]
fn suppression_is_per_rule_and_per_site() {
    // The wrong rule id does not silence, and the directive only covers
    // its own line plus the next one.
    let wrong_rule = r#"
        fn f() {
            // simlint::allow(D001, reason = "mismatched rule id")
            let h = std::thread::spawn(|| 1);
        }
    "#;
    let (findings, _) = lint("crates/kvstore/src/store.rs", wrong_rule);
    assert_eq!(rules_of(&findings), vec!["D004"]);

    let too_far = r#"
        fn f() {
            // simlint::allow(D004, reason = "two lines above the site")
            let x = 1;
            let h = std::thread::spawn(move || x);
        }
    "#;
    let (findings, _) = lint("crates/kvstore/src/store.rs", too_far);
    assert_eq!(rules_of(&findings), vec!["D004"]);
}

#[test]
fn unknown_rule_ids_in_directives_are_rejected() {
    let src = "// simlint::allow(D099, reason = \"no such rule\")\nfn f() {}\n";
    let (findings, _) = lint("crates/simcore/src/time.rs", src);
    assert_eq!(rules_of(&findings), vec!["D000"]);
}

#[test]
fn shell_suppressions_work_with_hash_comments() {
    let sh = concat!(
        "# simlint::allow(D005, reason = \"floor only guards under-declaring artifacts\")\n",
        "MIN_SLUGS=23\n",
    );
    let (findings, suppressed) = lint_text("ci/check_bench.sh", sh);
    assert!(findings.is_empty(), "unexpected: {findings:?}");
    assert_eq!(suppressed.len(), 1);
    assert_eq!(suppressed[0].finding.rule, "D005");
}
