//! The lint must hold on the workspace that ships it: scan the live tree
//! and require zero unsuppressed findings. This is the same invariant the
//! `lint-determinism` CI job gates on, kept runnable offline via
//! `cargo test -p simlint`.

use std::path::PathBuf;

use simlint::Workspace;

fn workspace_root() -> PathBuf {
    // crates/simlint -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("simlint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn live_workspace_has_no_unsuppressed_findings() {
    let root = workspace_root();
    assert!(
        root.join("Cargo.toml").is_file(),
        "derived workspace root {} has no Cargo.toml",
        root.display()
    );
    let report = Workspace::new(&root).scan().expect("scan workspace");
    assert!(
        report.files_scanned > 50,
        "scan saw only {} files — wrong root?",
        report.files_scanned
    );
    assert!(
        report.clean(),
        "determinism findings in the live tree:\n{}",
        simlint::report::to_text(&report)
    );
}

#[test]
fn every_live_suppression_carries_a_reason() {
    let report = Workspace::new(workspace_root())
        .scan()
        .expect("scan workspace");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "suppression without a reason at {}:{}",
            s.finding.file,
            s.finding.line
        );
    }
}
