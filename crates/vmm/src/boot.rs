//! Boot protocols and boot timelines.
//!
//! The start-up experiments measure end-to-end process time (creation to
//! termination). A hypervisor boot decomposes into: VMM process setup
//! (including KVM setup and device-model instantiation), firmware,
//! loading the guest kernel, the guest kernel's own boot (strongly
//! dependent on the machine model it probes), the init system, and
//! process termination. Firecracker additionally skips firmware entirely
//! by loading an uncompressed kernel at the 64-bit entry point.

use serde::{Deserialize, Serialize};
use simcore::{Nanos, SimRng};

use oskern::init::InitSystem;

/// The firmware / kernel-entry protocol a machine model uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BootProtocol {
    /// Full legacy BIOS (SeaBIOS).
    LegacyBios,
    /// The minimal qboot firmware.
    Qboot,
    /// Direct load of an uncompressed kernel at the 64-bit entry point
    /// (the Linux 64-bit boot protocol, used by Firecracker and Cloud
    /// Hypervisor).
    DirectKernel64,
}

impl BootProtocol {
    /// Firmware execution time before the kernel gets control.
    pub fn firmware_time(self) -> Nanos {
        match self {
            BootProtocol::LegacyBios => Nanos::from_millis(22),
            BootProtocol::Qboot => Nanos::from_millis(6),
            BootProtocol::DirectKernel64 => Nanos::ZERO,
        }
    }

    /// Kernel image load / decompression time. Direct 64-bit boot loads an
    /// uncompressed image and skips self-decompression.
    pub fn kernel_load_time(self) -> Nanos {
        match self {
            BootProtocol::LegacyBios | BootProtocol::Qboot => Nanos::from_millis(20),
            BootProtocol::DirectKernel64 => Nanos::from_millis(11),
        }
    }
}

/// The kind of guest image being booted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GuestKind {
    /// A general-purpose Linux kernel plus minimal root filesystem.
    Linux,
    /// The stripped-down guest kernel Kata ships (kconfig-minimized).
    KataMiniKernel,
    /// An OSv unikernel image.
    Osv,
}

/// The boot timeline of one hypervisor + guest combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BootTimeline {
    /// VMM process setup time (argument parsing, API configuration, KVM
    /// setup, device model instantiation).
    pub vmm_setup: Nanos,
    /// Firmware time.
    pub firmware: Nanos,
    /// Kernel load/decompression time.
    pub kernel_load: Nanos,
    /// Guest kernel boot time (hardware probing against this machine
    /// model, driver init) — excludes the init system.
    pub guest_kernel_boot: Nanos,
    /// The init system started inside the guest.
    pub init: InitSystem,
    /// Process termination overhead (the paper measured 1–2 %).
    pub termination: Nanos,
    /// Relative run-to-run noise applied to the total.
    pub jitter: f64,
}

impl BootTimeline {
    /// Mean end-to-end boot time (process creation to termination).
    pub fn mean_total(&self) -> Nanos {
        self.vmm_setup
            + self.firmware
            + self.kernel_load
            + self.guest_kernel_boot
            + self.init.mean_total()
            + self.termination
    }

    /// Mean boot time as measured by the alternative "grep stdout" method
    /// the paper cross-checks against: identical except that process
    /// termination is not included.
    pub fn mean_stdout_method(&self) -> Nanos {
        self.mean_total() - self.termination
    }

    /// Samples one end-to-end measurement.
    pub fn sample_total(&self, rng: &mut SimRng) -> Nanos {
        let mean = self.mean_total().as_secs_f64();
        Nanos::from_secs_f64(rng.normal_pos(mean, mean * self.jitter))
    }

    /// Samples one stdout-method measurement.
    pub fn sample_stdout_method(&self, rng: &mut SimRng) -> Nanos {
        let mean = self.mean_stdout_method().as_secs_f64();
        Nanos::from_secs_f64(rng.normal_pos(mean, mean * self.jitter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline() -> BootTimeline {
        BootTimeline {
            vmm_setup: Nanos::from_millis(75),
            firmware: BootProtocol::LegacyBios.firmware_time(),
            kernel_load: BootProtocol::LegacyBios.kernel_load_time(),
            guest_kernel_boot: Nanos::from_millis(110),
            init: InitSystem::PatchedImmediateExit,
            termination: Nanos::from_millis(4),
            jitter: 0.05,
        }
    }

    #[test]
    fn direct_boot_skips_firmware_and_decompression() {
        assert_eq!(BootProtocol::DirectKernel64.firmware_time(), Nanos::ZERO);
        assert!(
            BootProtocol::DirectKernel64.kernel_load_time()
                < BootProtocol::LegacyBios.kernel_load_time()
        );
        assert!(BootProtocol::Qboot.firmware_time() < BootProtocol::LegacyBios.firmware_time());
    }

    #[test]
    fn total_is_the_sum_of_phases() {
        let t = timeline();
        let expected = 75.0 + 22.0 + 20.0 + 110.0 + 1.0 + 4.0;
        assert!((t.mean_total().as_millis_f64() - expected).abs() < 0.5);
    }

    #[test]
    fn stdout_method_differs_only_by_termination() {
        let t = timeline();
        let diff = t.mean_total() - t.mean_stdout_method();
        assert_eq!(diff, t.termination);
        // The paper reports the two methods within 1–2 % of each other.
        let rel = diff.as_secs_f64() / t.mean_total().as_secs_f64();
        assert!(rel < 0.03, "termination fraction {rel}");
    }

    #[test]
    fn sampling_is_reproducible() {
        let t = timeline();
        let a = t.sample_total(&mut SimRng::seed_from(3));
        let b = t.sample_total(&mut SimRng::seed_from(3));
        assert_eq!(a, b);
        assert!(a > Nanos::ZERO);
    }
}
