//! Device model inventories.
//!
//! Section 2.1 of the paper contrasts the VMMs by the size of their device
//! models: QEMU emulates 40+ devices, Cloud Hypervisor supports 16,
//! Firecracker only 7 (virtio-net, virtio-blk, a legacy i8042
//! serial/PS-2 controller, and a pseudo clock). The device count matters
//! for attack surface and for guest kernel probe time at boot.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

/// Broad classes of emulated devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Paravirtual virtio devices (net, blk, rng, vsock, balloon, ...).
    Virtio,
    /// Legacy platform devices (i8042, PIT, RTC, serial, PS/2).
    Legacy,
    /// PCI host bridge and PCI-attached emulated hardware (VGA, USB, ...).
    Pci,
    /// ACPI tables / power management.
    Acpi,
}

/// A named emulated device.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct EmulatedDevice {
    /// Device name as the VMM documentation calls it.
    pub name: &'static str,
    /// Device class.
    pub class: DeviceClass,
}

/// The device model of a VMM.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct DeviceModel {
    devices: Vec<EmulatedDevice>,
}

macro_rules! devices {
    ($($class:ident => [$($name:literal),* $(,)?]),* $(,)?) => {
        vec![
            $($(EmulatedDevice { name: $name, class: DeviceClass::$class },)*)*
        ]
    };
}

impl DeviceModel {
    /// QEMU's (abridged) default device model: 40+ devices.
    pub fn qemu_full() -> Self {
        DeviceModel {
            devices: devices![
                Virtio => [
                    "virtio-net", "virtio-blk", "virtio-scsi", "virtio-rng",
                    "virtio-balloon", "virtio-serial", "virtio-gpu", "virtio-vsock",
                    "virtio-9p", "virtio-fs", "virtio-input", "virtio-crypto",
                ],
                Legacy => [
                    "i8042", "i8254-pit", "i8259-pic", "mc146818-rtc", "16550a-uart",
                    "ps2-keyboard", "ps2-mouse", "fdc-floppy", "parallel-port",
                    "pc-speaker", "cmos", "hpet",
                ],
                Pci => [
                    "piix3-ide", "piix4-pm", "vga-std", "e1000", "rtl8139",
                    "ahci", "ehci-usb", "xhci-usb", "uhci-usb", "sb16-audio",
                    "ac97-audio", "intel-hda", "nvme", "lsi53c895a", "pcnet",
                    "sdhci",
                ],
                Acpi => ["acpi-pm", "acpi-ged", "smbios", "fw-cfg"],
            ],
        }
    }

    /// QEMU with the `microvm` machine type: virtio-mmio devices plus a
    /// minimal legacy set, no PCI.
    pub fn qemu_microvm() -> Self {
        DeviceModel {
            devices: devices![
                Virtio => ["virtio-net", "virtio-blk", "virtio-rng", "virtio-serial"],
                Legacy => ["i8042", "mc146818-rtc", "16550a-uart", "i8254-pit"],
                Acpi => ["acpi-ged", "fw-cfg"],
            ],
        }
    }

    /// Firecracker's 7-device model.
    pub fn firecracker() -> Self {
        DeviceModel {
            devices: devices![
                Virtio => ["virtio-net", "virtio-blk", "virtio-vsock"],
                Legacy => ["i8042", "serial-console", "ps2-keyboard"],
                Acpi => ["boot-timer"],
            ],
        }
    }

    /// Cloud Hypervisor's 16-device model.
    pub fn cloud_hypervisor() -> Self {
        DeviceModel {
            devices: devices![
                Virtio => [
                    "virtio-net", "virtio-blk", "virtio-rng", "virtio-vsock",
                    "virtio-fs", "virtio-pmem", "virtio-console", "virtio-iommu",
                    "virtio-balloon", "virtio-mem", "virtio-watchdog", "vhost-user-net",
                    "vhost-user-blk",
                ],
                Legacy => ["serial-console", "i8042"],
                Acpi => ["acpi-ged"],
            ],
        }
    }

    /// Number of emulated devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Number of devices in a given class.
    pub fn count_of(&self, class: DeviceClass) -> usize {
        self.devices.iter().filter(|d| d.class == class).count()
    }

    /// The devices themselves.
    pub fn devices(&self) -> &[EmulatedDevice] {
        &self.devices
    }

    /// VMM initialization time attributable to instantiating the device
    /// model (per device, before the guest even starts).
    pub fn instantiation_cost(&self) -> Nanos {
        Nanos::from_micros(600) * self.device_count() as u64
    }

    /// Guest kernel probe time attributable to the devices exposed
    /// (PCI enumeration and legacy probing are the slow parts).
    pub fn guest_probe_cost(&self) -> Nanos {
        let pci = self.count_of(DeviceClass::Pci) as u64;
        let legacy = self.count_of(DeviceClass::Legacy) as u64;
        let virtio = self.count_of(DeviceClass::Virtio) as u64;
        Nanos::from_millis(2) * pci
            + Nanos::from_millis(1) * legacy
            + Nanos::from_micros(400) * virtio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_match_the_paper() {
        assert!(DeviceModel::qemu_full().device_count() >= 40);
        assert_eq!(DeviceModel::firecracker().device_count(), 7);
        assert_eq!(DeviceModel::cloud_hypervisor().device_count(), 16);
        assert!(
            DeviceModel::qemu_microvm().device_count() < DeviceModel::qemu_full().device_count()
        );
    }

    #[test]
    fn firecracker_has_no_pci_devices() {
        assert_eq!(DeviceModel::firecracker().count_of(DeviceClass::Pci), 0);
        assert!(DeviceModel::qemu_full().count_of(DeviceClass::Pci) > 10);
    }

    #[test]
    fn bigger_device_models_cost_more_to_instantiate_and_probe() {
        let qemu = DeviceModel::qemu_full();
        let fc = DeviceModel::firecracker();
        assert!(qemu.instantiation_cost() > fc.instantiation_cost());
        assert!(qemu.guest_probe_cost() > fc.guest_probe_cost());
    }

    #[test]
    fn no_duplicate_device_names_within_a_model() {
        for model in [
            DeviceModel::qemu_full(),
            DeviceModel::qemu_microvm(),
            DeviceModel::firecracker(),
            DeviceModel::cloud_hypervisor(),
        ] {
            let names: std::collections::BTreeSet<_> =
                model.devices().iter().map(|d| d.name).collect();
            assert_eq!(names.len(), model.device_count());
        }
    }
}
