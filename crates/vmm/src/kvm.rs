//! The `/dev/kvm` interface model.
//!
//! QEMU, Firecracker, Cloud Hypervisor and gVisor's KVM platform all drive
//! virtualization through the same kernel interface: open `/dev/kvm`,
//! create a VM, register guest memory regions, create vCPUs, and loop on
//! `ioctl(KVM_RUN)`. The costs here feed the boot timeline; the traced
//! functions feed the HAP metric.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use oskern::ftrace::FtraceSession;

/// Model of one VMM's use of the KVM API.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KvmInterface {
    /// Number of vCPUs created.
    pub vcpus: u32,
    /// Number of guest memory regions registered (VMMs with more device
    /// memory, firmware ROMs, etc. register more slots).
    pub memory_regions: u32,
}

impl KvmInterface {
    /// Creates an interface model.
    pub fn new(vcpus: u32, memory_regions: u32) -> Self {
        KvmInterface {
            vcpus,
            memory_regions,
        }
    }

    /// Time to create the VM, register memory and create all vCPUs.
    pub fn setup_cost(&self) -> Nanos {
        let vm_create = Nanos::from_micros(350);
        let per_region = Nanos::from_micros(90);
        let per_vcpu = Nanos::from_micros(450);
        vm_create + per_region * u64::from(self.memory_regions) + per_vcpu * u64::from(self.vcpus)
    }

    /// Records the host kernel functions touched during setup.
    pub fn trace_setup(&self, session: &mut FtraceSession) {
        session.invoke_all(
            &["kvm_dev_ioctl", "kvm_vm_ioctl", "kvm_arch_vm_ioctl"],
            1 + u64::from(self.memory_regions),
        );
        session.invoke_all(
            &[
                "kvm_vm_ioctl_set_memory_region",
                "kvm_set_memory_region",
                "__kvm_set_memory_region",
            ],
            u64::from(self.memory_regions),
        );
        session.invoke_all(
            &["kvm_vm_ioctl_create_vcpu", "kvm_vcpu_ioctl"],
            u64::from(self.vcpus),
        );
    }

    /// Records the steady-state run-loop functions for a workload that
    /// causes `exits` VM exits.
    pub fn trace_run_loop(&self, session: &mut FtraceSession, exits: u64) {
        session.invoke_all(
            &[
                "kvm_vcpu_ioctl",
                "kvm_arch_vcpu_ioctl_run",
                "vcpu_run",
                "vcpu_enter_guest",
                "vmx_vcpu_run",
                "vmx_handle_exit",
            ],
            exits,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_cost_scales_with_vcpus_and_regions() {
        let small = KvmInterface::new(1, 4).setup_cost();
        let big = KvmInterface::new(16, 12).setup_cost();
        assert!(big > small * 3);
    }

    #[test]
    fn setup_trace_includes_memory_region_ioctls() {
        let mut session = FtraceSession::start();
        KvmInterface::new(2, 6).trace_setup(&mut session);
        let trace = session.finish();
        assert_eq!(trace.count("kvm_vm_ioctl_set_memory_region"), 6);
        assert_eq!(trace.count("kvm_vm_ioctl_create_vcpu"), 2);
    }

    #[test]
    fn run_loop_trace_scales_with_exits() {
        let mut session = FtraceSession::start();
        KvmInterface::new(1, 1).trace_run_loop(&mut session, 1000);
        assert_eq!(session.trace().count("vcpu_enter_guest"), 1000);
    }
}
