//! # vmm
//!
//! Hypervisor substrate: everything the hypervisor-based platforms (QEMU,
//! Firecracker, Cloud Hypervisor) and the hybrid platforms (Kata, gVisor's
//! KVM mode, OSv images) are composed from.
//!
//! * [`vcpu`] — VM-exit reasons, their costs, and the host kernel (KVM)
//!   functions each exit exercises.
//! * [`kvm`] — the `/dev/kvm` interface model: VM/vCPU creation, memory
//!   region registration, and the `ioctl(KVM_RUN)` loop.
//! * [`devices`] — device model inventories; the paper contrasts QEMU's
//!   40+ devices with Cloud Hypervisor's 16 and Firecracker's 7.
//! * [`machine`] — the concrete machine models benchmarked in the paper
//!   (QEMU, QEMU + qboot, QEMU µVM, Firecracker, Cloud Hypervisor).
//! * [`boot`] — boot-protocol phases (BIOS vs qboot vs direct 64-bit
//!   kernel load) and per-guest-kind kernel boot times, which drive the
//!   hypervisor and OSv start-up figures (Figs. 14 and 15).
//! * [`vsock`] — the vsock + ttRPC control plane used by Kata containers.

// No unsafe anywhere in the simulation layers: the bit-identical replay
// guarantee rests on defined behaviour only (simlint + workspace lints
// audit the rest).
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boot;
pub mod devices;
pub mod kvm;
pub mod machine;
pub mod vcpu;
pub mod vsock;

pub use boot::{BootProtocol, BootTimeline, GuestKind};
pub use devices::{DeviceClass, DeviceModel};
pub use kvm::KvmInterface;
pub use machine::MachineModel;
pub use vcpu::VmExit;
pub use vsock::{TtrpcChannel, VsockTransport};
