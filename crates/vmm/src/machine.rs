//! The concrete machine models benchmarked in the paper.
//!
//! Five hypervisor configurations appear in Figs. 14/15: plain QEMU, QEMU
//! with the minimal qboot firmware, QEMU with the Firecracker-inspired
//! `microvm` machine type, Firecracker itself, and Cloud Hypervisor. Each
//! machine model bundles a device inventory, a boot protocol, a virtio
//! servicing style and the per-guest-kind kernel boot behaviour that makes
//! the Fig. 14 and Fig. 15 orderings come out differently.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use memsim::paging::PagingMode;
use netsim::component::NetComponent;

use crate::boot::{BootProtocol, BootTimeline, GuestKind};
use crate::devices::DeviceModel;
use crate::kvm::KvmInterface;

/// A hypervisor machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MachineModel {
    /// Plain QEMU/KVM with the default `pc` machine and SeaBIOS.
    QemuFull,
    /// QEMU with the minimal qboot firmware.
    QemuQboot,
    /// QEMU with the `microvm` machine type (Firecracker-inspired µVM).
    QemuMicrovm,
    /// Firecracker.
    Firecracker,
    /// Cloud Hypervisor.
    CloudHypervisor,
}

impl MachineModel {
    /// All machine models in the paper's hypervisor comparison.
    pub fn all() -> &'static [MachineModel] {
        &[
            MachineModel::QemuFull,
            MachineModel::QemuQboot,
            MachineModel::QemuMicrovm,
            MachineModel::Firecracker,
            MachineModel::CloudHypervisor,
        ]
    }

    /// The machine's device inventory.
    pub fn device_model(self) -> DeviceModel {
        match self {
            MachineModel::QemuFull | MachineModel::QemuQboot => DeviceModel::qemu_full(),
            MachineModel::QemuMicrovm => DeviceModel::qemu_microvm(),
            MachineModel::Firecracker => DeviceModel::firecracker(),
            MachineModel::CloudHypervisor => DeviceModel::cloud_hypervisor(),
        }
    }

    /// The boot protocol used.
    pub fn boot_protocol(self) -> BootProtocol {
        match self {
            MachineModel::QemuFull => BootProtocol::LegacyBios,
            MachineModel::QemuQboot => BootProtocol::Qboot,
            MachineModel::QemuMicrovm => BootProtocol::Qboot,
            MachineModel::Firecracker | MachineModel::CloudHypervisor => {
                BootProtocol::DirectKernel64
            }
        }
    }

    /// The guest-memory translation mode: all machines use hardware nested
    /// paging; the Rust VMMs add the `vm-memory` software layer the paper
    /// blames for their elevated access latencies (Finding 4).
    pub fn paging_mode(self) -> PagingMode {
        match self {
            MachineModel::QemuFull | MachineModel::QemuQboot | MachineModel::QemuMicrovm => {
                PagingMode::nested_hardware()
            }
            MachineModel::Firecracker => {
                PagingMode::nested_with_vmm_overhead(Nanos::from_nanos(95))
            }
            MachineModel::CloudHypervisor => {
                PagingMode::nested_with_vmm_overhead(Nanos::from_nanos(55))
            }
        }
    }

    /// Sequential memory-bandwidth efficiency of the guest relative to the
    /// host (Finding 4: QEMU loses throughput but not latency; Firecracker
    /// loses both; Cloud Hypervisor loses latency but little throughput).
    pub fn memory_bandwidth_efficiency(self) -> f64 {
        match self {
            MachineModel::QemuFull | MachineModel::QemuQboot | MachineModel::QemuMicrovm => 0.86,
            MachineModel::Firecracker => 0.80,
            MachineModel::CloudHypervisor => 0.90,
        }
    }

    /// The guest-side network components this machine contributes (the
    /// platform composition appends the guest stack component).
    pub fn network_components(self) -> Vec<NetComponent> {
        match self {
            MachineModel::QemuFull | MachineModel::QemuQboot | MachineModel::QemuMicrovm => {
                vec![NetComponent::Tap, NetComponent::VirtioNetVhost]
            }
            MachineModel::Firecracker => vec![
                NetComponent::Tap,
                NetComponent::VirtioNetVmm { efficiency: 0.90 },
            ],
            MachineModel::CloudHypervisor => vec![
                NetComponent::Tap,
                NetComponent::VirtioNetVmm { efficiency: 0.74 },
            ],
        }
    }

    /// I/O throughput efficiency of the machine's virtio-blk
    /// implementation relative to QEMU's (Finding 9: Cloud Hypervisor is
    /// the I/O outlier among hypervisors; Firecracker cannot attach extra
    /// drives at all and is excluded from the fio figures).
    pub fn block_efficiency(self) -> f64 {
        match self {
            MachineModel::QemuFull | MachineModel::QemuQboot | MachineModel::QemuMicrovm => 1.0,
            MachineModel::Firecracker => 0.85,
            MachineModel::CloudHypervisor => 0.55,
        }
    }

    /// Whether the paper could attach a separate benchmark drive
    /// (Firecracker does not support it; excluded from Fig. 9/10).
    pub fn supports_extra_drives(self) -> bool {
        !matches!(self, MachineModel::Firecracker)
    }

    /// The KVM usage profile of this VMM.
    pub fn kvm_interface(self, vcpus: u32) -> KvmInterface {
        let regions = match self {
            MachineModel::QemuFull | MachineModel::QemuQboot => 12,
            MachineModel::QemuMicrovm => 8,
            MachineModel::Firecracker => 4,
            MachineModel::CloudHypervisor => 6,
        };
        KvmInterface::new(vcpus, regions)
    }

    /// VMM process setup time: binary start, configuration (Firecracker's
    /// REST API round trips are part of its end-to-end cost), KVM setup and
    /// device model instantiation.
    pub fn vmm_setup_time(self) -> Nanos {
        let base = match self {
            MachineModel::QemuFull | MachineModel::QemuQboot => Nanos::from_millis(48),
            MachineModel::QemuMicrovm => Nanos::from_millis(44),
            MachineModel::Firecracker => Nanos::from_millis(82),
            MachineModel::CloudHypervisor => Nanos::from_millis(20),
        };
        base + self.device_model().instantiation_cost() + self.kvm_interface(1).setup_cost()
    }

    /// Guest kernel boot time on this machine for the given guest kind.
    ///
    /// The same Linux kernel boots fastest on machines whose device layout
    /// it probes efficiently (Cloud Hypervisor, full QEMU) and slowest on
    /// the µVM machine type (Finding 14), while OSv's tiny kernel skips the
    /// expensive probing entirely and benefits most from the direct 64-bit
    /// entry (Finding 15).
    pub fn guest_kernel_boot_time(self, guest: GuestKind) -> Nanos {
        match guest {
            GuestKind::Linux => match self {
                MachineModel::QemuFull => Nanos::from_millis(112),
                MachineModel::QemuQboot => Nanos::from_millis(118),
                MachineModel::QemuMicrovm => Nanos::from_millis(330),
                MachineModel::Firecracker => Nanos::from_millis(225),
                MachineModel::CloudHypervisor => Nanos::from_millis(68),
            },
            GuestKind::KataMiniKernel => match self {
                MachineModel::QemuFull | MachineModel::QemuQboot => Nanos::from_millis(65),
                MachineModel::QemuMicrovm => Nanos::from_millis(120),
                MachineModel::Firecracker => Nanos::from_millis(95),
                MachineModel::CloudHypervisor => Nanos::from_millis(45),
            },
            GuestKind::Osv => match self {
                MachineModel::QemuFull => Nanos::from_millis(78),
                MachineModel::QemuQboot => Nanos::from_millis(60),
                MachineModel::QemuMicrovm => Nanos::from_millis(48),
                MachineModel::Firecracker => Nanos::from_millis(22),
                MachineModel::CloudHypervisor => Nanos::from_millis(30),
            },
        }
    }

    /// Builds the boot timeline for this machine booting the given guest
    /// with the given init system.
    pub fn boot_timeline(self, guest: GuestKind, init: oskern::init::InitSystem) -> BootTimeline {
        let protocol = self.boot_protocol();
        BootTimeline {
            vmm_setup: self.vmm_setup_time(),
            firmware: protocol.firmware_time(),
            kernel_load: protocol.kernel_load_time(),
            guest_kernel_boot: self.guest_kernel_boot_time(guest),
            init,
            termination: Nanos::from_millis(4),
            jitter: 0.06,
        }
    }

    /// Display name used in reports (matches the paper's labels).
    pub fn label(self) -> &'static str {
        match self {
            MachineModel::QemuFull => "qemu",
            MachineModel::QemuQboot => "qemu-qboot",
            MachineModel::QemuMicrovm => "qemu-microvm",
            MachineModel::Firecracker => "firecracker",
            MachineModel::CloudHypervisor => "cloud-hypervisor",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskern::init::InitSystem;

    fn linux_boot_ms(m: MachineModel) -> f64 {
        m.boot_timeline(GuestKind::Linux, InitSystem::PatchedImmediateExit)
            .mean_total()
            .as_millis_f64()
    }

    fn osv_boot_ms(m: MachineModel) -> f64 {
        m.boot_timeline(GuestKind::Osv, InitSystem::OsvRuntime)
            .mean_total()
            .as_millis_f64()
    }

    #[test]
    fn linux_boot_ordering_matches_figure_14() {
        let chv = linux_boot_ms(MachineModel::CloudHypervisor);
        let qemu = linux_boot_ms(MachineModel::QemuFull);
        let qboot = linux_boot_ms(MachineModel::QemuQboot);
        let fc = linux_boot_ms(MachineModel::Firecracker);
        let microvm = linux_boot_ms(MachineModel::QemuMicrovm);
        assert!(chv < qboot, "cloud-hypervisor {chv} vs qemu-qboot {qboot}");
        assert!(chv < qemu);
        assert!(qemu < fc, "qemu {qemu} vs firecracker {fc}");
        assert!(qboot < fc);
        assert!(fc < microvm, "firecracker {fc} vs microvm {microvm}");
        assert!(
            (300.0..420.0).contains(&fc),
            "firecracker lands around 350 ms, got {fc}"
        );
    }

    #[test]
    fn osv_boot_ordering_matches_figure_15() {
        let fc = osv_boot_ms(MachineModel::Firecracker);
        let microvm = osv_boot_ms(MachineModel::QemuMicrovm);
        let qemu = osv_boot_ms(MachineModel::QemuFull);
        assert!(fc < microvm, "firecracker {fc} vs microvm {microvm}");
        assert!(microvm < qemu, "microvm {microvm} vs qemu {qemu}");
    }

    #[test]
    fn osv_boots_faster_than_a_linux_guest_everywhere() {
        for m in MachineModel::all() {
            assert!(
                osv_boot_ms(*m) < linux_boot_ms(*m),
                "{} should boot OSv faster than Linux",
                m.label()
            );
        }
    }

    #[test]
    fn rust_vmms_pay_vm_memory_overhead() {
        assert!(MachineModel::Firecracker.paging_mode().is_virtualized());
        let tlb = memsim::tlb::TlbConfig::epyc2();
        let page = memsim::tlb::PageSize::Small4K;
        let qemu = MachineModel::QemuFull
            .paging_mode()
            .walk_latency(&tlb, page);
        let chv = MachineModel::CloudHypervisor
            .paging_mode()
            .walk_latency(&tlb, page);
        let fc = MachineModel::Firecracker
            .paging_mode()
            .walk_latency(&tlb, page);
        assert!(fc > chv, "firecracker {fc} vs cloud-hypervisor {chv}");
        assert!(chv > qemu, "cloud-hypervisor {chv} vs qemu {qemu}");
    }

    #[test]
    fn firecracker_cannot_attach_extra_drives() {
        assert!(!MachineModel::Firecracker.supports_extra_drives());
        assert!(MachineModel::QemuFull.supports_extra_drives());
        assert!(MachineModel::CloudHypervisor.supports_extra_drives());
    }

    #[test]
    fn cloud_hypervisor_is_the_io_outlier() {
        assert!(
            MachineModel::CloudHypervisor.block_efficiency()
                < MachineModel::QemuFull.block_efficiency()
        );
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<_> =
            MachineModel::all().iter().map(|m| m.label()).collect();
        assert_eq!(labels.len(), MachineModel::all().len());
    }
}
