//! VM exits and their costs.
//!
//! Hardware-assisted virtualization runs guest code natively until the
//! guest performs an operation the hypervisor must emulate; the resulting
//! VM exit (trap into KVM, possibly up into the VMM process) is the
//! fundamental unit of hypervisor overhead (Section 2.1 of the paper).

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use oskern::ftrace::FtraceSession;

/// Why a vCPU exited guest mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmExit {
    /// EPT violation handled entirely in the kernel (page fault on guest
    /// memory that is not yet mapped).
    EptViolation,
    /// Port or MMIO access emulated by the in-kernel device (e.g. APIC).
    InKernelEmulation,
    /// MMIO/PIO access that must be bounced up to the user-space VMM
    /// (virtio queue notification, serial port, ...).
    UserspaceIo,
    /// HLT — the guest is idle and the vCPU blocks in the host.
    Halt,
    /// MSR read/write emulation.
    MsrAccess,
    /// CPUID emulation.
    Cpuid,
    /// External interrupt delivered to the guest.
    ExternalInterrupt,
}

impl VmExit {
    /// All exit reasons.
    pub fn all() -> &'static [VmExit] {
        &[
            VmExit::EptViolation,
            VmExit::InKernelEmulation,
            VmExit::UserspaceIo,
            VmExit::Halt,
            VmExit::MsrAccess,
            VmExit::Cpuid,
            VmExit::ExternalInterrupt,
        ]
    }

    /// Round-trip cost of this exit (guest → host → guest).
    pub fn cost(self) -> Nanos {
        match self {
            VmExit::EptViolation => Nanos::from_micros(3),
            VmExit::InKernelEmulation => Nanos::from_nanos(1_500),
            VmExit::UserspaceIo => Nanos::from_micros(8),
            VmExit::Halt => Nanos::from_micros(4),
            VmExit::MsrAccess => Nanos::from_nanos(1_200),
            VmExit::Cpuid => Nanos::from_nanos(900),
            VmExit::ExternalInterrupt => Nanos::from_nanos(1_800),
        }
    }

    /// Host kernel (KVM) functions this exit exercises.
    pub fn host_functions(self) -> &'static [&'static str] {
        match self {
            VmExit::EptViolation => &[
                "vmx_handle_exit",
                "handle_ept_violation",
                "kvm_mmu_page_fault",
                "kvm_tdp_page_fault",
                "direct_page_fault",
                "kvm_mmu_load",
            ],
            VmExit::InKernelEmulation => &[
                "vmx_handle_exit",
                "kvm_emulate_io",
                "kvm_apic_send_ipi",
                "kvm_lapic_reg_write",
                "kvm_irq_delivery_to_apic",
            ],
            VmExit::UserspaceIo => &[
                "vmx_handle_exit",
                "handle_io",
                "kvm_fast_pio",
                "kvm_arch_vcpu_ioctl_run",
                "kvm_vcpu_ioctl",
                "ioeventfd_write",
                "eventfd_signal",
                "irqfd_wakeup",
            ],
            VmExit::Halt => &[
                "vmx_handle_exit",
                "kvm_vcpu_halt",
                "kvm_vcpu_block",
                "schedule",
                "kvm_vcpu_kick",
            ],
            VmExit::MsrAccess => &[
                "vmx_handle_exit",
                "kvm_set_msr_common",
                "kvm_get_msr_common",
            ],
            VmExit::Cpuid => &["vmx_handle_exit", "kvm_emulate_cpuid"],
            VmExit::ExternalInterrupt => &[
                "vmx_handle_exit",
                "common_interrupt",
                "kvm_irq_delivery_to_apic",
            ],
        }
    }

    /// Records `count` exits of this kind into the tracing session.
    pub fn trace(self, session: &mut FtraceSession, count: u64) {
        session.invoke_all(&["vcpu_enter_guest", "vmx_vcpu_run", "vcpu_run"], count);
        session.invoke_all(self.host_functions(), count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oskern::kernel_fn::KernelFunctionRegistry;

    #[test]
    fn userspace_exits_are_the_most_expensive_io_path() {
        assert!(VmExit::UserspaceIo.cost() > VmExit::InKernelEmulation.cost());
        assert!(VmExit::UserspaceIo.cost() > VmExit::EptViolation.cost());
    }

    #[test]
    fn all_functions_are_registered() {
        let reg = KernelFunctionRegistry::standard();
        for exit in VmExit::all() {
            for f in exit.host_functions() {
                assert!(reg.contains(f), "{exit:?} references unknown {f}");
            }
        }
    }

    #[test]
    fn trace_records_run_loop_and_exit_handler() {
        let mut session = FtraceSession::start();
        VmExit::EptViolation.trace(&mut session, 10);
        let trace = session.finish();
        assert_eq!(trace.count("vcpu_enter_guest"), 10);
        assert_eq!(trace.count("handle_ept_violation"), 10);
    }

    #[test]
    fn costs_are_positive() {
        for exit in VmExit::all() {
            assert!(exit.cost() > Nanos::ZERO);
        }
    }
}
