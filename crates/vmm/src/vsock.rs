//! vsock transport and ttRPC control plane.
//!
//! Kata containers expose the `kata-agent` running inside the guest to the
//! host `kata-runtime` through a ttRPC server (a gRPC re-implementation for
//! low-memory environments) carried over a vsock device. Every container
//! lifecycle operation (create, start, exec) is at least one ttRPC round
//! trip across the hypervisor boundary.

use serde::{Deserialize, Serialize};
use simcore::Nanos;

use oskern::ftrace::FtraceSession;

/// The vsock transport between host and guest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VsockTransport {
    /// One-way message latency across the vsock device.
    pub one_way_latency: Nanos,
}

impl VsockTransport {
    /// The default virtio-vsock transport.
    pub fn virtio_vsock() -> Self {
        VsockTransport {
            one_way_latency: Nanos::from_micros(35),
        }
    }

    /// Round-trip latency.
    pub fn round_trip(self) -> Nanos {
        self.one_way_latency * 2
    }

    /// Records the host kernel functions one message exchange touches.
    pub fn trace_exchange(self, session: &mut FtraceSession, messages: u64) {
        session.invoke_all(
            &[
                "vsock_stream_sendmsg",
                "vsock_stream_recvmsg",
                "virtio_transport_send_pkt",
                "eventfd_signal",
                "irqfd_wakeup",
            ],
            messages,
        );
    }
}

/// A ttRPC channel layered over vsock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TtrpcChannel {
    transport: VsockTransport,
    /// Serialization + dispatch cost per call on top of the transport.
    pub per_call_overhead: Nanos,
}

impl TtrpcChannel {
    /// The kata-agent control channel.
    pub fn kata_agent() -> Self {
        TtrpcChannel {
            transport: VsockTransport::virtio_vsock(),
            per_call_overhead: Nanos::from_micros(60),
        }
    }

    /// Latency of one ttRPC call (request + response).
    pub fn call_latency(self) -> Nanos {
        self.transport.round_trip() + self.per_call_overhead
    }

    /// Latency of a container-create exchange, which the Kata architecture
    /// performs as several sequential agent calls (create sandbox, create
    /// container, start container).
    pub fn container_create_latency(self) -> Nanos {
        self.call_latency() * 3
    }

    /// Records the functions touched by `calls` ttRPC calls.
    pub fn trace_calls(self, session: &mut FtraceSession, calls: u64) {
        self.transport.trace_exchange(session, calls * 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ttrpc_call_costs_more_than_raw_vsock_round_trip() {
        let chan = TtrpcChannel::kata_agent();
        assert!(chan.call_latency() > VsockTransport::virtio_vsock().round_trip());
    }

    #[test]
    fn container_create_takes_multiple_calls() {
        let chan = TtrpcChannel::kata_agent();
        assert_eq!(chan.container_create_latency(), chan.call_latency() * 3);
    }

    #[test]
    fn traces_report_vsock_functions() {
        let mut session = FtraceSession::start();
        TtrpcChannel::kata_agent().trace_calls(&mut session, 5);
        let trace = session.finish();
        assert_eq!(trace.count("vsock_stream_sendmsg"), 10);
        assert!(trace.touched("virtio_transport_send_pkt"));
    }
}
