//! The unified workload-benchmark surface.
//!
//! Every sweep-style workload in this crate — the open-loop load curves,
//! the multi-tenant co-location sweep, the middleware pipeline and the
//! sharded cluster — shares one execution shape: a configuration struct,
//! a natural trial count, and a deterministic
//! `run_trial(platform, stream) -> Vec<Point>` that replays the whole
//! sweep from one derived random stream. [`WorkloadBenchmark`] names that
//! shape, so the grid dispatches every workload through one generic call
//! instead of a per-workload match arm, and a new workload plugs into the
//! harness by implementing one trait.
//!
//! The contract every implementation must honour:
//!
//! * **Determinism** — `run_trial` is a pure function of
//!   `(config, platform, stream state)`: equal seeds yield equal points,
//!   which is what keeps grid figures byte-identical across executor
//!   worker counts.
//! * **One stream in, everything derived** — all randomness inside the
//!   trial is split from the passed stream; nothing reads ambient state.
//! * **Whole sweep per call** — the returned vector holds one summary per
//!   sweep point, in sweep order, so common-random-numbers coupling
//!   across the points stays inside one call.

use platforms::Platform;
use simcore::error::SimError;
use simcore::SimRng;

use crate::cluster::ClusterBenchmark;
use crate::loadgen::LoadgenBenchmark;
use crate::pipeline::PipelineBenchmark;
use crate::tenancy::TenancyBenchmark;

/// A sweep-style workload benchmark the grid can dispatch generically:
/// configuration in, one summary per sweep point out.
pub trait WorkloadBenchmark {
    /// The per-sweep-point summary the benchmark produces.
    type Point;

    /// The configuration's natural trial count — how many independent
    /// repetitions the grid schedules per (experiment, platform) cell.
    fn runs(&self) -> usize;

    /// Replays the whole sweep once from the given random stream and
    /// returns one [`WorkloadBenchmark::Point`] per sweep point, in
    /// sweep order. This is the unit the parallel executor shards on.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate
    /// configuration (empty slot pools, collapsed service times,
    /// non-finite costs or rates).
    fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<Self::Point>, SimError>;

    /// Runs one trial from a bare seed: seeds a fresh stream and
    /// delegates to [`WorkloadBenchmark::run_trial`]. The grid derives
    /// its cell streams statelessly instead, but standalone studies and
    /// tests get a one-call entry point.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadBenchmark::run_trial`]'s configuration
    /// errors.
    fn run_point(&self, seed: u64, platform: &Platform) -> Result<Vec<Self::Point>, SimError> {
        self.run_trial(platform, &mut SimRng::seed_from(seed))
    }
}

impl WorkloadBenchmark for LoadgenBenchmark {
    type Point = crate::loadgen::LoadPoint;

    fn runs(&self) -> usize {
        self.runs
    }

    fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<Self::Point>, SimError> {
        LoadgenBenchmark::run_trial(self, platform, rng)
    }
}

impl WorkloadBenchmark for TenancyBenchmark {
    type Point = crate::tenancy::ColocationPoint;

    fn runs(&self) -> usize {
        self.runs
    }

    fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<Self::Point>, SimError> {
        TenancyBenchmark::run_trial(self, platform, rng)
    }
}

impl WorkloadBenchmark for PipelineBenchmark {
    type Point = crate::pipeline::PipelinePoint;

    fn runs(&self) -> usize {
        self.runs
    }

    fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<Self::Point>, SimError> {
        PipelineBenchmark::run_trial(self, platform, rng)
    }
}

impl WorkloadBenchmark for ClusterBenchmark {
    type Point = crate::cluster::ClusterPoint;

    fn runs(&self) -> usize {
        self.runs
    }

    fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<Self::Point>, SimError> {
        ClusterBenchmark::run_trial(self, platform, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slots::LoadBackend;
    use platforms::PlatformId;

    /// The generic dispatch the grid relies on: any benchmark runs
    /// through the trait object-free surface with equal-seed equality.
    fn deterministic_through_the_trait<B: WorkloadBenchmark>(bench: &B)
    where
        B::Point: PartialEq + std::fmt::Debug,
    {
        let platform = PlatformId::Docker.build();
        let a = bench.run_point(2021, &platform).expect("valid config");
        let b = bench.run_point(2021, &platform).expect("valid config");
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        assert!(a == b, "equal seeds must replay equal sweeps");
        assert!(bench.runs() > 0);
    }

    #[test]
    fn every_ported_benchmark_is_deterministic_through_the_trait() {
        deterministic_through_the_trait(&LoadgenBenchmark {
            clients: 64,
            requests_per_point: 400,
            load_points: vec![0.5, 0.9],
            runs: 1,
            ..LoadgenBenchmark::quick(LoadBackend::Memcached)
        });
        deterministic_through_the_trait(&PipelineBenchmark {
            clients: 64,
            requests_per_point: 400,
            runs: 1,
            ..PipelineBenchmark::quick(LoadBackend::Memcached)
        });
        let mut tenancy = TenancyBenchmark::quick(LoadBackend::Memcached);
        tenancy.victim_requests = 400;
        tenancy.aggressor_fractions = vec![0.5];
        tenancy.runs = 1;
        deterministic_through_the_trait(&tenancy);
    }
}
