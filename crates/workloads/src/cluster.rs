//! Sharded cluster scale-out: a routing tier over N per-shard event
//! cores (beyond the paper).
//!
//! Every earlier subsystem models one node; the ROADMAP's north star is
//! the fleet. This module puts a **routing tier** in front of N backend
//! shards: arrivals draw Zipf-skewed keys (configurable skew `s` and
//! hot-key fraction, the YCSB-style hotspot mix), the router maps each
//! key to a shard, and every shard owns its **own** derated
//! [`SlotPool`] + [`CompletionTimer`] pair whose events live on its own
//! core lane of a [`simcore::ShardedCores`] group. Shards advance in
//! bounded lock-step windows with a deterministic cross-core
//! `(timestamp, seq)` merge, so the whole cluster simulation is a pure
//! function of its seed — the same byte-identical guarantee the
//! executor proves across worker counts, now *inside* one experiment:
//! results are identical whether the shards share 1, 2, 4 or 8 event
//! cores ([`ClusterBenchmark::shard_cores`]), which is what makes
//! per-lane parallel execution a pure optimization later.
//!
//! The sweep tells three stories, one per finding:
//!
//! * **Skew concentrates the tail** — at a fixed shard count, raising
//!   the Zipf skew piles the hot keys' traffic onto one shard, so the
//!   hottest shard's load share (and its p99) grows while the cluster
//!   median barely moves.
//! * **Scale-out flattens the median, not the hot tail** — growing the
//!   cluster 1→256 shards at utilization-constant load drains the
//!   average shard, but the hottest key still lands on exactly one
//!   shard whose load share does not shrink with N, so the hot shard's
//!   p99 keeps growing while p50 falls.
//! * **Rebalancing restores balance under churn** — a stale routing
//!   policy that funnels the (rotating, tenant-churned) hot set onto
//!   shard 0 builds a large steady imbalance; resharding to hashed
//!   placement mid-run restores the steady-phase imbalance to the
//!   hash-placement floor.
//!
//! Determinism contract: the arrival, service and key streams are split
//! once per trial and cloned per sweep point (common random numbers, the
//! `loadgen` discipline), the service stream is consumed in the merged
//! event order (which is core-count invariant), and each arrival's key
//! costs exactly two draws whatever the outcome, so sweep points stay
//! coupled and figures are bit-identical for any executor worker count
//! *and* any shard-core count.

use kvstore::{Shard, ShardStats};
use platforms::Platform;
use simcore::error::SimError;
use simcore::obs::{Recorder, SpanKind};
use simcore::resource::CompletionTimer;
use simcore::stats::{Cdf, RunningStats};
use simcore::{Nanos, ShardedCores, SimRng};

use crate::loadgen::ARRIVAL_CHUNK;
use crate::slots::{backend_profile, Admission, ClassConfig, SlotPolicy, SlotPool};
pub use crate::slots::{LoadBackend, ServiceProfile};

/// Baseline Zipf skew of the shard-count sweep (the `s` in Zipf(s)).
pub const BASELINE_THETA: f64 = 0.9;

/// How the routing tier places keys on shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// FNV-hash every key over the shards — the balanced placement.
    Hashed,
    /// Funnel the *currently hot* key set onto shard 0 (a stale
    /// range-partitioned placement), hash everything else — the
    /// adversarial baseline the rebalance experiment starts from.
    Pinned,
    /// Start [`RoutePolicy::Pinned`], then reshard to
    /// [`RoutePolicy::Hashed`] at the steady-phase boundary
    /// ([`ClusterBenchmark::rebalance_after`]) — resharding during
    /// tenant churn.
    Rebalance,
}

/// One point of the cluster sweep: a shard count, a Zipf skew, a routing
/// policy, and whether the hot key set churns (rotates) over the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSetting {
    /// Number of backend shards behind the router.
    pub shards: usize,
    /// Zipf skew `s` of the hot-set key draw, in `[0, 1)`.
    pub zipf_theta: f64,
    /// Key placement policy of the routing tier.
    pub route: RoutePolicy,
    /// Whether the hot set rotates over the window (tenant churn).
    pub churn: bool,
}

impl ClusterSetting {
    /// A hash-routed point with a static hot set.
    pub fn hashed(shards: usize, zipf_theta: f64) -> Self {
        ClusterSetting {
            shards,
            zipf_theta,
            route: RoutePolicy::Hashed,
            churn: false,
        }
    }

    /// The adversarial hot-set-on-shard-0 point under tenant churn, at
    /// the baseline skew.
    pub fn pinned(shards: usize) -> Self {
        ClusterSetting {
            shards,
            zipf_theta: BASELINE_THETA,
            route: RoutePolicy::Pinned,
            churn: true,
        }
    }

    /// The resharding-during-churn point: pinned start, hashed after the
    /// rebalance boundary, at the baseline skew.
    pub fn rebalance(shards: usize) -> Self {
        ClusterSetting {
            shards,
            zipf_theta: BASELINE_THETA,
            route: RoutePolicy::Rebalance,
            churn: true,
        }
    }

    /// The categorical label of the point in figures and reports.
    pub fn label(&self) -> String {
        match self.route {
            RoutePolicy::Pinned => format!("s{} pinned", self.shards),
            RoutePolicy::Rebalance => format!("s{} rebal", self.shards),
            RoutePolicy::Hashed if (self.zipf_theta - BASELINE_THETA).abs() > 1e-9 => {
                format!("s{} z{:.2}", self.shards, self.zipf_theta)
            }
            RoutePolicy::Hashed => format!("s{}", self.shards),
        }
    }

    /// The default sweep: shard count 1→256 at the baseline skew, a skew
    /// sweep at 16 shards, and the pinned/rebalance churn pair.
    pub fn default_sweep() -> Vec<ClusterSetting> {
        vec![
            ClusterSetting::hashed(1, BASELINE_THETA),
            ClusterSetting::hashed(4, BASELINE_THETA),
            ClusterSetting::hashed(16, BASELINE_THETA),
            ClusterSetting::hashed(64, BASELINE_THETA),
            ClusterSetting::hashed(256, BASELINE_THETA),
            ClusterSetting::hashed(16, 0.0),
            ClusterSetting::hashed(16, 0.5),
            ClusterSetting::hashed(16, 0.99),
            ClusterSetting::pinned(16),
            ClusterSetting::rebalance(16),
        ]
    }
}

/// Configuration of one sharded-cluster sweep.
///
/// Offered load is **utilization-constant**: every point offers
/// `offered_fraction` of the *whole cluster's* derated capacity
/// (`shards x servers_per_shard` slots), so scaling out grows the
/// offered rate with the fleet — the capacity-planning convention under
/// which "does the hot shard keep up" is the interesting question.
#[derive(Debug, Clone)]
pub struct ClusterBenchmark {
    /// Which backend the shards run.
    pub backend: LoadBackend,
    /// Requests offered per sweep point.
    pub requests_per_point: usize,
    /// The shard-count/skew/routing sweep, one point per setting.
    pub sweep: Vec<ClusterSetting>,
    /// Offered load as a fraction of the cluster's saturation capacity.
    pub offered_fraction: f64,
    /// Bounded admission queue depth in front of each shard's slots.
    pub queue_capacity: usize,
    /// Parallel service slots per shard.
    pub servers_per_shard: usize,
    /// Measurement repetitions (trials) per sweep point.
    pub runs: usize,
    /// Execute one real per-shard store operation per this many
    /// dispatched requests (the [`kvstore::Shard`] cache model).
    pub op_sample_every: u64,
    /// Size of the key universe.
    pub keys: usize,
    /// Size of the hot key set the Zipf draw ranks over.
    pub hot_keys: usize,
    /// Fraction of requests drawn from the hot set (the hotspot mix).
    pub hot_fraction: f64,
    /// Event-core lanes the shards multiplex onto (the lock-step group
    /// width). Results are identical for any value — the invariance the
    /// acceptance tests pin at 1/2/4/8.
    pub shard_cores: usize,
    /// Width of one bounded lock-step window, in microseconds. Pure
    /// batching granularity: results are identical for any width.
    pub lockstep_window_us: u64,
    /// Fraction of the arrival window after which the steady phase
    /// begins (imbalance is measured there) and the
    /// [`RoutePolicy::Rebalance`] policy reshards.
    pub rebalance_after: f64,
    /// Hot-set rotations per window when a point churns.
    pub churn_epochs: u32,
    /// Byte budget of each shard's store cache.
    pub cache_bytes_per_shard: usize,
    /// Value payload bytes of the sampled store operations.
    pub value_bytes: usize,
}

impl ClusterBenchmark {
    /// The full-scale configuration for a backend.
    pub fn new(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            backend,
            requests_per_point: 20_000,
            sweep: ClusterSetting::default_sweep(),
            offered_fraction: 0.85,
            queue_capacity: 8_192,
            servers_per_shard: 4,
            runs: 5,
            op_sample_every: 4,
            keys: 4_096,
            hot_keys: 16,
            hot_fraction: 0.3,
            shard_cores: 4,
            lockstep_window_us: 50,
            rebalance_after: 0.5,
            churn_epochs: 4,
            cache_bytes_per_shard: 64 << 10,
            value_bytes: 128,
        }
    }

    /// A scaled-down configuration for unit tests and quick runs.
    pub fn quick(backend: LoadBackend) -> Self {
        ClusterBenchmark {
            requests_per_point: 2_500,
            runs: 3,
            ..ClusterBenchmark::new(backend)
        }
    }

    /// The per-shard service profile on `platform`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate profile — an
    /// empty per-shard pool, or a platform derate that collapses the
    /// service time to zero.
    pub fn service_profile(&self, platform: &Platform) -> Result<ServiceProfile, SimError> {
        backend_profile(self.backend, platform, self.servers_per_shard)
    }

    fn validate(&self) -> Result<(), SimError> {
        let check_rate = |what: &str, v: f64| {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(SimError::InvalidConfig(format!(
                    "{what} must be a fraction in [0, 1], got {v}"
                )));
            }
            Ok(())
        };
        check_rate("cluster hot-key fraction", self.hot_fraction)?;
        check_rate("cluster rebalance boundary", self.rebalance_after)?;
        if self.keys == 0 || self.hot_keys == 0 || self.hot_keys > self.keys {
            return Err(SimError::InvalidConfig(format!(
                "cluster key universe ({}) must contain the hot set ({})",
                self.keys, self.hot_keys
            )));
        }
        if self.requests_per_point == 0 {
            return Err(SimError::InvalidConfig(
                "cluster sweep needs at least one request per point".into(),
            ));
        }
        for setting in &self.sweep {
            Self::validate_setting(setting)?;
        }
        Ok(())
    }

    fn validate_setting(setting: &ClusterSetting) -> Result<(), SimError> {
        if setting.shards == 0 {
            return Err(SimError::InvalidConfig(
                "cluster points need at least one shard".into(),
            ));
        }
        if !setting.zipf_theta.is_finite() || !(0.0..1.0).contains(&setting.zipf_theta) {
            return Err(SimError::InvalidConfig(format!(
                "cluster Zipf skew must lie in [0, 1), got {}",
                setting.zipf_theta
            )));
        }
        Ok(())
    }

    /// Runs the whole cluster sweep once and returns one
    /// [`ClusterPoint`] per configured setting.
    ///
    /// This is the unit the parallel executor shards on. The arrival,
    /// service and key streams are common random numbers across the
    /// sweep points, and every point replays its events through the
    /// merged lock-step core group, so the result is independent of
    /// [`ClusterBenchmark::shard_cores`] and
    /// [`ClusterBenchmark::lockstep_window_us`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate service
    /// profile, hotspot mix, Zipf skew or sweep point.
    pub fn run_trial(
        &self,
        platform: &Platform,
        rng: &mut SimRng,
    ) -> Result<Vec<ClusterPoint>, SimError> {
        self.validate()?;
        let profile = self.service_profile(platform)?;
        // Common random numbers: every sweep point replays the same
        // unit-rate arrival gaps, backend service sequence and key walk.
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let keys = rng.split("keys");
        self.sweep
            .iter()
            .map(|setting| {
                self.run_setting(
                    &profile,
                    setting,
                    arrival.clone(),
                    service.clone(),
                    keys.clone(),
                    None,
                )
                .map(|(point, _)| point)
            })
            .collect()
    }

    /// Runs one sweep point with the span recorder attached and returns
    /// the measured point together with the recorder, ready for export.
    ///
    /// The stream discipline matches [`ClusterBenchmark::run_trial`]
    /// (the same three named splits taken in the same order), and the
    /// recorder consumes no draws, so the traced point is equal to the
    /// corresponding untraced sweep point. Event-core counters are *not*
    /// attached to the timeline: the wheel-topology counters legitimately
    /// differ per [`ClusterBenchmark::shard_cores`], while the traced
    /// artifacts must stay byte-identical for any lane count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a degenerate service
    /// profile, hotspot mix, Zipf skew or sweep point.
    pub fn run_setting_traced(
        &self,
        platform: &Platform,
        setting: &ClusterSetting,
        rng: &mut SimRng,
        recorder: Recorder,
    ) -> Result<(ClusterPoint, Recorder), SimError> {
        self.validate()?;
        Self::validate_setting(setting)?;
        let profile = self.service_profile(platform)?;
        let arrival = rng.split("arrivals");
        let service = rng.split("service");
        let keys = rng.split("keys");
        let (point, obs) =
            self.run_setting(&profile, setting, arrival, service, keys, Some(recorder))?;
        Ok((point, obs.expect("the traced run returns its recorder")))
    }

    /// Runs one sweep point through the lock-step core group.
    fn run_setting(
        &self,
        profile: &ServiceProfile,
        setting: &ClusterSetting,
        arrival_rng: SimRng,
        service_rng: SimRng,
        key_rng: SimRng,
        obs: Option<Recorder>,
    ) -> Result<(ClusterPoint, Option<Recorder>), SimError> {
        let shards = setting.shards;
        let capacity_per_shard = profile.servers as f64 / profile.service_time.as_secs_f64();
        let offered_per_sec = (capacity_per_shard * shards as f64 * self.offered_fraction).max(1.0);
        let mut sim = ClusterSim::new(self, profile, setting, offered_per_sec, obs)?;
        let lanes = self.shard_cores.max(1).min(shards);
        let mut cores: ShardedCores<Ev> = ShardedCores::new(lanes);
        let mut st = ClusterState {
            arrival_rng,
            service_rng,
            key_rng,
        };
        // Kick off the batched arrival source and the in-flight probes.
        cores.push(0, Nanos::ZERO, Ev::Generate);
        let probes = 64u32;
        let window_secs = self.requests_per_point as f64 / offered_per_sec;
        let probe_period = Nanos::from_secs_f64(window_secs / f64::from(probes));
        cores.push(0, probe_period, Ev::Probe { remaining: probes });
        // The bounded lock-step drive: every core reaches the window
        // boundary before any core enters the next window. The boundary
        // jumps over empty windows, so the width is pure batching.
        let window = Nanos::from_micros(self.lockstep_window_us.max(1));
        let mut horizon = window;
        loop {
            while let Some((_lane, now, ev)) = cores.pop_within(horizon) {
                sim.handle(now, ev, &mut cores, &mut st);
            }
            let Some(next) = cores.peek_time() else {
                break;
            };
            let w = window.as_nanos();
            horizon = Nanos::from_nanos(next.as_nanos().div_ceil(w).max(1) * w);
        }
        let obs = sim.obs.take();
        Ok((
            sim.into_point(setting, offered_per_sec, cores.frontier()),
            obs,
        ))
    }
}

/// One measured point of the cluster sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPoint {
    /// Categorical sweep label (e.g. `s16`, `s16 z0.99`, `s16 rebal`).
    pub label: String,
    /// Number of backend shards at the point.
    pub shards: usize,
    /// Zipf skew of the point's hot-set draw.
    pub zipf_theta: f64,
    /// Offered load in requests per second (cluster-wide).
    pub offered_per_sec: f64,
    /// Completed throughput in requests per second.
    pub achieved_per_sec: f64,
    /// Median cluster-wide sojourn time in microseconds.
    pub p50_us: f64,
    /// 95th-percentile cluster-wide sojourn time in microseconds.
    pub p95_us: f64,
    /// 99th-percentile cluster-wide sojourn time in microseconds.
    pub p99_us: f64,
    /// Mean cluster-wide sojourn time in microseconds.
    pub mean_us: f64,
    /// 99th-percentile sojourn time on the hottest shard (by arrivals).
    pub hot_p99_us: f64,
    /// The hottest shard's fraction of all arrivals.
    pub hot_share: f64,
    /// Steady-phase imbalance: the hottest shard's steady-phase arrival
    /// count over the per-shard mean (1.0 = perfectly balanced). The
    /// steady phase is the window past the rebalance boundary, so the
    /// rebalance point reports its *post-reshard* placement quality.
    pub imbalance: f64,
    /// Requests dropped at shard admission queues over all issued.
    pub drop_fraction: f64,
    /// Requests completed.
    pub completed: u64,
    /// Requests dropped by bounded shard queues.
    pub dropped: u64,
    /// Probe-sampled peak of cluster-wide in-flight requests.
    pub peak_in_flight: usize,
    /// Time-averaged cluster-wide in-flight depth from the probes.
    pub mean_in_flight: f64,
    /// Live entries across all shard caches at the end of the window.
    pub store_entries: u64,
    /// Bytes across all shard caches at the end of the window.
    pub store_bytes: u64,
    /// Evictions across all shard caches over the window.
    pub store_evictions: u64,
    /// Whether the routing tier resharded mid-window.
    pub rebalanced: bool,
    /// Events processed by the lock-step core group at this point.
    pub events: u64,
}

/// A request waiting in a shard's admission queue or in service.
#[derive(Debug, Clone, Copy)]
struct Req {
    /// Cluster-wide arrival index — the stable trace-sampling identity,
    /// assigned by the router in generation order (lane-count
    /// invariant).
    id: u64,
    arrived: Nanos,
    key: u32,
}

/// Typed events of the cluster simulation — no boxed closures; the
/// merged pop order alone drives the state machine, which is what makes
/// the run core-count invariant.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Sample and push the next chunk of routed arrivals (router, lane 0).
    Generate,
    /// One arrival at `shard` for `key`, the cluster's `id`-th overall.
    Arrive { shard: u32, id: u64, key: u32 },
    /// Completion-timer wake on `shard`.
    Drain { shard: u32 },
    /// Fixed-cadence cluster in-flight probe (lane 0).
    Probe { remaining: u32 },
}

/// The per-trial random streams, cloned per sweep point.
struct ClusterState {
    arrival_rng: SimRng,
    service_rng: SimRng,
    key_rng: SimRng,
}

/// One backend shard: its own bounded slot pool, completion timer and
/// store cache.
struct ShardNode {
    pool: SlotPool<Req>,
    completions: CompletionTimer<Req>,
    cache: Shard,
    arrivals: u64,
    steady_arrivals: u64,
    dispatched: u64,
    latencies_us: Vec<f64>,
}

/// The discrete-event state of one cluster sweep point.
struct ClusterSim<'a> {
    bench: &'a ClusterBenchmark,
    profile: ServiceProfile,
    setting: ClusterSetting,
    offered_per_sec: f64,
    lanes: usize,
    shards: Vec<ShardNode>,
    /// Arrival index of the next generated request.
    next_arrival: u64,
    remaining_arrivals: u64,
    /// First arrival index of the steady phase (and reshard boundary).
    boundary: u64,
    /// Arrivals per churn epoch (`u64::MAX` when the hot set is static).
    epoch_len: u64,
    latencies_us: Vec<f64>,
    completed: u64,
    dropped: u64,
    events: u64,
    in_flight_probe: RunningStats,
    peak_in_flight: usize,
    drain_buf: Vec<(Nanos, Req)>,
    dispatch_buf: Vec<(usize, Nanos, Req)>,
    /// Observation-only trace recorder; `None` is the zero-cost path.
    obs: Option<Recorder>,
    /// Recorder lane per shard (`shard{i}`), empty when untraced.
    obs_lanes: Vec<u32>,
}

/// FNV-1a over a key id — the router's placement hash.
fn fnv(key: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl<'a> ClusterSim<'a> {
    fn new(
        bench: &'a ClusterBenchmark,
        profile: &ServiceProfile,
        setting: &ClusterSetting,
        offered_per_sec: f64,
        mut obs: Option<Recorder>,
    ) -> Result<Self, SimError> {
        let obs_lanes = match obs.as_mut() {
            Some(o) => (0..setting.shards)
                .map(|i| o.lane(&format!("shard{i}")))
                .collect(),
            None => Vec::new(),
        };
        let shards = (0..setting.shards)
            .map(|_| {
                Ok(ShardNode {
                    pool: SlotPool::new(
                        profile.servers,
                        SlotPolicy::FifoArrival,
                        vec![ClassConfig {
                            weight: 1,
                            queue_capacity: bench.queue_capacity,
                            mean_cost: profile.service_time,
                        }],
                    )?,
                    completions: CompletionTimer::new(),
                    cache: Shard::new(bench.cache_bytes_per_shard.max(1024)),
                    arrivals: 0,
                    steady_arrivals: 0,
                    dispatched: 0,
                    latencies_us: Vec::new(),
                })
            })
            .collect::<Result<Vec<_>, SimError>>()?;
        let requests = bench.requests_per_point as u64;
        let epoch_len = if setting.churn {
            (requests / u64::from(bench.churn_epochs.max(1))).max(1)
        } else {
            u64::MAX
        };
        Ok(ClusterSim {
            bench,
            profile: *profile,
            setting: *setting,
            offered_per_sec,
            lanes: bench.shard_cores.max(1).min(setting.shards),
            shards,
            next_arrival: 0,
            remaining_arrivals: requests,
            boundary: (bench.rebalance_after * requests as f64) as u64,
            epoch_len,
            latencies_us: Vec::with_capacity(bench.requests_per_point),
            completed: 0,
            dropped: 0,
            events: 0,
            in_flight_probe: RunningStats::new(),
            peak_in_flight: 0,
            drain_buf: Vec::new(),
            dispatch_buf: Vec::new(),
            obs,
            obs_lanes,
        })
    }

    fn lane_of(&self, shard: usize) -> usize {
        shard % self.lanes
    }

    /// Base key id of the hot set at arrival index `idx`: churn rotates
    /// the hot range one hot-set width per epoch (tenant churn).
    fn hot_base(&self, idx: u64) -> u64 {
        if self.epoch_len == u64::MAX {
            0
        } else {
            (idx / self.epoch_len) * self.bench.hot_keys as u64 % self.bench.keys as u64
        }
    }

    fn is_hot(&self, key: u32, idx: u64) -> bool {
        let base = self.hot_base(idx);
        let offset = (u64::from(key) + self.bench.keys as u64 - base) % self.bench.keys as u64;
        offset < self.bench.hot_keys as u64
    }

    /// The routing tier: maps an arrival's key to its shard under the
    /// point's placement policy and phase.
    fn route(&self, key: u32, idx: u64) -> usize {
        let n = self.setting.shards as u64;
        let hashed = (fnv(key) % n) as usize;
        let resharded = self.setting.route == RoutePolicy::Rebalance && idx >= self.boundary;
        match self.setting.route {
            RoutePolicy::Hashed => hashed,
            RoutePolicy::Pinned => {
                if self.is_hot(key, idx) {
                    0
                } else {
                    hashed
                }
            }
            RoutePolicy::Rebalance => {
                if !resharded && self.is_hot(key, idx) {
                    0
                } else {
                    hashed
                }
            }
        }
    }

    /// One key draw of the hotspot mix: two stream draws per arrival
    /// whatever the outcome (hot-set membership, then rank or uniform),
    /// keeping the key stream aligned across sweep points.
    fn draw_key(&self, idx: u64, rng: &mut SimRng) -> u32 {
        if rng.chance(self.bench.hot_fraction) {
            let rank = rng.zipf(self.bench.hot_keys, self.setting.zipf_theta) as u64;
            ((self.hot_base(idx) + rank) % self.bench.keys as u64) as u32
        } else {
            rng.index(self.bench.keys) as u32
        }
    }

    fn handle(&mut self, now: Nanos, ev: Ev, cores: &mut ShardedCores<Ev>, st: &mut ClusterState) {
        self.events += 1;
        match ev {
            Ev::Generate => self.generate(now, cores, st),
            Ev::Arrive { shard, id, key } => self.arrive(now, shard as usize, id, key, cores, st),
            Ev::Drain { shard } => self.drain(now, shard as usize, cores, st),
            Ev::Probe { remaining } => self.probe(now, remaining, cores),
        }
    }

    /// Samples the next chunk of Poisson interarrival gaps, draws and
    /// routes each arrival's key, and pushes one `Arrive` per gap onto
    /// the target shard's core lane; reschedules itself after the
    /// chunk's last arrival while arrivals remain.
    fn generate(&mut self, now: Nanos, cores: &mut ShardedCores<Ev>, st: &mut ClusterState) {
        let n = self.remaining_arrivals.min(ARRIVAL_CHUNK);
        if n == 0 {
            return;
        }
        self.remaining_arrivals -= n;
        let mut offset = Nanos::ZERO;
        for _ in 0..n {
            offset += Nanos::from_secs_f64(st.arrival_rng.exponential(1.0) / self.offered_per_sec);
            let idx = self.next_arrival;
            self.next_arrival += 1;
            let key = self.draw_key(idx, &mut st.key_rng);
            let shard = self.route(key, idx);
            if idx >= self.boundary {
                self.shards[shard].steady_arrivals += 1;
            }
            // A hand-off is a hot key the stale placement pinned to
            // shard 0 that the reshard redirected to its hashed home.
            let handed_off = self.setting.route == RoutePolicy::Rebalance
                && idx >= self.boundary
                && shard != 0
                && self.is_hot(key, idx);
            if let Some(o) = self.obs.as_mut() {
                let lane = self.obs_lanes[shard];
                o.instant(SpanKind::Route, idx, lane, now + offset);
                if handed_off {
                    o.instant(SpanKind::HandOff, idx, lane, now + offset);
                }
            }
            cores.push(
                self.lane_of(shard),
                now + offset,
                Ev::Arrive {
                    shard: shard as u32,
                    id: idx,
                    key,
                },
            );
        }
        if self.remaining_arrivals > 0 {
            cores.push(0, now + offset, Ev::Generate);
        }
    }

    /// One routed arrival: admit, enqueue or drop at the shard's bounded
    /// queue.
    fn arrive(
        &mut self,
        now: Nanos,
        shard: usize,
        id: u64,
        key: u32,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        self.shards[shard].arrivals += 1;
        let req = Req {
            id,
            arrived: now,
            key,
        };
        if let Some(o) = self.obs.as_mut() {
            o.count_arrival(self.obs_lanes[shard], now);
        }
        match self.shards[shard].pool.offer(0, now, req) {
            Admission::Dispatched => self.dispatch(now, shard, req, cores, st),
            Admission::Queued => {}
            Admission::Dropped => {
                self.dropped += 1;
                if let Some(o) = self.obs.as_mut() {
                    o.count_drop(self.obs_lanes[shard], now);
                }
            }
        }
        if let Some(o) = self.obs.as_mut() {
            o.gauge(
                self.obs_lanes[shard],
                now,
                self.shards[shard].pool.queued_total(),
                self.shards[shard].pool.busy(),
            );
        }
    }

    /// Dispatch on a shard: sample the backend service time (from the
    /// shared stream, in merged event order), run the sampled store
    /// operation against the shard's cache, and register the completion
    /// with the shard's batched timer.
    fn dispatch(
        &mut self,
        now: Nanos,
        shard: usize,
        req: Req,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        let service = self
            .profile
            .sample_service_time(&mut st.service_rng)
            .max(Nanos::from_nanos(1));
        let node = &mut self.shards[shard];
        node.dispatched += 1;
        if node.dispatched % self.bench.op_sample_every.max(1) == 0 {
            // Alternate set/get against the shard's bounded LRU cache;
            // the tick is the shard's own dispatch counter.
            let key = format!("k{:08}", req.key);
            if node.dispatched % (2 * self.bench.op_sample_every.max(1)) == 0 {
                let hit = node.cache.get(key.as_bytes(), node.dispatched).is_some();
                if let Some(o) = self.obs.as_mut() {
                    let lane = self.obs_lanes[shard];
                    o.count_cache(lane, now, hit);
                    let kind = if hit {
                        SpanKind::CacheHit
                    } else {
                        SpanKind::CacheMiss
                    };
                    o.instant(kind, req.id, lane, now);
                }
            } else {
                node.cache.set(
                    key.as_bytes(),
                    vec![0u8; self.bench.value_bytes],
                    node.dispatched,
                );
            }
        }
        if let Some(o) = self.obs.as_mut() {
            let lane = self.obs_lanes[shard];
            o.span(SpanKind::AdmissionWait, req.id, lane, req.arrived, now);
            o.span(SpanKind::SlotService, req.id, lane, now, now + service);
        }
        if let Some(wake) = node.completions.schedule(now + service, req) {
            cores.push(
                self.lane_of(shard),
                wake,
                Ev::Drain {
                    shard: shard as u32,
                },
            );
        }
    }

    /// One completion wake on a shard: drains every due completion,
    /// records sojourn times (cluster-wide and per-shard), folds the
    /// batch into the pool and dispatches the pulled queue heads.
    fn drain(
        &mut self,
        now: Nanos,
        shard: usize,
        cores: &mut ShardedCores<Ev>,
        st: &mut ClusterState,
    ) {
        let mut due = std::mem::take(&mut self.drain_buf);
        if let Some(wake) = self.shards[shard].completions.wake(now, &mut due) {
            cores.push(
                self.lane_of(shard),
                wake,
                Ev::Drain {
                    shard: shard as u32,
                },
            );
        }
        for &(at, req) in &due {
            debug_assert_eq!(at, now, "completions drain exactly at their tick");
            let sojourn_us = (now - req.arrived).as_micros_f64();
            self.latencies_us.push(sojourn_us);
            self.shards[shard].latencies_us.push(sojourn_us);
            self.completed += 1;
            if let Some(o) = self.obs.as_mut() {
                o.count_completion(self.obs_lanes[shard], now);
            }
        }
        let mut dispatched = std::mem::take(&mut self.dispatch_buf);
        self.shards[shard]
            .pool
            .finish_batch(due.iter().map(|_| 0), &mut dispatched);
        due.clear();
        self.drain_buf = due;
        for (_, _, next) in dispatched.drain(..) {
            self.dispatch(now, shard, next, cores, st);
        }
        self.dispatch_buf = dispatched;
    }

    fn probe(&mut self, now: Nanos, remaining: u32, cores: &mut ShardedCores<Ev>) {
        let in_flight: usize = self.shards.iter().map(|s| s.pool.in_flight()).sum();
        self.in_flight_probe.record(in_flight as f64);
        self.peak_in_flight = self.peak_in_flight.max(in_flight);
        if remaining > 1 {
            let window_secs = self.bench.requests_per_point as f64 / self.offered_per_sec;
            let period = Nanos::from_secs_f64(window_secs / 64.0);
            cores.push(
                0,
                now + period,
                Ev::Probe {
                    remaining: remaining - 1,
                },
            );
        }
    }

    fn into_point(
        self,
        setting: &ClusterSetting,
        offered_per_sec: f64,
        end: Nanos,
    ) -> ClusterPoint {
        let issued = self.next_arrival;
        debug_assert_eq!(issued, self.completed + self.dropped);
        let cdf = Cdf::from_samples(self.latencies_us)
            .expect("a sweep point always completes at least one request");
        let duration = end.as_secs_f64().max(f64::MIN_POSITIVE);
        // The hottest shard by total arrivals anchors the tail story;
        // the steady-phase maximum anchors the placement-quality story.
        let hot = self
            .shards
            .iter()
            .enumerate()
            .max_by_key(|(i, s)| (s.arrivals, std::cmp::Reverse(*i)))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let hot_p99_us = Cdf::from_samples(self.shards[hot].latencies_us.clone())
            .map(|c| c.percentile(99.0))
            .unwrap_or(0.0);
        let steady_total: u64 = self.shards.iter().map(|s| s.steady_arrivals).sum();
        let steady_max = self
            .shards
            .iter()
            .map(|s| s.steady_arrivals)
            .max()
            .unwrap_or(0);
        let steady_mean = steady_total as f64 / self.shards.len() as f64;
        let stats =
            self.shards
                .iter()
                .map(|s| s.cache.stats())
                .fold(ShardStats::default(), |acc, s| ShardStats {
                    len: acc.len + s.len,
                    bytes: acc.bytes + s.bytes,
                    evictions: acc.evictions + s.evictions,
                });
        ClusterPoint {
            label: setting.label(),
            shards: setting.shards,
            zipf_theta: setting.zipf_theta,
            offered_per_sec,
            achieved_per_sec: self.completed as f64 / duration,
            p50_us: cdf.percentile(50.0),
            p95_us: cdf.percentile(95.0),
            p99_us: cdf.percentile(99.0),
            mean_us: cdf.mean(),
            hot_p99_us,
            hot_share: self.shards[hot].arrivals as f64 / issued.max(1) as f64,
            imbalance: if steady_mean > 0.0 {
                steady_max as f64 / steady_mean
            } else {
                1.0
            },
            drop_fraction: self.dropped as f64 / issued.max(1) as f64,
            completed: self.completed,
            dropped: self.dropped,
            peak_in_flight: self.peak_in_flight,
            mean_in_flight: self.in_flight_probe.mean(),
            store_entries: stats.len as u64,
            store_bytes: stats.bytes as u64,
            store_evictions: stats.evictions,
            rebalanced: setting.route == RoutePolicy::Rebalance,
            events: self.events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platforms::PlatformId;

    fn tiny(backend: LoadBackend) -> ClusterBenchmark {
        ClusterBenchmark {
            requests_per_point: 800,
            runs: 1,
            ..ClusterBenchmark::quick(backend)
        }
    }

    #[test]
    fn percentiles_are_ordered_and_trials_deterministic_per_seed() {
        let bench = tiny(LoadBackend::Memcached);
        let platform = PlatformId::Docker.build();
        let a = bench
            .run_trial(&platform, &mut SimRng::seed_from(71))
            .unwrap();
        assert_eq!(a.len(), bench.sweep.len());
        for p in &a {
            assert!(
                p.p50_us <= p.p95_us && p.p95_us <= p.p99_us,
                "percentiles out of order at {}: {p:?}",
                p.label
            );
            assert!(p.p50_us > 0.0);
            assert!(p.completed > 0);
            assert_eq!(
                p.completed + p.dropped,
                bench.requests_per_point as u64,
                "{}",
                p.label
            );
            assert!(p.imbalance >= 1.0 - 1e-9, "{}: {p:?}", p.label);
            assert!((0.0..=1.0).contains(&p.hot_share));
        }
        let b = bench
            .run_trial(&platform, &mut SimRng::seed_from(71))
            .unwrap();
        assert_eq!(a, b);
        let c = bench
            .run_trial(&platform, &mut SimRng::seed_from(72))
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn results_are_identical_for_any_shard_core_count_and_window() {
        // The tentpole invariance: the merged (timestamp, seq) order is
        // a pure function of the push sequence, so neither the number of
        // core lanes nor the lock-step window width may perturb any
        // measurement.
        let platform = PlatformId::Qemu.build();
        let reference = ClusterBenchmark {
            shard_cores: 1,
            ..tiny(LoadBackend::Memcached)
        };
        let base = reference
            .run_trial(&platform, &mut SimRng::seed_from(73))
            .unwrap();
        for shard_cores in [2usize, 4, 8] {
            let bench = ClusterBenchmark {
                shard_cores,
                ..tiny(LoadBackend::Memcached)
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(73))
                .unwrap();
            assert_eq!(base, got, "{shard_cores} shard cores diverged");
        }
        for window_us in [1u64, 10, 1_000, 100_000] {
            let bench = ClusterBenchmark {
                lockstep_window_us: window_us,
                shard_cores: 1,
                ..tiny(LoadBackend::Memcached)
            };
            let got = bench
                .run_trial(&platform, &mut SimRng::seed_from(73))
                .unwrap();
            assert_eq!(base, got, "window {window_us} us diverged");
        }
    }

    #[test]
    fn tracing_is_observation_only_and_byte_identical_across_lane_counts() {
        use simcore::obs::ObsConfig;
        // The recorder consumes no draws and the merged pop order is
        // lane-count invariant, so the traced point equals the untraced
        // one and both artifacts are byte-identical for any core count.
        let platform = PlatformId::Qemu.build();
        let setting = ClusterSetting::rebalance(16);
        let plain = ClusterBenchmark {
            sweep: vec![setting],
            ..tiny(LoadBackend::Memcached)
        }
        .run_trial(&platform, &mut SimRng::seed_from(73))
        .unwrap();
        let mut artifacts: Vec<(String, String)> = Vec::new();
        for shard_cores in [1usize, 2, 4, 8] {
            let bench = ClusterBenchmark {
                shard_cores,
                sweep: vec![setting],
                ..tiny(LoadBackend::Memcached)
            };
            let recorder = Recorder::try_new(ObsConfig::new(7, 0.25)).unwrap();
            let (point, obs) = bench
                .run_setting_traced(&platform, &setting, &mut SimRng::seed_from(73), recorder)
                .unwrap();
            assert_eq!(plain[0], point, "{shard_cores} lanes: tracing perturbed");
            assert!(obs.spans_accepted() > 0);
            artifacts.push((
                obs.chrome_trace_json("cluster"),
                obs.timeline_json("cluster", 73),
            ));
        }
        for (i, a) in artifacts.iter().enumerate().skip(1) {
            assert_eq!(artifacts[0].0, a.0, "chrome trace diverged at lane set {i}");
            assert_eq!(artifacts[0].1, a.1, "timeline diverged at lane set {i}");
        }
        let (trace, timeline) = &artifacts[0];
        assert!(trace.contains("\"route\""), "router instants missing");
        assert!(
            trace.contains("\"hand-off\""),
            "resharded hot keys must record hand-offs"
        );
        assert!(timeline.contains("\"shard0\"") && timeline.contains("\"shard15\""));
        assert!(
            !timeline.contains("\"core\""),
            "cluster timelines must not attach lane-dependent core counters"
        );
    }

    #[test]
    fn hot_shard_share_grows_with_zipf_skew() {
        let platform = PlatformId::Native.build();
        let mut last = 0.0f64;
        let mut shares = Vec::new();
        for theta in [0.0, 0.5, 0.9, 0.99] {
            let bench = ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(16, theta)],
                ..tiny(LoadBackend::Memcached)
            };
            let p = &bench
                .run_trial(&platform, &mut SimRng::seed_from(74))
                .unwrap()[0];
            shares.push(p.hot_share);
            assert!(
                p.hot_share >= last - 0.02,
                "hot share must not shrink with skew: {shares:?}"
            );
            last = last.max(p.hot_share);
        }
        assert!(
            shares[3] > shares[0] * 1.5,
            "strong skew must visibly concentrate load: {shares:?}"
        );
    }

    #[test]
    fn rebalancing_restores_the_steady_phase_balance() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            sweep: vec![ClusterSetting::pinned(16), ClusterSetting::rebalance(16)],
            ..tiny(LoadBackend::Memcached)
        };
        let points = bench
            .run_trial(&platform, &mut SimRng::seed_from(75))
            .unwrap();
        let (pinned, rebal) = (&points[0], &points[1]);
        assert!(rebal.rebalanced && !pinned.rebalanced);
        assert!(
            rebal.imbalance < pinned.imbalance * 0.75,
            "resharding must shrink the steady imbalance: {} vs {}",
            rebal.imbalance,
            pinned.imbalance
        );
    }

    #[test]
    fn sampled_store_operations_populate_the_shard_caches() {
        let platform = PlatformId::Native.build();
        let bench = ClusterBenchmark {
            sweep: vec![ClusterSetting::hashed(4, BASELINE_THETA)],
            cache_bytes_per_shard: 2_048,
            ..tiny(LoadBackend::Memcached)
        };
        let p = &bench
            .run_trial(&platform, &mut SimRng::seed_from(76))
            .unwrap()[0];
        assert!(p.store_entries > 0, "sampled sets must land in the caches");
        assert!(p.store_bytes > 0);
        assert!(
            p.store_evictions > 0,
            "a tiny per-shard budget must evict: {p:?}"
        );
    }

    #[test]
    fn degenerate_configurations_fail_loudly() {
        let platform = PlatformId::Native.build();
        let mut rng = SimRng::seed_from(77);
        let cases = [
            ClusterBenchmark {
                hot_fraction: 1.5,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                rebalance_after: f64::NAN,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                hot_keys: 0,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                keys: 8,
                hot_keys: 16,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                requests_per_point: 0,
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(0, 0.5)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                sweep: vec![ClusterSetting::hashed(4, 1.0)],
                ..tiny(LoadBackend::Memcached)
            },
            ClusterBenchmark {
                servers_per_shard: 0,
                ..tiny(LoadBackend::Memcached)
            },
        ];
        for bench in cases {
            assert!(
                bench.run_trial(&platform, &mut rng).is_err(),
                "must reject {bench:?}"
            );
        }
    }
}
